//! Instruments and the registry that aggregates them.
//!
//! Design: an *instrument* ([`Counter`], [`Gauge`], [`Histogram`]) is a
//! block of atomics owned by whoever increments it — a server's stats
//! block, a cache's counter block, a `span!` call site.  Creating one
//! through a [`MetricsRegistry`] also files a [`Weak`] handle under the
//! instrument's [`SeriesKey`], so a [`Snapshot`] can sum every live
//! instance of a series without the owners ever sharing state or taking
//! a lock to increment.  Dead instances (dropped owners) are pruned at
//! snapshot time.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use crate::sync;

/// A monotonically increasing count (resettable only through the legacy
/// cache-stats APIs; Prometheus consumers should treat resets as counter
/// restarts).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter (kept for the pre-registry `reset_*_stats` APIs).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (active connections, idle pool size).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one zero bucket, one per power of two up
/// to `2^62 - 1`, and an overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket latency histogram over `u64` values (nanoseconds by
/// convention), log2-scaled so one `record` is two relaxed atomic adds
/// plus a `leading_zeros` — no locks, no allocation.
///
/// Bucket `0` holds the value `0`; bucket `k` (for `1 ≤ k ≤ 62`) holds
/// values in `[2^(k-1), 2^k - 1]`; bucket `63` holds everything from
/// `2^62` up.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram with every bucket at zero.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index `value` falls into.  Every `u64` lands in exactly
    /// one bucket (property-tested below).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i`; `None` for the overflow
    /// bucket (`+Inf` in the Prometheus exposition).
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        if i + 1 >= HISTOGRAM_BUCKETS {
            None
        } else {
            // Bucket 0 -> 0, bucket k -> 2^k - 1 (2^0 - 1 = 0).
            Some((1u64 << i) - 1)
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.  Counters are read individually (relaxed),
    /// so a snapshot taken mid-`record` may be off by one observation —
    /// the standard metrics trade for a lock-free hot path.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A point-in-time copy of one histogram (or a merged sum of several).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket (non-cumulative) observation counts,
    /// [`HISTOGRAM_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; HISTOGRAM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot of the same series into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Mean recorded value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the inclusive
    /// upper edge of the log2 bucket holding the rank-`⌈q·count⌉`
    /// observation, so the true quantile is never understated by more
    /// than one bucket width (≤ 2× at these bucket boundaries).  Returns
    /// 0 with no observations and `u64::MAX` when the rank lands in the
    /// overflow bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Histogram::bucket_upper_bound(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Identity of one time series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric (family) name, e.g. `openmeta_plan_cache_hits_total`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        SeriesKey { name: name.to_string(), labels }
    }
}

impl fmt::Display for SeriesKey {
    /// `name{k="v",...}` — the Prometheus series syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}=\"{}\"", crate::export::escape_label(v))?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Weak handles to every live instance of each series, per instrument
/// kind.  Kinds live in separate maps so a name can never collide across
/// types.
#[derive(Default)]
struct Families {
    counters: BTreeMap<SeriesKey, Vec<Weak<Counter>>>,
    gauges: BTreeMap<SeriesKey, Vec<Weak<Gauge>>>,
    histograms: BTreeMap<SeriesKey, Vec<Weak<Histogram>>>,
}

/// A registry of instruments.  [`MetricsRegistry::global`] is the
/// process-wide one every subsystem registers into; tests construct their
/// own with [`MetricsRegistry::new`] for isolation.
#[derive(Default)]
pub struct MetricsRegistry {
    families: sync::Mutex<Families>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// A new counter instance registered under `name` (no labels).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// A new counter instance registered under `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        let mut fams = sync::lock(&self.families);
        fams.counters.entry(SeriesKey::new(name, labels)).or_default().push(Arc::downgrade(&c));
        c
    }

    /// A new gauge instance registered under `name` (no labels).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// A new gauge instance registered under `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        let mut fams = sync::lock(&self.families);
        fams.gauges.entry(SeriesKey::new(name, labels)).or_default().push(Arc::downgrade(&g));
        g
    }

    /// A new histogram instance registered under `name` (no labels).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// A new histogram instance registered under `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        let mut fams = sync::lock(&self.families);
        fams.histograms.entry(SeriesKey::new(name, labels)).or_default().push(Arc::downgrade(&h));
        h
    }

    /// Sum every live instance of every series into a point-in-time
    /// [`Snapshot`], pruning instances whose owners have been dropped.
    /// Series whose every instance is dead are kept at their type's zero
    /// so a scrape schema stays stable across owner restarts.
    pub fn snapshot(&self) -> Snapshot {
        let mut fams = sync::lock(&self.families);
        let counters = fams
            .counters
            .iter_mut()
            .map(|(key, instances)| {
                instances.retain(|w| w.strong_count() > 0);
                (key.clone(), instances.iter().filter_map(Weak::upgrade).map(|c| c.get()).sum())
            })
            .collect();
        let gauges = fams
            .gauges
            .iter_mut()
            .map(|(key, instances)| {
                instances.retain(|w| w.strong_count() > 0);
                (key.clone(), instances.iter().filter_map(Weak::upgrade).map(|g| g.get()).sum())
            })
            .collect();
        let histograms = fams
            .histograms
            .iter_mut()
            .map(|(key, instances)| {
                instances.retain(|w| w.strong_count() > 0);
                let mut merged = HistogramSnapshot::default();
                for h in instances.iter().filter_map(Weak::upgrade) {
                    merged.merge(&h.snapshot());
                }
                (key.clone(), merged)
            })
            .collect();
        Snapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of a whole registry, sorted by series key (the
/// registry's maps are ordered), so both exporters are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter series and their summed values.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauge series and their summed values.
    pub gauges: Vec<(SeriesKey, i64)>,
    /// Histogram series and their merged buckets.
    pub histograms: Vec<(SeriesKey, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter series by name (no labels), if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k.name == name && k.labels.is_empty()).map(|&(_, v)| v)
    }

    /// Merged histogram for `name{labels}`, if registered.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        let want = SeriesKey::new(name, labels);
        self.histograms.iter().find(|(k, _)| *k == want).map(|(_, h)| h)
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::thread;

    /// Concurrent counter increments and histogram records never lose an
    /// observation, under loom's schedule exploration.
    #[test]
    fn loom_concurrent_increments_sum_exactly() {
        loom::model(|| {
            let reg = Arc::new(MetricsRegistry::new());
            let c = reg.counter("openmeta_loom_total");
            let h = reg.histogram("openmeta_loom_ns");
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let (c, h) = (c.clone(), h.clone());
                    thread::spawn(move || {
                        for i in 0..3u64 {
                            c.add(1 + t);
                            h.record(i * 100);
                        }
                    })
                })
                .collect();
            for j in handles {
                j.join().expect("worker");
            }
            let snap = reg.snapshot();
            assert_eq!(snap.counter_value("openmeta_loom_total"), Some(9));
            let hist = snap.histogram_value("openmeta_loom_ns", &[]).expect("series");
            assert_eq!(hist.count, 6);
            assert_eq!(hist.buckets.iter().sum::<u64>(), 6);
        });
    }

    /// Racing registrations of the same series land in one family and
    /// are all summed by the snapshot.
    #[test]
    fn loom_racing_registration_is_one_family() {
        loom::model(|| {
            let reg = Arc::new(MetricsRegistry::new());
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let reg = reg.clone();
                    thread::spawn(move || {
                        let c = reg.counter("openmeta_loom_race_total");
                        c.inc();
                        c // keep the instance alive past the join
                    })
                })
                .collect();
            let keep: Vec<_> = handles.into_iter().map(|j| j.join().expect("worker")).collect();
            let snap = reg.snapshot();
            assert_eq!(snap.counters.len(), 1);
            assert_eq!(snap.counter_value("openmeta_loom_race_total"), Some(2));
            drop(keep);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let h = Histogram::new();
        // 90 fast observations at 100ns, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let snap = h.snapshot();
        // p50/p90 land in the bucket holding 100 ([64, 127]).
        assert_eq!(snap.quantile(0.5), 127);
        assert_eq!(snap.quantile(0.9), 127);
        // p99 and p100 land in the bucket holding 1e6 ([2^19, 2^20-1]).
        assert_eq!(snap.quantile(0.99), (1 << 20) - 1);
        assert_eq!(snap.quantile(1.0), (1 << 20) - 1);
        // p0 clamps to rank 1 (the smallest observation's bucket).
        assert_eq!(snap.quantile(0.0), 127);
    }

    #[test]
    fn quantile_handles_empty_and_overflow() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().quantile(0.5), u64::MAX);
    }

    #[test]
    fn counters_and_gauges_register_and_sum() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("openmeta_test_total");
        let b = reg.counter("openmeta_test_total");
        a.add(3);
        b.inc();
        let g = reg.gauge("openmeta_test_active");
        g.add(5);
        g.dec();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("openmeta_test_total"), Some(4));
        assert_eq!(snap.gauges[0].1, 4);
    }

    #[test]
    fn dead_instances_are_pruned_but_series_survive() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("openmeta_drop_total");
        a.add(7);
        drop(a);
        let snap = reg.snapshot();
        // The owner died; its increments die with it, the series stays.
        assert_eq!(snap.counter_value("openmeta_drop_total"), Some(0));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        // Handles must outlive the snapshot: dropped instances are pruned.
        let a = reg.counter_with("openmeta_l_total", &[("stage", "a")]);
        let b = reg.counter_with("openmeta_l_total", &[("stage", "b")]);
        a.inc();
        b.add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].1, 1);
        assert_eq!(snap.counters[1].1, 2);
        assert_eq!(snap.counters[0].0.to_string(), "openmeta_l_total{stage=\"a\"}");
    }

    #[test]
    fn histogram_records_land_in_expected_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 1); // 4
        assert_eq!(snap.buckets[10], 1); // 1023 = 2^10 - 1
        assert_eq!(snap.buckets[11], 1); // 1024 = 2^10
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 1); // u64::MAX
                                                            // The sum wraps just like the atomic does.
        assert_eq!(snap.sum, 2057u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn histogram_merge_and_mean() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(30);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.mean(), 20.0);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover() {
        let mut prev: Option<u64> = None;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let ub = Histogram::bucket_upper_bound(i).expect("finite");
            if let Some(p) = prev {
                assert!(ub > p, "bucket {i} bound {ub} <= {p}");
            }
            prev = Some(ub);
        }
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
        assert_eq!(Histogram::bucket_upper_bound(0), Some(0));
        assert_eq!(Histogram::bucket_upper_bound(1), Some(1));
        assert_eq!(Histogram::bucket_upper_bound(62), Some((1 << 62) - 1));
    }
}
