//! The schema object model.

use std::fmt;

use crate::xsd::XsdPrimitive;

/// Where a dynamic array's length travels relative to the data, per the
/// paper's `dimensionPlacement` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DimensionPlacement {
    /// The length element precedes the array data (the paper's
    /// `dimensionPlacement="before"`, and the only placement PBIO needs).
    #[default]
    Before,
    /// The length element follows the array data.
    After,
}

/// Occurrence bounds of an element (`maxOccurs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// A scalar element (`maxOccurs` absent or `"1"`).
    One,
    /// A fixed-size array: `maxOccurs="16"`.
    Bounded(usize),
    /// A dynamically sized array: `maxOccurs="*"` (the paper's wildcard)
    /// or `"unbounded"`.
    Unbounded,
}

/// What an element's `type` attribute refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// A primitive from the XML Schema namespace.
    Primitive(XsdPrimitive),
    /// A previously defined `complexType`, by name (XMIT composition).
    Named(String),
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRef::Primitive(p) => write!(f, "{p}"),
            TypeRef::Named(n) => f.write_str(n),
        }
    }
}

/// One `<xsd:element>` inside a complex type: a message field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Field name (`name` attribute).
    pub name: String,
    /// Field type (`type` attribute).
    pub type_ref: TypeRef,
    /// Occurrence bounds (`maxOccurs`).
    pub occurs: Occurs,
    /// For `Occurs::Unbounded` with a run-time length: the sibling element
    /// holding the element count (`dimensionName`, or a `maxOccurs` value
    /// naming a field directly, which §3.1 also allows).
    pub dimension_name: Option<String>,
    /// Placement of the dimension element (`dimensionPlacement`).
    pub dimension_placement: DimensionPlacement,
}

impl ElementDecl {
    /// A scalar element.
    pub fn scalar(name: impl Into<String>, type_ref: TypeRef) -> Self {
        ElementDecl {
            name: name.into(),
            type_ref,
            occurs: Occurs::One,
            dimension_name: None,
            dimension_placement: DimensionPlacement::default(),
        }
    }

    /// A fixed-size array element.
    pub fn array(name: impl Into<String>, type_ref: TypeRef, count: usize) -> Self {
        ElementDecl {
            name: name.into(),
            type_ref,
            occurs: Occurs::Bounded(count),
            dimension_name: None,
            dimension_placement: DimensionPlacement::default(),
        }
    }

    /// A dynamic array element governed by `dimension`.
    pub fn dynamic(
        name: impl Into<String>,
        type_ref: TypeRef,
        dimension: impl Into<String>,
    ) -> Self {
        ElementDecl {
            name: name.into(),
            type_ref,
            occurs: Occurs::Unbounded,
            dimension_name: Some(dimension.into()),
            dimension_placement: DimensionPlacement::Before,
        }
    }
}

/// One `<xsd:complexType name="...">`: a message format definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexType {
    /// Format name (`name` attribute).
    pub name: String,
    /// Fields in document order.
    pub elements: Vec<ElementDecl>,
}

impl ComplexType {
    /// Create a complex type.
    pub fn new(name: impl Into<String>, elements: Vec<ElementDecl>) -> Self {
        ComplexType { name: name.into(), elements }
    }

    /// Find an element by name.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|e| e.name == name)
    }
}

/// A named enumeration: an `<xsd:simpleType>` restricting `xsd:string`
/// with `<xsd:enumeration>` facets.  §3.1 counts enumeration types among
/// the primitives XMIT maps onto native metadata; on the wire an
/// enumeration travels as the unsigned index of its symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumType {
    /// Enumeration name (`name` attribute of the simpleType).
    pub name: String,
    /// Legal symbols, in declaration order; the wire value is the index.
    pub values: Vec<String>,
}

impl EnumType {
    /// Index of a symbol.
    pub fn index_of(&self, symbol: &str) -> Option<usize> {
        self.values.iter().position(|v| v == symbol)
    }

    /// Symbol at an index.
    pub fn symbol(&self, index: usize) -> Option<&str> {
        self.values.get(index).map(String::as_str)
    }
}

/// A parsed metadata document: every complex type it defines, in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemaDocument {
    /// Complex types in document order ("each one of these subtrees
    /// defines a separate message format", §3.1).
    pub types: Vec<ComplexType>,
    /// Named enumerations defined by the document.
    pub enums: Vec<EnumType>,
}

impl SchemaDocument {
    /// Find a complex type by name.
    pub fn get(&self, name: &str) -> Option<&ComplexType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Find an enumeration by name.
    pub fn get_enum(&self, name: &str) -> Option<&EnumType> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// Names of all defined types, in document order.
    pub fn type_names(&self) -> Vec<&str> {
        self.types.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_lookup() {
        let ct = ComplexType::new(
            "SimpleData",
            vec![
                ElementDecl::scalar("timestep", TypeRef::Primitive(XsdPrimitive::Integer)),
                ElementDecl::dynamic("data", TypeRef::Primitive(XsdPrimitive::Float), "size"),
            ],
        );
        assert_eq!(ct.element("timestep").unwrap().occurs, Occurs::One);
        let data = ct.element("data").unwrap();
        assert_eq!(data.occurs, Occurs::Unbounded);
        assert_eq!(data.dimension_name.as_deref(), Some("size"));
        assert!(ct.element("nope").is_none());

        let doc = SchemaDocument { types: vec![ct], enums: vec![] };
        assert!(doc.get("SimpleData").is_some());
        assert_eq!(doc.type_names(), vec!["SimpleData"]);
    }

    #[test]
    fn type_ref_display() {
        assert_eq!(TypeRef::Primitive(XsdPrimitive::Float).to_string(), "xsd:float");
        assert_eq!(TypeRef::Named("JoinRequest".to_string()).to_string(), "JoinRequest");
    }
}
