//! DOM-free streaming XSD parsing.
//!
//! Lowers `xml::Reader` pull events directly into the schema model,
//! skipping the DOM arena the generic document API builds.  This is the
//! registration hot path of the discovery benchmarks: per-element node
//! allocation disappears and the document text is traversed exactly once.
//!
//! The traversal semantics deliberately mirror [`crate::parse::parse_document`]
//! (every descendant `complexType`/`simpleType` by local name, `element`
//! children direct or one `sequence`/`all` level down, type QNames
//! resolved against raw in-scope `xmlns` attributes), and the two paths
//! are differentially tested against each other: identical documents on
//! valid input, errors on both for invalid input.

use openmeta_xml::{
    split_prefix, ErrorKind, Event, Position, RawAttribute, Reader, XmlError, XMLNS_NS, XML_NS,
};

use crate::error::SchemaError;
use crate::model::{ComplexType, ElementDecl, SchemaDocument};
use crate::parse::{element_decl_from_attrs, enum_from_facets, validate_dimensions, ElementAttrs};

/// A `complexType` currently being collected.
struct TypeCollector {
    /// Nesting depth of the complexType element itself.
    depth: usize,
    at: Position,
    name: String,
    elements: Vec<ElementDecl>,
    /// A `sequence`/`all` direct child is currently open.
    seq_open: bool,
}

/// A `simpleType` currently being collected (validated at end of input).
struct EnumCollector {
    depth: usize,
    at: Position,
    name: Option<String>,
    had_restriction: bool,
    /// The *first* direct `restriction` child is currently open; only its
    /// direct `enumeration` facets count (matches the DOM traversal).
    first_restriction_open: bool,
    facets: Vec<(Option<String>, Position)>,
}

/// Namespace machinery replicating what the DOM builder tracks, without
/// building nodes:
/// * `bindings`/`defaults` validate QName well-formedness exactly like
///   `dom::build` (undeclared prefixes are errors anywhere in the doc);
/// * `raw` answers type-QName lookups the way `parse::lookup_prefix`
///   walks raw `xmlns` attributes on ancestor nodes — no built-in
///   bindings, no empty-URI filtering.
struct Scopes {
    bindings: Vec<(String, String, usize)>,
    defaults: Vec<(String, usize)>,
    raw: Vec<(String, String, usize)>,
}

impl Scopes {
    fn new() -> Self {
        Scopes {
            bindings: vec![
                ("xml".to_string(), XML_NS.to_string(), 0),
                ("xmlns".to_string(), XMLNS_NS.to_string(), 0),
            ],
            defaults: Vec::new(),
            raw: Vec::new(),
        }
    }

    fn resolve(&self, prefix: &str) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|(p, _, _)| p == prefix)
            .map(|(_, u, _)| u.as_str())
            .filter(|u| !u.is_empty())
    }

    fn raw_lookup(&self, prefix: &str) -> Option<String> {
        self.raw.iter().rev().find(|(p, _, _)| p == prefix).map(|(_, u, _)| u.clone())
    }

    fn pop_to(&mut self, depth: usize) {
        while matches!(self.bindings.last(), Some(&(_, _, d)) if d >= depth) {
            self.bindings.pop();
        }
        while matches!(self.defaults.last(), Some(&(_, d)) if d >= depth) {
            self.defaults.pop();
        }
        while matches!(self.raw.last(), Some(&(_, _, d)) if d >= depth) {
            self.raw.pop();
        }
    }
}

/// Unprefixed-attribute lookup, matching `Document::attribute` (schema
/// attributes are unprefixed by convention; prefixed ones never match).
fn attr<'e>(attributes: &'e [RawAttribute<'_>], local: &str) -> Option<&'e str> {
    attributes.iter().find(|a| a.name == local).map(|a| a.value.as_ref())
}

/// Parse schema metadata from XML text without building a DOM.
pub(crate) fn parse_str_streaming(text: &str) -> Result<SchemaDocument, SchemaError> {
    let mut reader = Reader::new(text);
    let mut scopes = Scopes::new();
    let mut depth = 0usize;
    let mut root_at = Position::start();
    let mut seen_root = false;

    // All collectors in document (start-tag) order; `active_*` index the
    // currently open ones, innermost last.
    let mut types: Vec<TypeCollector> = Vec::new();
    let mut active_types: Vec<usize> = Vec::new();
    let mut enums: Vec<EnumCollector> = Vec::new();
    let mut active_enums: Vec<usize> = Vec::new();

    loop {
        let at = reader.source_position();
        let event = reader.next_event()?;
        match event {
            Event::Eof => break,
            Event::StartElement { name, attributes, .. } => {
                depth += 1;
                if !seen_root {
                    seen_root = true;
                    root_at = at;
                }
                // Namespace declarations on this element come into scope
                // before its own names are resolved (as in `dom::build`).
                for a in &attributes {
                    if a.name == "xmlns" {
                        scopes.defaults.push((a.value.to_string(), depth));
                    } else if let Some(p) = a.name.strip_prefix("xmlns:") {
                        if p.is_empty() {
                            return Err(XmlError::new(
                                ErrorKind::InvalidName,
                                "empty prefix in xmlns declaration",
                                at,
                            )
                            .into());
                        }
                        scopes.bindings.push((p.to_string(), a.value.to_string(), depth));
                    }
                }
                // Well-formedness parity with the DOM path: every element
                // and attribute QName in the document must resolve.
                let (eprefix, elocal) = split_prefix(name).ok_or_else(|| {
                    XmlError::new(ErrorKind::InvalidName, format!("bad QName '{name}'"), at)
                })?;
                if !eprefix.is_empty() && scopes.resolve(eprefix).is_none() {
                    return Err(XmlError::new(
                        ErrorKind::UndeclaredPrefix,
                        format!("undeclared namespace prefix '{eprefix}'"),
                        at,
                    )
                    .into());
                }
                for a in &attributes {
                    let (ap, al) = split_prefix(a.name).ok_or_else(|| {
                        XmlError::new(
                            ErrorKind::InvalidName,
                            format!("bad attribute QName '{}'", a.name),
                            at,
                        )
                    })?;
                    let is_decl = if a.name == "xmlns" {
                        true
                    } else if ap.is_empty() {
                        false
                    } else {
                        let uri = scopes.resolve(ap).ok_or_else(|| {
                            XmlError::new(
                                ErrorKind::UndeclaredPrefix,
                                format!("undeclared namespace prefix '{ap}'"),
                                at,
                            )
                        })?;
                        ap == "xmlns" || uri == XMLNS_NS
                    };
                    if is_decl {
                        scopes.raw.push((al.to_string(), a.value.to_string(), depth));
                    }
                }

                match elocal {
                    "complexType" => {
                        let ct_name = attr(&attributes, "name")
                            .ok_or_else(|| {
                                SchemaError::invalid("complexType lacks a name attribute", at)
                            })?
                            .to_string();
                        active_types.push(types.len());
                        types.push(TypeCollector {
                            depth,
                            at,
                            name: ct_name,
                            elements: Vec::new(),
                            seq_open: false,
                        });
                    }
                    "simpleType" => {
                        active_enums.push(enums.len());
                        enums.push(EnumCollector {
                            depth,
                            at,
                            name: attr(&attributes, "name").map(str::to_string),
                            had_restriction: false,
                            first_restriction_open: false,
                            facets: Vec::new(),
                        });
                    }
                    "sequence" | "all" => {
                        if let Some(&i) = active_types.last() {
                            if depth == types[i].depth + 1 {
                                types[i].seq_open = true;
                            }
                        }
                    }
                    "element" => {
                        let target = active_types.last().copied().filter(|&i| {
                            let c = &types[i];
                            depth == c.depth + 1 || (depth == c.depth + 2 && c.seq_open)
                        });
                        if let Some(i) = target {
                            let decl = element_decl_from_attrs(
                                ElementAttrs {
                                    name: attr(&attributes, "name"),
                                    ty: attr(&attributes, "type"),
                                    min_occurs: attr(&attributes, "minOccurs"),
                                    max_occurs: attr(&attributes, "maxOccurs"),
                                    dimension_name: attr(&attributes, "dimensionName"),
                                    dimension_placement: attr(&attributes, "dimensionPlacement"),
                                },
                                at,
                                |p| scopes.raw_lookup(p),
                            )?;
                            let c = &mut types[i];
                            if c.elements.iter().any(|e| e.name == decl.name) {
                                return Err(SchemaError::invalid(
                                    format!(
                                        "duplicate element '{}' in complexType '{}'",
                                        decl.name, c.name
                                    ),
                                    at,
                                ));
                            }
                            c.elements.push(decl);
                        }
                    }
                    "restriction" => {
                        if let Some(&i) = active_enums.last() {
                            let e = &mut enums[i];
                            if depth == e.depth + 1 && !e.had_restriction {
                                e.had_restriction = true;
                                e.first_restriction_open = true;
                            }
                        }
                    }
                    "enumeration" => {
                        if let Some(&i) = active_enums.last() {
                            let e = &mut enums[i];
                            if depth == e.depth + 2 && e.first_restriction_open {
                                e.facets.push((attr(&attributes, "value").map(str::to_string), at));
                            }
                        }
                    }
                    _ => {}
                }
            }
            Event::EndElement { .. } => {
                // `depth` is the depth of the element now closing.
                if let Some(&i) = active_types.last() {
                    if types[i].depth == depth {
                        active_types.pop();
                    } else if types[i].depth + 1 == depth {
                        // A direct child of the innermost open complexType
                        // closed; any open sequence/all wrapper is done.
                        types[i].seq_open = false;
                    }
                }
                if let Some(&i) = active_enums.last() {
                    if enums[i].depth == depth {
                        active_enums.pop();
                    } else if enums[i].depth + 1 == depth {
                        enums[i].first_restriction_open = false;
                    }
                }
                scopes.pop_to(depth);
                depth -= 1;
            }
            // Character data, comments, PIs and DOCTYPE carry no schema
            // meaning; the reader has already validated them.
            _ => {}
        }
    }

    // Assemble in the DOM path's order: all complexTypes (document
    // order), then all enumeration simpleTypes.
    let mut out = SchemaDocument::default();
    for c in types {
        let ct = ComplexType { name: c.name, elements: c.elements };
        validate_dimensions(&ct, c.at)?;
        if out.get(&ct.name).is_some() {
            return Err(SchemaError::invalid(format!("duplicate complexType '{}'", ct.name), c.at));
        }
        out.types.push(ct);
    }
    for e in enums {
        let en = enum_from_facets(e.name.as_deref(), e.at, e.had_restriction, &e.facets)?;
        if out.get(&en.name).is_some() || out.get_enum(&en.name).is_some() {
            return Err(SchemaError::invalid(format!("duplicate type name '{}'", en.name), e.at));
        }
        out.enums.push(en);
    }
    if out.types.is_empty() && out.enums.is_empty() {
        return Err(SchemaError::invalid(
            "document defines no complexType or enumeration simpleType",
            root_at,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::parse::{parse_str, parse_str_dom};

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn wrap(body: &str) -> String {
        format!("<xsd:schema xmlns:xsd=\"{XSD}\">{body}</xsd:schema>")
    }

    /// Both paths must agree: equal documents on success, errors on both
    /// otherwise.
    fn differential(text: &str) {
        match (parse_str(text), parse_str_dom(text)) {
            (Ok(s), Ok(d)) => assert_eq!(s, d, "streaming and DOM disagree on:\n{text}"),
            (Err(_), Err(_)) => {}
            (s, d) => {
                panic!("paths disagree on validity of:\n{text}\nstreaming: {s:?}\nDOM: {d:?}")
            }
        }
    }

    #[test]
    fn differential_on_representative_documents() {
        let cases = [
            // Valid shapes.
            wrap(
                r#"<xsd:complexType name="A"><xsd:element name="x" type="xsd:int"/></xsd:complexType>"#,
            ),
            wrap(
                r#"<xsd:complexType name="A">
                     <xsd:sequence>
                       <xsd:element name="x" type="xsd:int"/>
                       <xsd:element name="y" type="xsd:double" maxOccurs="4"/>
                     </xsd:sequence>
                   </xsd:complexType>
                   <xsd:complexType name="B">
                     <xsd:element name="a" type="A"/>
                     <xsd:element name="n" type="xsd:int"/>
                     <xsd:element name="vs" type="xsd:float" maxOccurs="*" dimensionName="n"/>
                   </xsd:complexType>"#,
            ),
            wrap(
                r#"<xsd:simpleType name="Color">
                     <xsd:restriction base="xsd:string">
                       <xsd:enumeration value="red"/>
                       <xsd:enumeration value="green"/>
                     </xsd:restriction>
                   </xsd:simpleType>
                   <xsd:complexType name="Pixel">
                     <xsd:element name="c" type="Color"/>
                   </xsd:complexType>"#,
            ),
            // Namespace scoping: prefix rebinding and a non-XSD namespace.
            format!(
                r#"<s:schema xmlns:s="{XSD}" xmlns:o="urn:other">
                     <s:complexType name="T">
                       <s:element name="x" type="s:int" xmlns:s="urn:shadow"/>
                       <s:element name="y" type="o:thing"/>
                     </s:complexType>
                   </s:schema>"#
            ),
            // complexType as the document root.
            format!(
                r#"<xsd:complexType name="Solo" xmlns:xsd="{XSD}">
                     <xsd:element name="x" type="xsd:int"/>
                   </xsd:complexType>"#
            ),
            // Nested complexType (both are collected, inner not an element
            // of the outer).
            wrap(
                r#"<xsd:complexType name="Outer">
                     <xsd:element name="x" type="xsd:int"/>
                     <xsd:complexType name="Inner">
                       <xsd:element name="y" type="xsd:int"/>
                     </xsd:complexType>
                   </xsd:complexType>"#,
            ),
            // Nested sequence: inner level is NOT scanned.
            wrap(
                r#"<xsd:complexType name="T">
                     <xsd:sequence>
                       <xsd:element name="x" type="xsd:int"/>
                       <xsd:sequence>
                         <xsd:element name="hidden" type="xsd:int"/>
                       </xsd:sequence>
                     </xsd:sequence>
                   </xsd:complexType>"#,
            ),
            // Invalid shapes — both paths must reject.
            wrap(r#"<xsd:complexType><xsd:element name="x" type="xsd:int"/></xsd:complexType>"#),
            wrap(r#"<xsd:complexType name="T"><xsd:element name="x"/></xsd:complexType>"#),
            wrap(
                r#"<xsd:complexType name="T"><xsd:element name="x" type="zz:int"/></xsd:complexType>"#,
            ),
            wrap(
                r#"<xsd:complexType name="T"><xsd:element name="x" type="xsd:hexBinary"/></xsd:complexType>"#,
            ),
            wrap(
                r#"<xsd:complexType name="T"><xsd:element name="x" type="xsd:int"/></xsd:complexType>
                   <xsd:complexType name="T"><xsd:element name="y" type="xsd:int"/></xsd:complexType>"#,
            ),
            wrap(r#"<xsd:simpleType name="E"/>"#),
            wrap(
                r#"<xsd:simpleType name="E"><xsd:restriction base="xsd:string"/></xsd:simpleType>"#,
            ),
            "<a/>".to_string(),
            "<a>".to_string(),
        ];
        for case in &cases {
            differential(case);
        }
    }

    #[test]
    fn streaming_handles_multiple_sequences() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:sequence><xsd:element name="x" type="xsd:int"/></xsd:sequence>
                 <xsd:sequence><xsd:element name="y" type="xsd:int"/></xsd:sequence>
               </xsd:complexType>"#,
        ))
        .unwrap();
        assert_eq!(doc.get("T").unwrap().elements.len(), 2);
        differential(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:sequence><xsd:element name="x" type="xsd:int"/></xsd:sequence>
                 <xsd:sequence><xsd:element name="y" type="xsd:int"/></xsd:sequence>
               </xsd:complexType>"#,
        ));
    }

    #[test]
    fn streaming_resolves_default_xmlns_edge_case() {
        // `type="xmlns:foo"` resolves through a bare xmlns declaration in
        // the DOM's lookup; the streaming path must agree.
        let text = format!(
            r#"<xsd:schema xmlns:xsd="{XSD}" xmlns="urn:default">
                 <xsd:complexType name="T">
                   <xsd:element name="x" type="xmlns:foo"/>
                 </xsd:complexType>
               </xsd:schema>"#
        );
        differential(&text);
    }
}
