//! Schema-level diagnostics.

use std::fmt;

use openmeta_xml::{Position, XmlError};

/// A failure while interpreting a document as XMIT schema metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The underlying document failed to parse as XML at all.
    Xml(XmlError),
    /// A structural problem in the schema (with source position).
    Invalid {
        /// What is wrong.
        message: String,
        /// Where in the source document.
        position: Position,
    },
}

impl SchemaError {
    pub(crate) fn invalid(message: impl Into<String>, position: Position) -> Self {
        SchemaError::Invalid { message: message.into(), position }
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Xml(e) => write!(f, "schema document is not well-formed XML: {e}"),
            SchemaError::Invalid { message, position } => {
                write!(f, "invalid schema at {position}: {message}")
            }
        }
    }
}

impl std::error::Error for SchemaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchemaError::Xml(e) => Some(e),
            SchemaError::Invalid { .. } => None,
        }
    }
}

impl From<XmlError> for SchemaError {
    fn from(e: XmlError) -> Self {
        SchemaError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SchemaError::invalid("bad type", Position { line: 2, column: 5, offset: 30 });
        assert_eq!(e.to_string(), "invalid schema at 2:5: bad type");
    }
}
