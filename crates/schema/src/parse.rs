//! Building [`SchemaDocument`]s from DOM trees.
//!
//! This is the "selective traversal" of §3.1: find every `complexType`
//! subtree, then walk its `element` children.  Everything else in the
//! document (annotations, comments, unknown attributes) is ignored, as a
//! metadata reader should tolerate.
//!
//! Two parse paths share the semantic lowering in this module:
//! [`parse_str`] streams `xml::Reader` pull events straight into the
//! schema model (no DOM allocation — the discovery hot path), while
//! [`parse_str_dom`]/[`parse_document`] go through the generic DOM (kept
//! for the document API and as the differential-testing reference).

use openmeta_xml::{Document, NodeId, Position, XMLNS_NS};

use crate::error::SchemaError;
use crate::model::{ComplexType, DimensionPlacement, ElementDecl, Occurs, SchemaDocument, TypeRef};
use crate::xsd::{XsdCategory, XsdPrimitive, XSD_NAMESPACES};

/// Parse schema metadata from XML text (streaming, DOM-free).
pub fn parse_str(text: &str) -> Result<SchemaDocument, SchemaError> {
    crate::stream::parse_str_streaming(text)
}

/// Parse schema metadata from XML text via the DOM builder.
///
/// Semantically equivalent to [`parse_str`]; retained as the reference
/// implementation the streaming path is differentially tested against.
pub fn parse_str_dom(text: &str) -> Result<SchemaDocument, SchemaError> {
    let doc = openmeta_xml::parse(text)?;
    parse_document(&doc)
}

/// Parse schema metadata from an already-built DOM.
pub fn parse_document(doc: &Document) -> Result<SchemaDocument, SchemaError> {
    let Some(root) = doc.root_element() else {
        return Err(SchemaError::invalid("document has no root element", Position::start()));
    };
    // "subtrees of the document tree corresponding to the set of all
    // complexType element tags are extracted" — the root itself may be one.
    let candidates: Vec<NodeId> = doc
        .descendants(root)
        .filter(|&n| {
            matches!(&doc.node(n).kind, openmeta_xml::NodeKind::Element { .. })
                && doc.name(n).local == "complexType"
        })
        .collect();
    let mut out = SchemaDocument::default();
    for ct in candidates {
        let parsed = parse_complex_type(doc, ct)?;
        if out.get(&parsed.name).is_some() {
            return Err(SchemaError::invalid(
                format!("duplicate complexType '{}'", parsed.name),
                doc.node(ct).position,
            ));
        }
        out.types.push(parsed);
    }
    // Enumerations: simpleType restrictions with enumeration facets.
    let simple_types: Vec<NodeId> = doc
        .descendants(root)
        .filter(|&n| {
            matches!(&doc.node(n).kind, openmeta_xml::NodeKind::Element { .. })
                && doc.name(n).local == "simpleType"
        })
        .collect();
    for st in simple_types {
        let parsed = parse_enum(doc, st)?;
        if out.get(&parsed.name).is_some() || out.get_enum(&parsed.name).is_some() {
            return Err(SchemaError::invalid(
                format!("duplicate type name '{}'", parsed.name),
                doc.node(st).position,
            ));
        }
        out.enums.push(parsed);
    }
    if out.types.is_empty() && out.enums.is_empty() {
        return Err(SchemaError::invalid(
            "document defines no complexType or enumeration simpleType",
            doc.node(root).position,
        ));
    }
    Ok(out)
}

fn parse_enum(doc: &Document, st: NodeId) -> Result<crate::model::EnumType, SchemaError> {
    let at = doc.node(st).position;
    let name = doc.attribute(st, "name");
    let restriction = doc.children_named(st, "restriction").next();
    let facets: Vec<(Option<String>, Position)> = match restriction {
        Some(r) => doc
            .children_named(r, "enumeration")
            .map(|facet| {
                (doc.attribute(facet, "value").map(str::to_string), doc.node(facet).position)
            })
            .collect(),
        None => Vec::new(),
    };
    enum_from_facets(name, at, restriction.is_some(), &facets)
}

/// Validate a collected `simpleType` (shared by the DOM and streaming
/// paths): `name` and `facets` come from whichever traversal ran;
/// `had_restriction` says whether a direct `restriction` child existed.
pub(crate) fn enum_from_facets(
    name: Option<&str>,
    at: Position,
    had_restriction: bool,
    facets: &[(Option<String>, Position)],
) -> Result<crate::model::EnumType, SchemaError> {
    let name = name.ok_or_else(|| SchemaError::invalid("simpleType lacks a name attribute", at))?;
    if !had_restriction {
        return Err(SchemaError::invalid(format!("simpleType '{name}' has no restriction"), at));
    }
    let mut values: Vec<String> = Vec::new();
    for (value, facet_at) in facets {
        let v = value.as_deref().ok_or_else(|| {
            SchemaError::invalid(format!("enumeration facet in '{name}' lacks a value"), *facet_at)
        })?;
        if values.iter().any(|x| x == v) {
            return Err(SchemaError::invalid(
                format!("simpleType '{name}' repeats enumeration value '{v}'"),
                *facet_at,
            ));
        }
        values.push(v.to_string());
    }
    if values.is_empty() {
        return Err(SchemaError::invalid(
            format!("simpleType '{name}' declares no enumeration values"),
            at,
        ));
    }
    Ok(crate::model::EnumType { name: name.to_string(), values })
}

fn parse_complex_type(doc: &Document, ct: NodeId) -> Result<ComplexType, SchemaError> {
    let at = doc.node(ct).position;
    let name = doc
        .attribute(ct, "name")
        .ok_or_else(|| SchemaError::invalid("complexType lacks a name attribute", at))?
        .to_string();
    let mut elements: Vec<ElementDecl> = Vec::new();
    for child in doc.child_elements(ct) {
        let child_name = &doc.name(child).local;
        // Sequence/annotation wrappers are transparent; anything else
        // that is not an element declaration is ignored.
        if child_name == "sequence" || child_name == "all" {
            for inner in doc.child_elements(child) {
                if doc.name(inner).local == "element" {
                    push_element(doc, inner, &name, &mut elements)?;
                }
            }
            continue;
        }
        if child_name == "element" {
            push_element(doc, child, &name, &mut elements)?;
        }
    }
    let ct_model = ComplexType { name, elements };
    validate_dimensions(&ct_model, at)?;
    Ok(ct_model)
}

fn push_element(
    doc: &Document,
    el: NodeId,
    type_name: &str,
    elements: &mut Vec<ElementDecl>,
) -> Result<(), SchemaError> {
    let decl = parse_element(doc, el)?;
    if elements.iter().any(|e| e.name == decl.name) {
        return Err(SchemaError::invalid(
            format!("duplicate element '{}' in complexType '{type_name}'", decl.name),
            doc.node(el).position,
        ));
    }
    elements.push(decl);
    Ok(())
}

fn parse_element(doc: &Document, el: NodeId) -> Result<ElementDecl, SchemaError> {
    let at = doc.node(el).position;
    let attrs = ElementAttrs {
        name: doc.attribute(el, "name"),
        ty: doc.attribute(el, "type"),
        min_occurs: doc.attribute(el, "minOccurs"),
        max_occurs: doc.attribute(el, "maxOccurs"),
        dimension_name: doc.attribute(el, "dimensionName"),
        dimension_placement: doc.attribute(el, "dimensionPlacement"),
    };
    element_decl_from_attrs(attrs, at, |p| lookup_prefix(doc, el, p))
}

/// The schema-relevant attributes of an `element` declaration, extracted
/// by whichever traversal (DOM or streaming) found it.
pub(crate) struct ElementAttrs<'a> {
    pub name: Option<&'a str>,
    pub ty: Option<&'a str>,
    pub min_occurs: Option<&'a str>,
    pub max_occurs: Option<&'a str>,
    pub dimension_name: Option<&'a str>,
    pub dimension_placement: Option<&'a str>,
}

/// Lower an `element` declaration to the model (shared by the DOM and
/// streaming paths).  `lookup` resolves a namespace prefix to its URI as
/// bound at the element — the only context-dependent piece.
pub(crate) fn element_decl_from_attrs(
    attrs: ElementAttrs<'_>,
    at: Position,
    lookup: impl FnMut(&str) -> Option<String>,
) -> Result<ElementDecl, SchemaError> {
    let name = attrs
        .name
        .ok_or_else(|| SchemaError::invalid("element lacks a name attribute", at))?
        .to_string();
    let type_attr = attrs.ty.ok_or_else(|| {
        SchemaError::invalid(format!("element '{name}' lacks a type attribute"), at)
    })?;
    let type_ref = resolve_type_ref_with(type_attr, at, lookup)?;

    if let Some(min) = attrs.min_occurs {
        if !matches!(min, "0" | "1") {
            return Err(SchemaError::invalid(
                format!("element '{name}': minOccurs must be 0 or 1, got '{min}'"),
                at,
            ));
        }
    }

    let mut dimension_name = attrs.dimension_name.map(str::to_string);
    let occurs = match attrs.max_occurs {
        None | Some("1") => Occurs::One,
        Some("*") | Some("unbounded") => Occurs::Unbounded,
        Some(v) if v.chars().all(|c| c.is_ascii_digit()) => {
            let n: usize = v.parse().map_err(|_| {
                SchemaError::invalid(format!("element '{name}': maxOccurs '{v}' out of range"), at)
            })?;
            if n == 0 {
                return Err(SchemaError::invalid(
                    format!("element '{name}': maxOccurs must be positive"),
                    at,
                ));
            }
            Occurs::Bounded(n)
        }
        // §3.1: "if the value is a string, an element of type integer with
        // an identical name attribute must be present … the value of this
        // variable will be used at run-time to indicate the size".
        Some(field) => {
            if dimension_name.is_none() {
                dimension_name = Some(field.to_string());
            }
            Occurs::Unbounded
        }
    };

    let dimension_placement = match attrs.dimension_placement {
        None | Some("before") => DimensionPlacement::Before,
        Some("after") => DimensionPlacement::After,
        Some(other) => {
            return Err(SchemaError::invalid(
                format!("element '{name}': dimensionPlacement must be before/after, got '{other}'"),
                at,
            ))
        }
    };

    if occurs == Occurs::Unbounded && dimension_name.is_none() {
        return Err(SchemaError::invalid(
            format!(
                "element '{name}': unbounded arrays need a dimensionName (or a maxOccurs \
                 naming the length element)"
            ),
            at,
        ));
    }
    if matches!(occurs, Occurs::Unbounded | Occurs::Bounded(_))
        && matches!(type_ref, TypeRef::Primitive(XsdPrimitive::String))
    {
        return Err(SchemaError::invalid(
            format!("element '{name}': arrays of xsd:string are not supported"),
            at,
        ));
    }
    if matches!(occurs, Occurs::Unbounded | Occurs::Bounded(_))
        && matches!(type_ref, TypeRef::Named(_))
    {
        return Err(SchemaError::invalid(
            format!("element '{name}': arrays of complex types are not supported"),
            at,
        ));
    }

    Ok(ElementDecl { name, type_ref, occurs, dimension_name, dimension_placement })
}

/// Resolve a `type="pfx:local"` attribute value against in-scope
/// namespace declarations (attribute values are QNames by convention, not
/// by XML rule, so the XML layer does not resolve them for us).
pub(crate) fn resolve_type_ref_with(
    value: &str,
    at: Position,
    mut lookup: impl FnMut(&str) -> Option<String>,
) -> Result<TypeRef, SchemaError> {
    let (prefix, local) = match value.split_once(':') {
        Some((p, l)) => (Some(p), l),
        None => (None, value),
    };
    if local.is_empty() || local.contains(':') {
        return Err(SchemaError::invalid(format!("malformed type reference '{value}'"), at));
    }
    let ns = match prefix {
        None => None,
        Some(p) => {
            let uri = lookup(p).ok_or_else(|| {
                SchemaError::invalid(
                    format!("type reference '{value}' uses undeclared prefix '{p}'"),
                    at,
                )
            })?;
            Some(uri)
        }
    };
    match ns {
        Some(uri) if XSD_NAMESPACES.contains(&uri.as_str()) => {
            XsdPrimitive::from_local(local).map(TypeRef::Primitive).ok_or_else(|| {
                SchemaError::invalid(
                    format!("'xsd:{local}' is not a supported XML Schema datatype"),
                    at,
                )
            })
        }
        _ => Ok(TypeRef::Named(local.to_string())),
    }
}

/// Walk ancestors for an `xmlns:prefix` declaration.
fn lookup_prefix(doc: &Document, from: NodeId, prefix: &str) -> Option<String> {
    let mut cur = Some(from);
    while let Some(n) = cur {
        for attr in doc.attributes(n) {
            let is_decl =
                attr.name.namespace.as_deref() == Some(XMLNS_NS) || attr.name.prefix == "xmlns";
            if is_decl && attr.name.local == prefix {
                return Some(attr.value.clone());
            }
        }
        cur = doc.node(n).parent;
    }
    None
}

/// Dynamic arrays must be governed by an integer-typed sibling (shared by
/// the DOM and streaming paths; `at` is the complexType's position).
pub(crate) fn validate_dimensions(ct: &ComplexType, at: Position) -> Result<(), SchemaError> {
    for e in &ct.elements {
        if e.occurs != Occurs::Unbounded {
            continue;
        }
        let dim = e.dimension_name.as_deref().expect("unbounded implies dimension (parse)");
        // The dimension element may be omitted entirely (the paper's
        // Figure 4 SimpleData does this): the binding layer synthesizes an
        // implicit integer length field.  When present, it must be usable.
        let Some(target) = ct.element(dim) else { continue };
        let ok = match &target.type_ref {
            TypeRef::Primitive(p) => {
                matches!(p.category(), XsdCategory::Signed(_) | XsdCategory::Unsigned(_))
                    && target.occurs == Occurs::One
            }
            TypeRef::Named(_) => false,
        };
        if !ok {
            return Err(SchemaError::invalid(
                format!("element '{}': dimension '{dim}' must be a scalar integer element", e.name),
                at,
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn wrap(body: &str) -> String {
        format!("<xsd:schema xmlns:xsd=\"{XSD}\">{body}</xsd:schema>")
    }

    /// Figure 2 of the paper, verbatim structure.
    #[test]
    fn parses_asdoff_event() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="ASDOffEvent">
                 <xsd:element name="centerID" type="xsd:string" />
                 <xsd:element name="airline" type="xsd:string" />
                 <xsd:element name="flightNum" type="xsd:integer" />
                 <xsd:element name="off" type="xsd:unsignedLong" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let ct = doc.get("ASDOffEvent").unwrap();
        assert_eq!(ct.elements.len(), 4);
        assert_eq!(
            ct.element("centerID").unwrap().type_ref,
            TypeRef::Primitive(XsdPrimitive::String)
        );
        assert_eq!(
            ct.element("off").unwrap().type_ref,
            TypeRef::Primitive(XsdPrimitive::UnsignedLong)
        );
    }

    /// Figure 4's SimpleData: dynamic array with dimensionName/Placement.
    #[test]
    fn parses_simple_data_with_dimension() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="SimpleData">
                 <xsd:element name="timestep" type="xsd:integer" />
                 <xsd:element name="size" type="xsd:integer" />
                 <xsd:element name="data" type="xsd:float"
                     minOccurs="0" maxOccurs="*"
                     dimensionPlacement="before" dimensionName="size" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let data = doc.get("SimpleData").unwrap().element("data").unwrap();
        assert_eq!(data.occurs, Occurs::Unbounded);
        assert_eq!(data.dimension_name.as_deref(), Some("size"));
        assert_eq!(data.dimension_placement, DimensionPlacement::Before);
    }

    /// §3.1: a maxOccurs naming a field is the length variable.
    #[test]
    fn max_occurs_naming_a_field_is_a_dimension() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="count" type="xsd:int" />
                 <xsd:element name="vals" type="xsd:double" maxOccurs="count" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let vals = doc.get("T").unwrap().element("vals").unwrap();
        assert_eq!(vals.occurs, Occurs::Unbounded);
        assert_eq!(vals.dimension_name.as_deref(), Some("count"));
    }

    #[test]
    fn numeric_max_occurs_is_static_array() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="grid" type="xsd:float" maxOccurs="16" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        assert_eq!(doc.get("T").unwrap().element("grid").unwrap().occurs, Occurs::Bounded(16));
    }

    #[test]
    fn bare_complex_type_root_accepted() {
        let doc = parse_str(&format!(
            r#"<xsd:complexType name="Solo" xmlns:xsd="{XSD}">
                 <xsd:element name="x" type="xsd:int" />
               </xsd:complexType>"#
        ))
        .unwrap();
        assert_eq!(doc.type_names(), vec!["Solo"]);
    }

    #[test]
    fn multiple_types_and_composition() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="Header">
                 <xsd:element name="seq" type="xsd:int" />
               </xsd:complexType>
               <xsd:complexType name="Msg">
                 <xsd:element name="hdr" type="Header" />
                 <xsd:element name="v" type="xsd:double" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        assert_eq!(doc.type_names(), vec!["Header", "Msg"]);
        assert_eq!(
            doc.get("Msg").unwrap().element("hdr").unwrap().type_ref,
            TypeRef::Named("Header".to_string())
        );
    }

    #[test]
    fn sequence_wrapper_is_transparent() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:sequence>
                   <xsd:element name="x" type="xsd:int" />
                   <xsd:element name="y" type="xsd:int" />
                 </xsd:sequence>
               </xsd:complexType>"#,
        ))
        .unwrap();
        assert_eq!(doc.get("T").unwrap().elements.len(), 2);
    }

    #[test]
    fn old_draft_namespace_accepted() {
        let doc = parse_str(
            r#"<xsd:complexType name="T"
                  xmlns:xsd="http://www.w3.org/2000/10/XMLSchema">
                 <xsd:element name="x" type="xsd:unsignedLong" />
               </xsd:complexType>"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("T").unwrap().element("x").unwrap().type_ref,
            TypeRef::Primitive(XsdPrimitive::UnsignedLong)
        );
    }

    #[test]
    fn missing_name_rejected() {
        let err = parse_str(&wrap(
            r#"<xsd:complexType><xsd:element name="x" type="xsd:int"/></xsd:complexType>"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("lacks a name"));
    }

    #[test]
    fn missing_type_rejected() {
        let err = parse_str(&wrap(
            r#"<xsd:complexType name="T"><xsd:element name="x"/></xsd:complexType>"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("lacks a type"));
    }

    #[test]
    fn unknown_xsd_type_rejected() {
        let err = parse_str(&wrap(
            r#"<xsd:complexType name="T"><xsd:element name="x" type="xsd:hexBinary"/></xsd:complexType>"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("not a supported"));
    }

    #[test]
    fn undeclared_type_prefix_rejected() {
        let err = parse_str(&wrap(
            r#"<xsd:complexType name="T"><xsd:element name="x" type="zz:int"/></xsd:complexType>"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("undeclared prefix"));
    }

    #[test]
    fn unbounded_without_dimension_rejected() {
        let err = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="xs" type="xsd:float" maxOccurs="*" />
               </xsd:complexType>"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("dimensionName"));
    }

    #[test]
    fn dimension_may_be_implicit_like_figure_4() {
        // Figure 4's SimpleData names a dimension that is not declared as
        // an element; the binding layer synthesizes it.
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="xs" type="xsd:float" maxOccurs="*" dimensionName="n" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let xs = doc.get("T").unwrap().element("xs").unwrap();
        assert_eq!(xs.dimension_name.as_deref(), Some("n"));
        assert!(doc.get("T").unwrap().element("n").is_none());
    }

    #[test]
    fn declared_dimension_must_be_integer() {
        let err = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="n" type="xsd:float" />
                 <xsd:element name="xs" type="xsd:float" maxOccurs="*" dimensionName="n" />
               </xsd:complexType>"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("scalar integer"));
    }

    #[test]
    fn string_and_complex_arrays_rejected() {
        for body in [
            r#"<xsd:complexType name="T">
                 <xsd:element name="n" type="xsd:int" />
                 <xsd:element name="xs" type="xsd:string" maxOccurs="*" dimensionName="n" />
               </xsd:complexType>"#,
            r#"<xsd:complexType name="U">
                 <xsd:element name="x" type="xsd:int" />
               </xsd:complexType>
               <xsd:complexType name="T">
                 <xsd:element name="us" type="U" maxOccurs="4" />
               </xsd:complexType>"#,
        ] {
            assert!(parse_str(&wrap(body)).is_err());
        }
    }

    #[test]
    fn duplicate_type_and_element_names_rejected() {
        assert!(parse_str(&wrap(
            r#"<xsd:complexType name="T"><xsd:element name="x" type="xsd:int"/></xsd:complexType>
               <xsd:complexType name="T"><xsd:element name="y" type="xsd:int"/></xsd:complexType>"#,
        ))
        .is_err());
        assert!(parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="x" type="xsd:int"/>
                 <xsd:element name="x" type="xsd:int"/>
               </xsd:complexType>"#,
        ))
        .is_err());
    }

    #[test]
    fn no_complex_types_rejected_and_bad_xml_wrapped() {
        assert!(matches!(parse_str("<a/>"), Err(SchemaError::Invalid { .. })));
        assert!(matches!(parse_str("<a>"), Err(SchemaError::Xml(_))));
    }

    #[test]
    fn bad_min_occurs_rejected() {
        assert!(parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="x" type="xsd:int" minOccurs="7"/>
               </xsd:complexType>"#,
        ))
        .is_err());
    }
}
