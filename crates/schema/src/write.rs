//! Serializing schema models back to XML Schema documents.
//!
//! The generator produces exactly the dialect [`crate::parse`] reads, so
//! models round-trip.  XMIT uses this to publish formats (e.g. the tools
//! that put documents on the HTTP server) and the benchmark harness uses
//! it to synthesize workloads of parameterized structure sizes.

use std::fmt::Write as _;

use crate::model::{ComplexType, DimensionPlacement, Occurs, SchemaDocument, TypeRef};

/// The namespace prefix emitted for schema constructs.
const PREFIX: &str = "xsd";
/// The namespace URI emitted (the 2001 recommendation).
const NS: &str = "http://www.w3.org/2001/XMLSchema";

/// Render a whole document, wrapped in `<xsd:schema>`.
pub fn to_xml(doc: &SchemaDocument) -> String {
    let mut out = String::with_capacity(256 * doc.types.len().max(1));
    let _ = writeln!(out, "<{PREFIX}:schema xmlns:{PREFIX}=\"{NS}\">");
    for e in &doc.enums {
        write_enum(e, 1, &mut out);
    }
    for t in &doc.types {
        write_type(t, 1, &mut out);
    }
    out.push_str(&format!("</{PREFIX}:schema>\n"));
    out
}

fn write_enum(e: &crate::model::EnumType, depth: usize, out: &mut String) {
    indent(depth, out);
    let _ = writeln!(out, "<{PREFIX}:simpleType name=\"{}\">", e.name);
    indent(depth + 1, out);
    let _ = writeln!(out, "<{PREFIX}:restriction base=\"{PREFIX}:string\">");
    for v in &e.values {
        indent(depth + 2, out);
        let _ = writeln!(out, "<{PREFIX}:enumeration value=\"{v}\" />");
    }
    indent(depth + 1, out);
    let _ = writeln!(out, "</{PREFIX}:restriction>");
    indent(depth, out);
    let _ = writeln!(out, "</{PREFIX}:simpleType>");
}

/// Render a single complex type as a standalone document (namespace
/// declared on the type element itself, like the paper's Figure 2).
pub fn type_to_xml(t: &ComplexType) -> String {
    let mut out = String::with_capacity(256);
    let _ = writeln!(out, "<{PREFIX}:complexType name=\"{}\" xmlns:{PREFIX}=\"{NS}\">", t.name);
    for e in &t.elements {
        write_element(e, 1, &mut out);
    }
    out.push_str(&format!("</{PREFIX}:complexType>\n"));
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth * 2 {
        out.push(' ');
    }
}

fn write_type(t: &ComplexType, depth: usize, out: &mut String) {
    indent(depth, out);
    let _ = writeln!(out, "<{PREFIX}:complexType name=\"{}\">", t.name);
    for e in &t.elements {
        write_element(e, depth + 1, out);
    }
    indent(depth, out);
    let _ = writeln!(out, "</{PREFIX}:complexType>");
}

fn write_element(e: &crate::model::ElementDecl, depth: usize, out: &mut String) {
    indent(depth, out);
    let type_attr = match &e.type_ref {
        TypeRef::Primitive(p) => format!("{PREFIX}:{}", p.local_name()),
        TypeRef::Named(n) => n.clone(),
    };
    let _ = write!(out, "<{PREFIX}:element name=\"{}\" type=\"{type_attr}\"", e.name);
    match e.occurs {
        Occurs::One => {}
        Occurs::Bounded(n) => {
            let _ = write!(out, " maxOccurs=\"{n}\"");
        }
        Occurs::Unbounded => {
            let _ = write!(out, " minOccurs=\"0\" maxOccurs=\"*\"");
            if let Some(dim) = &e.dimension_name {
                let placement = match e.dimension_placement {
                    DimensionPlacement::Before => "before",
                    DimensionPlacement::After => "after",
                };
                let _ = write!(out, " dimensionPlacement=\"{placement}\" dimensionName=\"{dim}\"");
            }
        }
    }
    out.push_str(" />\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElementDecl;
    use crate::parse::parse_str;
    use crate::xsd::XsdPrimitive;

    fn sample() -> SchemaDocument {
        SchemaDocument {
            types: vec![
                ComplexType::new(
                    "Header",
                    vec![ElementDecl::scalar("seq", TypeRef::Primitive(XsdPrimitive::Int))],
                ),
                ComplexType::new(
                    "SimpleData",
                    vec![
                        ElementDecl::scalar("timestep", TypeRef::Primitive(XsdPrimitive::Integer)),
                        ElementDecl::scalar("size", TypeRef::Primitive(XsdPrimitive::Integer)),
                        ElementDecl::dynamic(
                            "data",
                            TypeRef::Primitive(XsdPrimitive::Float),
                            "size",
                        ),
                        ElementDecl::array("grid", TypeRef::Primitive(XsdPrimitive::Double), 4),
                        ElementDecl::scalar("hdr", TypeRef::Named("Header".to_string())),
                    ],
                ),
            ],
            enums: vec![crate::model::EnumType {
                name: "BoundaryKind".to_string(),
                values: vec!["open".to_string(), "wall".to_string(), "inflow".to_string()],
            }],
        }
    }

    #[test]
    fn enum_simple_types_round_trip() {
        let xml = to_xml(&sample());
        assert!(xml.contains("<xsd:simpleType name=\"BoundaryKind\">"));
        assert!(xml.contains("<xsd:enumeration value=\"wall\" />"));
        let back = parse_str(&xml).unwrap();
        assert_eq!(back.get_enum("BoundaryKind").unwrap().values.len(), 3);
    }

    #[test]
    fn document_round_trips_through_parser() {
        let doc = sample();
        let xml = to_xml(&doc);
        let back = parse_str(&xml).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn single_type_round_trips() {
        let t = sample().types.remove(0);
        let xml = type_to_xml(&t);
        let back = parse_str(&xml).unwrap();
        assert_eq!(back.types, vec![t]);
    }

    #[test]
    fn dynamic_array_attributes_present() {
        let xml = to_xml(&sample());
        assert!(xml.contains("maxOccurs=\"*\""));
        assert!(xml.contains("dimensionName=\"size\""));
        assert!(xml.contains("dimensionPlacement=\"before\""));
        assert!(xml.contains("maxOccurs=\"4\""));
    }
}
