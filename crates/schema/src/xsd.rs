//! The XML Schema primitive datatypes XMIT maps onto native metadata.
//!
//! The paper's footnote points at the XML Schema Part 0 primer for the
//! full datatype set; XMIT uses the numeric/string core.  Each primitive
//! here knows its canonical lexical name and its *category + width hint*,
//! which is what the XMIT→PBIO mapping consumes (the concrete byte width
//! for the unsized types like `xsd:integer` comes from the target machine
//! model at binding time).

use std::fmt;

/// Namespace URIs accepted as "the XML Schema namespace".
///
/// The paper predates the final 2001 recommendation, so both the 2000
/// working-draft and 2001 REC URIs are accepted, as Xerces did.
pub const XSD_NAMESPACES: [&str; 3] = [
    "http://www.w3.org/2001/XMLSchema",
    "http://www.w3.org/2000/10/XMLSchema",
    "http://www.w3.org/1999/XMLSchema",
];

/// An XML Schema primitive type usable in XMIT metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XsdPrimitive {
    /// `xsd:string`.
    String,
    /// `xsd:boolean`.
    Boolean,
    /// `xsd:float` (32-bit IEEE).
    Float,
    /// `xsd:double` (64-bit IEEE).
    Double,
    /// `xsd:integer` — unbounded in XML Schema; XMIT binds it to the
    /// platform `int`.
    Integer,
    /// `xsd:long` (64-bit signed).
    Long,
    /// `xsd:int` (32-bit signed).
    Int,
    /// `xsd:short` (16-bit signed).
    Short,
    /// `xsd:byte` (8-bit signed).
    Byte,
    /// `xsd:nonNegativeInteger` — bound to platform `unsigned int`.
    NonNegativeInteger,
    /// `xsd:unsignedLong` — bound to platform `unsigned long`, exactly as
    /// in the paper's `ASDOffEvent` and `JoinRequest` examples.
    UnsignedLong,
    /// `xsd:unsignedInt` (32-bit unsigned).
    UnsignedInt,
    /// `xsd:unsignedShort` (16-bit unsigned).
    UnsignedShort,
    /// `xsd:unsignedByte` (8-bit unsigned).
    UnsignedByte,
}

/// The value category a primitive belongs to, for native-metadata mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsdCategory {
    /// Character string.
    String,
    /// Boolean.
    Boolean,
    /// Signed integer; payload is the fixed width in bytes, or `None` when
    /// the platform decides (`xsd:integer`).
    Signed(Option<usize>),
    /// Unsigned integer; payload as for `Signed`, with `None` meaning
    /// "platform `unsigned long`" for [`XsdPrimitive::UnsignedLong`].
    Unsigned(Option<usize>),
    /// IEEE float of the given width in bytes.
    FloatN(usize),
}

impl XsdPrimitive {
    /// Parse the local name of an xsd-namespace type reference.
    pub fn from_local(local: &str) -> Option<XsdPrimitive> {
        Some(match local {
            "string" => XsdPrimitive::String,
            "boolean" => XsdPrimitive::Boolean,
            "float" => XsdPrimitive::Float,
            "double" | "decimal" => XsdPrimitive::Double,
            "integer" => XsdPrimitive::Integer,
            "long" => XsdPrimitive::Long,
            "int" => XsdPrimitive::Int,
            "short" => XsdPrimitive::Short,
            "byte" => XsdPrimitive::Byte,
            "nonNegativeInteger" | "positiveInteger" => XsdPrimitive::NonNegativeInteger,
            "unsignedLong" => XsdPrimitive::UnsignedLong,
            "unsignedInt" => XsdPrimitive::UnsignedInt,
            "unsignedShort" => XsdPrimitive::UnsignedShort,
            "unsignedByte" => XsdPrimitive::UnsignedByte,
            _ => return None,
        })
    }

    /// The canonical lexical name (`unsignedLong`, not `UnsignedLong`).
    pub fn local_name(self) -> &'static str {
        match self {
            XsdPrimitive::String => "string",
            XsdPrimitive::Boolean => "boolean",
            XsdPrimitive::Float => "float",
            XsdPrimitive::Double => "double",
            XsdPrimitive::Integer => "integer",
            XsdPrimitive::Long => "long",
            XsdPrimitive::Int => "int",
            XsdPrimitive::Short => "short",
            XsdPrimitive::Byte => "byte",
            XsdPrimitive::NonNegativeInteger => "nonNegativeInteger",
            XsdPrimitive::UnsignedLong => "unsignedLong",
            XsdPrimitive::UnsignedInt => "unsignedInt",
            XsdPrimitive::UnsignedShort => "unsignedShort",
            XsdPrimitive::UnsignedByte => "unsignedByte",
        }
    }

    /// The mapping category.
    pub fn category(self) -> XsdCategory {
        match self {
            XsdPrimitive::String => XsdCategory::String,
            XsdPrimitive::Boolean => XsdCategory::Boolean,
            XsdPrimitive::Float => XsdCategory::FloatN(4),
            XsdPrimitive::Double => XsdCategory::FloatN(8),
            XsdPrimitive::Integer => XsdCategory::Signed(None),
            XsdPrimitive::Long => XsdCategory::Signed(Some(8)),
            XsdPrimitive::Int => XsdCategory::Signed(Some(4)),
            XsdPrimitive::Short => XsdCategory::Signed(Some(2)),
            XsdPrimitive::Byte => XsdCategory::Signed(Some(1)),
            XsdPrimitive::NonNegativeInteger => XsdCategory::Unsigned(None),
            XsdPrimitive::UnsignedLong => XsdCategory::Unsigned(None),
            XsdPrimitive::UnsignedInt => XsdCategory::Unsigned(Some(4)),
            XsdPrimitive::UnsignedShort => XsdCategory::Unsigned(Some(2)),
            XsdPrimitive::UnsignedByte => XsdCategory::Unsigned(Some(1)),
        }
    }

    /// Every supported primitive, for table-driven tests and generators.
    pub fn all() -> &'static [XsdPrimitive] {
        &[
            XsdPrimitive::String,
            XsdPrimitive::Boolean,
            XsdPrimitive::Float,
            XsdPrimitive::Double,
            XsdPrimitive::Integer,
            XsdPrimitive::Long,
            XsdPrimitive::Int,
            XsdPrimitive::Short,
            XsdPrimitive::Byte,
            XsdPrimitive::NonNegativeInteger,
            XsdPrimitive::UnsignedLong,
            XsdPrimitive::UnsignedInt,
            XsdPrimitive::UnsignedShort,
            XsdPrimitive::UnsignedByte,
        ]
    }
}

impl fmt::Display for XsdPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xsd:{}", self.local_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &p in XsdPrimitive::all() {
            assert_eq!(XsdPrimitive::from_local(p.local_name()), Some(p), "{p}");
        }
        assert_eq!(XsdPrimitive::from_local("hexBinary"), None);
    }

    #[test]
    fn paper_types_are_present() {
        // The types used in Figures 2 and 4 of the paper.
        assert_eq!(XsdPrimitive::from_local("string"), Some(XsdPrimitive::String));
        assert_eq!(XsdPrimitive::from_local("integer"), Some(XsdPrimitive::Integer));
        assert_eq!(XsdPrimitive::from_local("unsignedLong"), Some(XsdPrimitive::UnsignedLong));
        assert_eq!(XsdPrimitive::from_local("float"), Some(XsdPrimitive::Float));
    }

    #[test]
    fn categories() {
        assert_eq!(XsdPrimitive::Float.category(), XsdCategory::FloatN(4));
        assert_eq!(XsdPrimitive::Double.category(), XsdCategory::FloatN(8));
        assert_eq!(XsdPrimitive::Integer.category(), XsdCategory::Signed(None));
        assert_eq!(XsdPrimitive::Short.category(), XsdCategory::Signed(Some(2)));
        assert_eq!(XsdPrimitive::UnsignedLong.category(), XsdCategory::Unsigned(None));
    }

    #[test]
    fn display_uses_xsd_prefix() {
        assert_eq!(XsdPrimitive::UnsignedLong.to_string(), "xsd:unsignedLong");
    }
}
