//! The XML Schema subset that XMIT metadata documents are written in.
//!
//! Per §3.1 of the paper, XMIT metadata definition "starts with XML
//! documents that contain appropriate type definitions": `complexType`
//! elements whose `element` children name fields, with XML Schema
//! primitive types (`xsd:string`, `xsd:integer`, `xsd:unsignedLong`,
//! `xsd:float`, `xsd:byte`, …) referenced through the namespace
//! convention.  Arrays use `maxOccurs` — a number for a fixed bound, `*`
//! for dynamic — plus XMIT's extension attributes `dimensionName` (the
//! sibling element holding the run-time length) and `dimensionPlacement`.
//!
//! This crate turns DOM trees from [`openmeta_xml`] into a validated
//! [`SchemaDocument`] model and can serialize models back to schema text
//! (used by XMIT's code generators and by the benchmark workload
//! generator).  It knows nothing about PBIO: mapping schema types onto
//! native metadata is XMIT's job.

#![deny(unsafe_code)]

pub mod error;
pub mod model;
pub mod parse;
pub mod stream;
pub mod write;
pub mod xsd;

pub use error::SchemaError;
pub use model::{ComplexType, ElementDecl, Occurs, SchemaDocument, TypeRef};
pub use parse::{parse_document, parse_str, parse_str_dom};
pub use write::to_xml;
pub use xsd::{XsdPrimitive, XSD_NAMESPACES};
