//! Property tests: arbitrary schema models round-trip through the
//! XML Schema writer and parser.

use proptest::prelude::*;

use openmeta_schema::{
    parse_str, parse_str_dom, to_xml, ComplexType, ElementDecl, Occurs, SchemaDocument, TypeRef,
    XsdPrimitive,
};

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,10}"
        .prop_filter("avoid reserved", |s| !s.to_ascii_lowercase().starts_with("xml"))
}

fn primitive() -> impl Strategy<Value = XsdPrimitive> {
    prop::sample::select(XsdPrimitive::all().to_vec())
}

fn integer_primitive() -> impl Strategy<Value = XsdPrimitive> {
    prop::sample::select(vec![
        XsdPrimitive::Int,
        XsdPrimitive::Integer,
        XsdPrimitive::Long,
        XsdPrimitive::UnsignedInt,
        XsdPrimitive::UnsignedLong,
    ])
}

fn array_elem_primitive() -> impl Strategy<Value = XsdPrimitive> {
    prop::sample::select(
        XsdPrimitive::all()
            .iter()
            .copied()
            .filter(|p| *p != XsdPrimitive::String)
            .collect::<Vec<_>>(),
    )
}

/// Build a valid complex type: unique names, dimensions point at integer
/// scalars that exist.
fn complex_type() -> impl Strategy<Value = ComplexType> {
    (
        ident(),
        proptest::collection::vec((ident(), primitive()), 1..6),
        proptest::collection::vec(
            // Count ≥ 2: maxOccurs="1" canonicalizes to a scalar on parse.
            (ident(), array_elem_primitive(), 2usize..32),
            0..3,
        ),
        proptest::collection::vec((ident(), array_elem_primitive(), integer_primitive()), 0..3),
    )
        .prop_map(|(name, scalars, bounded, dynamics)| {
            let mut used = std::collections::HashSet::new();
            let mut elements = Vec::new();
            for (n, p) in scalars {
                if used.insert(n.clone()) {
                    elements.push(ElementDecl::scalar(n, TypeRef::Primitive(p)));
                }
            }
            for (n, p, c) in bounded {
                if used.insert(n.clone()) {
                    elements.push(ElementDecl::array(n, TypeRef::Primitive(p), c));
                }
            }
            for (i, (n, p, dim_type)) in dynamics.into_iter().enumerate() {
                let dim_name = format!("dim_{i}_{n}");
                if used.insert(n.clone()) && used.insert(dim_name.clone()) {
                    elements
                        .push(ElementDecl::scalar(dim_name.clone(), TypeRef::Primitive(dim_type)));
                    elements.push(ElementDecl::dynamic(n, TypeRef::Primitive(p), dim_name));
                }
            }
            ComplexType::new(name, elements)
        })
}

fn document() -> impl Strategy<Value = SchemaDocument> {
    proptest::collection::vec(complex_type(), 1..5).prop_map(|mut types| {
        let mut seen = std::collections::HashSet::new();
        types.retain(|t| seen.insert(t.name.clone()));
        SchemaDocument { types, enums: vec![] }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn write_parse_round_trip(doc in document()) {
        let xml = to_xml(&doc);
        let back = parse_str(&xml)
            .unwrap_or_else(|e| panic!("generated schema failed to parse: {e}\n{xml}"));
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn parser_never_panics_on_schemaish_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<xsd:complexType name=\"T\">".to_string()),
                Just("</xsd:complexType>".to_string()),
                Just("<xsd:element name=\"x\" type=\"xsd:int\"/>".to_string()),
                Just("<xsd:element/>".to_string()),
                Just("<xsd:simpleType name=\"E\">".to_string()),
                Just("</xsd:simpleType>".to_string()),
                Just("<xsd:restriction base=\"xsd:string\">".to_string()),
                Just("</xsd:restriction>".to_string()),
                Just("<xsd:enumeration value=\"a\"/>".to_string()),
                Just("maxOccurs=\"*\"".to_string()),
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                ident(),
            ],
            0..12,
        )
    ) {
        let _ = parse_str(&parts.concat());
    }

    /// The streaming parser is a drop-in replacement for the DOM path:
    /// identical documents on valid input.
    #[test]
    fn streaming_matches_dom_on_valid_documents(doc in document()) {
        let xml = to_xml(&doc);
        let streamed = parse_str(&xml).expect("streaming parse");
        let dommed = parse_str_dom(&xml).expect("DOM parse");
        prop_assert_eq!(streamed, dommed);
    }

    /// On arbitrary soup the two paths must agree about validity (equal
    /// results or errors on both; messages may differ).
    #[test]
    fn streaming_matches_dom_on_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<xsd:complexType name=\"T\" xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">".to_string()),
                Just("</xsd:complexType>".to_string()),
                Just("<xsd:element name=\"x\" type=\"xsd:int\" xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\"/>".to_string()),
                Just("<element name=\"y\" type=\"T\"/>".to_string()),
                Just("<sequence>".to_string()),
                Just("</sequence>".to_string()),
                Just("<simpleType name=\"E\">".to_string()),
                Just("</simpleType>".to_string()),
                Just("<restriction base=\"s\">".to_string()),
                Just("</restriction>".to_string()),
                Just("<enumeration value=\"a\"/>".to_string()),
                Just("<enumeration value=\"b\"/>".to_string()),
                Just("<complexType name=\"U\">".to_string()),
                Just("</complexType>".to_string()),
                ident(),
            ],
            0..14,
        )
    ) {
        let text = parts.concat();
        match (parse_str(&text), parse_str_dom(&text)) {
            (Ok(s), Ok(d)) => prop_assert_eq!(s, d),
            (Err(_), Err(_)) => {}
            (s, d) => prop_assert!(false, "paths disagree on:\n{}\nstreaming: {:?}\nDOM: {:?}", text, s, d),
        }
    }

    #[test]
    fn all_dynamic_arrays_keep_dimension(doc in document()) {
        let xml = to_xml(&doc);
        let back = parse_str(&xml).unwrap();
        for t in &back.types {
            for e in &t.elements {
                if e.occurs == Occurs::Unbounded {
                    let dim = e.dimension_name.as_deref().expect("dimension preserved");
                    prop_assert!(t.element(dim).is_some());
                }
            }
        }
    }
}
