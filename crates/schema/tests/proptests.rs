//! Property tests: arbitrary schema models round-trip through the
//! XML Schema writer and parser.

use proptest::prelude::*;

use openmeta_schema::{
    parse_str, to_xml, ComplexType, ElementDecl, Occurs, SchemaDocument, TypeRef, XsdPrimitive,
};

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,10}"
        .prop_filter("avoid reserved", |s| !s.to_ascii_lowercase().starts_with("xml"))
}

fn primitive() -> impl Strategy<Value = XsdPrimitive> {
    prop::sample::select(XsdPrimitive::all().to_vec())
}

fn integer_primitive() -> impl Strategy<Value = XsdPrimitive> {
    prop::sample::select(vec![
        XsdPrimitive::Int,
        XsdPrimitive::Integer,
        XsdPrimitive::Long,
        XsdPrimitive::UnsignedInt,
        XsdPrimitive::UnsignedLong,
    ])
}

fn array_elem_primitive() -> impl Strategy<Value = XsdPrimitive> {
    prop::sample::select(
        XsdPrimitive::all()
            .iter()
            .copied()
            .filter(|p| *p != XsdPrimitive::String)
            .collect::<Vec<_>>(),
    )
}

/// Build a valid complex type: unique names, dimensions point at integer
/// scalars that exist.
fn complex_type() -> impl Strategy<Value = ComplexType> {
    (
        ident(),
        proptest::collection::vec((ident(), primitive()), 1..6),
        proptest::collection::vec(
            // Count ≥ 2: maxOccurs="1" canonicalizes to a scalar on parse.
            (ident(), array_elem_primitive(), 2usize..32),
            0..3,
        ),
        proptest::collection::vec((ident(), array_elem_primitive(), integer_primitive()), 0..3),
    )
        .prop_map(|(name, scalars, bounded, dynamics)| {
            let mut used = std::collections::HashSet::new();
            let mut elements = Vec::new();
            for (n, p) in scalars {
                if used.insert(n.clone()) {
                    elements.push(ElementDecl::scalar(n, TypeRef::Primitive(p)));
                }
            }
            for (n, p, c) in bounded {
                if used.insert(n.clone()) {
                    elements.push(ElementDecl::array(n, TypeRef::Primitive(p), c));
                }
            }
            for (i, (n, p, dim_type)) in dynamics.into_iter().enumerate() {
                let dim_name = format!("dim_{i}_{n}");
                if used.insert(n.clone()) && used.insert(dim_name.clone()) {
                    elements
                        .push(ElementDecl::scalar(dim_name.clone(), TypeRef::Primitive(dim_type)));
                    elements.push(ElementDecl::dynamic(n, TypeRef::Primitive(p), dim_name));
                }
            }
            ComplexType::new(name, elements)
        })
}

fn document() -> impl Strategy<Value = SchemaDocument> {
    proptest::collection::vec(complex_type(), 1..5).prop_map(|mut types| {
        let mut seen = std::collections::HashSet::new();
        types.retain(|t| seen.insert(t.name.clone()));
        SchemaDocument { types, enums: vec![] }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn write_parse_round_trip(doc in document()) {
        let xml = to_xml(&doc);
        let back = parse_str(&xml)
            .unwrap_or_else(|e| panic!("generated schema failed to parse: {e}\n{xml}"));
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn parser_never_panics_on_schemaish_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<xsd:complexType name=\"T\">".to_string()),
                Just("</xsd:complexType>".to_string()),
                Just("<xsd:element name=\"x\" type=\"xsd:int\"/>".to_string()),
                Just("<xsd:element/>".to_string()),
                Just("<xsd:simpleType name=\"E\">".to_string()),
                Just("</xsd:simpleType>".to_string()),
                Just("<xsd:restriction base=\"xsd:string\">".to_string()),
                Just("</xsd:restriction>".to_string()),
                Just("<xsd:enumeration value=\"a\"/>".to_string()),
                Just("maxOccurs=\"*\"".to_string()),
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                ident(),
            ],
            0..12,
        )
    ) {
        let _ = parse_str(&parts.concat());
    }

    #[test]
    fn all_dynamic_arrays_keep_dimension(doc in document()) {
        let xml = to_xml(&doc);
        let back = parse_str(&xml).unwrap();
        for t in &back.types {
            for e in &t.elements {
                if e.occurs == Occurs::Unbounded {
                    let dim = e.dimension_name.as_deref().expect("dimension preserved");
                    prop_assert!(t.element(dim).is_some());
                }
            }
        }
    }
}
