//! `cargo xtask` — repo automation for the static-analysis gate.
//!
//! ```text
//! cargo xtask analyze   # source lints + curated clippy + planlint over fixtures
//! cargo xtask loom      # model tests: RUSTFLAGS="--cfg loom" worker-pool/pool suites
//! cargo xtask miri      # Miri over the pbio codec/plan unit tests (skips if unavailable)
//! ```
//!
//! `analyze` is the CI entry point: it fails on any repo-local lint
//! violation (`.unwrap()` in non-test library code, raw
//! `TcpStream::connect` without a deadline outside `crates/net`, direct
//! `Instant::now()` timing outside `crates/obs`/`crates/bench`, a crate
//! missing `#![deny(unsafe_code)]`, blocking socket I/O inside an
//! event-loop module), on any curated clippy lint, on any
//! error-severity `planlint` diagnostic over `fixtures/schemas/`, and
//! on any `protolint` diagnostic: the sans-io explorer, lock-order
//! graph, and wire-input taint lint must all pass on the real tree,
//! every explorer mutant must be caught (`--mutants`), and the
//! seeded-broken source fixtures under `fixtures/protolint/` must be
//! rejected.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Crates whose library code may call `.unwrap()`: workload/demo crates
/// whose "library" is test-fixture construction, plus this tool.
const UNWRAP_EXEMPT: &[&str] = &["bench", "hydrology", "xtask"];

/// Crates allowed to call `TcpStream::connect` without a deadline —
/// only the transport crate itself (its fault proxy connects to
/// loopback listeners it owns).
const CONNECT_EXEMPT: &[&str] = &["net", "xtask"];

/// Crates whose library code may call `Instant::now()` directly.  All
/// other library timing goes through `openmeta_obs::clock` (or a span),
/// so stage durations land in the metrics registry instead of ad-hoc
/// stopwatches: the clock shim itself, the benchmark harness (whose
/// entire job is timing), and this tool.
const INSTANT_EXEMPT: &[&str] = &["obs", "bench", "xtask"];

/// Library crates that must carry `#![deny(unsafe_code)]` at the root.
/// The whole workspace is unsafe-free; this keeps it that way.
const DENY_UNSAFE: &[&str] = &[
    "analyzer",
    "bench",
    "hydrology",
    "net",
    "obs",
    "ohttp",
    "pbio",
    "schema",
    "tools",
    "wire",
    "xmit",
    "xml",
];

/// Curated clippy deny set layered on top of `-D warnings`.
const CLIPPY_DENY: &[&str] =
    &["clippy::dbg_macro", "clippy::todo", "clippy::unimplemented", "clippy::mem_forget"];

/// Blocking I/O spellings banned inside event-loop modules (files whose
/// name contains `event_loop`).  The readiness sweep must never issue a
/// blocking `read`/`write` on a connection socket — one stalled peer
/// would stall every connection on that shard — so all socket I/O there
/// routes through `nio::read_ready`/`nio::write_ready` (which live in a
/// different file precisely so this check stays a plain substring scan).
const EVENT_LOOP_BLOCKING: &[&str] = &[
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    ".read_vectored(",
    ".read_line(",
    ".write(",
    ".write_all(",
    ".write_vectored(",
    "BufReader",
    "BufWriter",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(),
        Some("loom") => loom(),
        Some("miri") => miri(),
        _ => {
            eprintln!("usage: cargo xtask <analyze|loom|miri>");
            ExitCode::from(2)
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run(step: &str, cmd: &mut Command) -> bool {
    eprintln!("xtask: {step}: {cmd:?}");
    match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("xtask: {step} failed ({status})");
            false
        }
        Err(e) => {
            eprintln!("xtask: {step} failed to launch: {e}");
            false
        }
    }
}

// ---------------------------------------------------------------- analyze

fn analyze() -> ExitCode {
    let root = repo_root();
    let mut ok = true;

    // 1. Repo-local source lints.
    let violations = lint_tree(&root);
    if violations.is_empty() {
        eprintln!("xtask: source lints: clean");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask: source lints: {} violation(s)", violations.len());
        ok = false;
    }

    // 2. Curated clippy gate (all targets, tests included).
    let mut clippy = Command::new("cargo");
    clippy.current_dir(&root).args(["clippy", "--workspace", "--all-targets", "-q", "--"]);
    clippy.args(["-D", "warnings"]);
    for lint in CLIPPY_DENY {
        clippy.args(["-D", lint]);
    }
    ok &= run("clippy", &mut clippy);

    // 3. planlint over the schema fixture corpus, end to end through the
    // CLI (schema -> descriptor -> plan -> verdict).
    let fixtures = root.join("fixtures/schemas");
    let mut schemas: Vec<PathBuf> = match std::fs::read_dir(&fixtures) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "xsd"))
            .collect(),
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", fixtures.display());
            return ExitCode::FAILURE;
        }
    };
    schemas.sort();
    if schemas.is_empty() {
        eprintln!("xtask: no .xsd fixtures under {}", fixtures.display());
        ok = false;
    } else {
        let mut planlint = Command::new("cargo");
        planlint.current_dir(&root).args([
            "run",
            "-q",
            "-p",
            "openmeta-tools",
            "--bin",
            "openmeta",
            "--",
            "planlint",
        ]);
        planlint.args(schemas.iter().map(|p| p.as_os_str()));
        ok &= run("planlint", &mut planlint);
    }

    // 4. protolint: exhaustive sans-io exploration of every protocol
    // core plus the lock-order graph and wire-input taint lint over the
    // workspace tree.
    let mut protolint = Command::new("cargo");
    protolint.current_dir(&root).args([
        "run",
        "-q",
        "-p",
        "openmeta-tools",
        "--bin",
        "openmeta",
        "--",
        "protolint",
    ]);
    ok &= run("protolint", &mut protolint);

    // 5. The mutation corpus: every deliberately broken parser variant
    // must be rejected, or the explorer has lost its teeth.
    let mut mutants = Command::new("cargo");
    mutants.current_dir(&root).args([
        "run",
        "-q",
        "-p",
        "openmeta-tools",
        "--bin",
        "openmeta",
        "--",
        "protolint",
        "--mutants",
    ]);
    ok &= run("protolint --mutants", &mut mutants);

    // 6. The seeded-broken source fixture: a tiny crate tree with an
    // inverted lock pair and an unbounded wire allocation.  protolint
    // must FAIL on it — this is the source-engines' false-negative
    // check, mirroring what --mutants does for the explorer.
    let seeded = root.join("fixtures/protolint");
    let mut seeded_cmd = Command::new("cargo");
    seeded_cmd.current_dir(&root).args([
        "run",
        "-q",
        "-p",
        "openmeta-tools",
        "--bin",
        "openmeta",
        "--",
        "protolint",
        "--root",
    ]);
    seeded_cmd.arg(&seeded);
    eprintln!("xtask: protolint --root fixtures/protolint (must fail): {seeded_cmd:?}");
    match seeded_cmd.status() {
        Ok(status) if !status.success() => {
            eprintln!("xtask: seeded-broken fixtures rejected, as required");
        }
        Ok(_) => {
            eprintln!("xtask: protolint PASSED the seeded-broken fixtures — engines are blind");
            ok = false;
        }
        Err(e) => {
            eprintln!("xtask: seeded fixture step failed to launch: {e}");
            ok = false;
        }
    }

    if ok {
        eprintln!("xtask: analyze passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk `crates/*/src` and apply the source lints; returns violations as
/// `path:line: message` strings.
fn lint_tree(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return vec![format!("cannot read {}", crates_dir.display())];
    };
    let mut crate_dirs: Vec<PathBuf> =
        entries.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();
    for dir in &crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        let src = dir.join("src");
        let mut files = Vec::new();
        collect_rs(&src, &mut files);
        files.sort();
        let base = LintOpts {
            allow_unwrap: UNWRAP_EXEMPT.contains(&name.as_str()),
            allow_raw_connect: CONNECT_EXEMPT.contains(&name.as_str()),
            allow_raw_instant: INSTANT_EXEMPT.contains(&name.as_str()),
            event_loop_module: false,
        };
        for file in &files {
            if let Ok(text) = std::fs::read_to_string(file) {
                let rel = file.strip_prefix(root).unwrap_or(file);
                let file_name = file.file_name().and_then(|n| n.to_str()).unwrap_or_default();
                let opts = LintOpts { event_loop_module: file_name.contains("event_loop"), ..base };
                violations.extend(lint_source(&rel.display().to_string(), &text, opts));
            }
        }
        if DENY_UNSAFE.contains(&name.as_str()) {
            let lib = src.join("lib.rs");
            let has = std::fs::read_to_string(&lib)
                .map(|t| t.contains("#![deny(unsafe_code)]"))
                .unwrap_or(false);
            if !has {
                violations.push(format!(
                    "{}: missing `#![deny(unsafe_code)]` at the crate root",
                    lib.strip_prefix(root).unwrap_or(&lib).display()
                ));
            }
        }
    }
    violations
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

#[derive(Clone, Copy)]
struct LintOpts {
    allow_unwrap: bool,
    allow_raw_connect: bool,
    allow_raw_instant: bool,
    /// File is an event-loop module: blocking I/O spellings are banned.
    event_loop_module: bool,
}

/// Lint one source file.  Test modules (`#[cfg(test)]` /
/// `#[cfg(all(test, ...))]`) are skipped by brace tracking, and
/// comment-only lines are ignored.
fn lint_source(rel: &str, text: &str, opts: LintOpts) -> Vec<String> {
    let mut violations = Vec::new();
    let mut in_test = false;
    let mut depth: i64 = 0;
    let mut entered_body = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if in_test {
            let opens = line.matches('{').count() as i64;
            let closes = line.matches('}').count() as i64;
            depth += opens - closes;
            if opens > 0 {
                entered_body = true;
            }
            if entered_body && depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            in_test = true;
            depth = 0;
            entered_body = false;
            continue;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let lineno = idx + 1;
        if !opts.allow_unwrap && line.contains(".unwrap()") {
            violations.push(format!(
                "{rel}:{lineno}: `.unwrap()` in library code — use `?`, a typed error, \
                 or `.expect(\"documented invariant\")`"
            ));
        }
        if !opts.allow_raw_connect && line.contains("TcpStream::connect(") {
            violations.push(format!(
                "{rel}:{lineno}: raw `TcpStream::connect` without a deadline — use \
                 `connect_timeout` (see net::TransportConfig)"
            ));
        }
        if !opts.allow_raw_instant && line.contains("Instant::now()") {
            violations.push(format!(
                "{rel}:{lineno}: direct `Instant::now()` timing in library code — use \
                 `openmeta_obs::clock::now()` or a stage span (`openmeta_obs::span!`)"
            ));
        }
        if opts.event_loop_module {
            for pat in EVENT_LOOP_BLOCKING {
                if line.contains(pat) {
                    violations.push(format!(
                        "{rel}:{lineno}: blocking I/O call `{pat}` inside an event-loop \
                         module — route socket I/O through `nio::read_ready` / \
                         `nio::write_ready` so one stalled peer cannot stall the sweep"
                    ));
                }
            }
        }
    }
    violations
}

// ------------------------------------------------------------- loom/miri

fn loom() -> ExitCode {
    let root = repo_root();
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("--cfg loom") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg loom");
    }
    let mut cmd = Command::new("cargo");
    cmd.current_dir(&root).env("RUSTFLAGS", rustflags).args([
        "test",
        "-q",
        "-p",
        "openmeta-net",
        "-p",
        "openmeta-ohttp",
        "-p",
        "openmeta-obs",
        "-p",
        "openmeta-pbio",
        "loom_",
    ]);
    if run("loom model tests", &mut cmd) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn miri() -> ExitCode {
    let root = repo_root();
    // Miri ships only with nightly toolchains; skip gracefully where the
    // component is absent so `cargo xtask miri` is safe to call anywhere.
    let available = Command::new("cargo")
        .current_dir(&root)
        .args(["miri", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !available {
        eprintln!("xtask: miri unavailable on this toolchain; skipping (not a failure)");
        return ExitCode::SUCCESS;
    }
    // The whole workspace is #![deny(unsafe_code)], so Miri's value here
    // is checking the codec/plan arithmetic for UB-adjacent issues
    // (overflow in layout math surfaces as panics under Miri too).
    let mut cmd = Command::new("cargo");
    cmd.current_dir(&root).env("MIRIFLAGS", "-Zmiri-disable-isolation").args([
        "miri",
        "test",
        "-p",
        "openmeta-pbio",
        "--lib",
        "plan",
        "codec",
    ]);
    if run("miri", &mut cmd) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPTS: LintOpts = LintOpts {
        allow_unwrap: false,
        allow_raw_connect: false,
        allow_raw_instant: false,
        event_loop_module: false,
    };

    #[test]
    fn seeded_unwrap_in_library_code_is_flagged() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint_source("crates/demo/src/lib.rs", src, OPTS);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("crates/demo/src/lib.rs:2"), "{v:?}");
    }

    #[test]
    fn unwrap_in_test_module_is_ignored() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(lint_source("lib.rs", src, OPTS).is_empty());
    }

    #[test]
    fn unwrap_after_test_module_is_still_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint_source("lib.rs", src, OPTS);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("lib.rs:6"), "{v:?}");
    }

    #[test]
    fn loom_test_module_is_ignored() {
        let src =
            "#[cfg(all(test, loom))]\nmod loom_tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint_source("lib.rs", src, OPTS).is_empty());
    }

    #[test]
    fn raw_connect_is_flagged_but_connect_timeout_is_not() {
        let src = "fn f() {\n    let _ = TcpStream::connect(addr);\n    let _ = TcpStream::connect_timeout(&addr, t);\n}\n";
        let v = lint_source("lib.rs", src, OPTS);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("lib.rs:2"), "{v:?}");
        let exempt = LintOpts { allow_raw_connect: true, ..OPTS };
        assert!(lint_source("lib.rs", src, exempt).is_empty());
    }

    #[test]
    fn raw_instant_timing_is_flagged_outside_the_clock_shim() {
        let src = "fn f() {\n    let t = Instant::now();\n    let c = clock::now();\n}\n";
        let v = lint_source("lib.rs", src, OPTS);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("lib.rs:2") && v[0].contains("clock::now"), "{v:?}");
        let exempt = LintOpts { allow_raw_instant: true, ..OPTS };
        assert!(lint_source("lib.rs", src, exempt).is_empty());
    }

    #[test]
    fn blocking_io_in_event_loop_module_is_flagged() {
        let src = "fn f(s: &mut TcpStream) {\n    let mut b = [0u8; 4];\n    \
                   let _ = s.read_exact(&mut b);\n    let _ = s.write_all(&b);\n    \
                   let r = BufReader::new(s);\n}\n";
        let opts = LintOpts { event_loop_module: true, ..OPTS };
        let v = lint_source("crates/net/src/event_loop.rs", src, opts);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|m| m.contains("blocking I/O")), "{v:?}");
        // The same source in any other file passes.
        assert!(lint_source("crates/net/src/framing.rs", src, OPTS).is_empty());
    }

    #[test]
    fn event_loop_lint_skips_tests_and_allows_nonblocking_helpers() {
        let opts = LintOpts { event_loop_module: true, ..OPTS };
        // Test modules may use blocking I/O (they drive the loop from
        // the outside); the nio helpers are the sanctioned spellings.
        let src = "fn f() {\n    let _ = read_ready(&mut s, &mut buf);\n    \
                   let _ = write_ready(&mut s, &out);\n}\n\n#[cfg(test)]\nmod tests {\n    \
                   fn t(s: &mut TcpStream) { let _ = s.write_all(b\"x\"); }\n}\n";
        assert!(lint_source("event_loop.rs", src, opts).is_empty());
    }

    #[test]
    fn comments_and_exemptions_are_respected() {
        let src = "// .unwrap() in a comment\npub fn f() {}\n";
        assert!(lint_source("lib.rs", src, OPTS).is_empty());
        let exempt = LintOpts { allow_unwrap: true, ..OPTS };
        assert!(lint_source("lib.rs", "fn f() { x.unwrap() }\n", exempt).is_empty());
    }

    #[test]
    fn repo_tree_is_lint_clean() {
        let violations = lint_tree(&repo_root());
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
