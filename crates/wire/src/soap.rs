//! SOAP-style messaging — the first of §3.2's planned "Others"
//! integrations ("We plan to implement SOAP/XML-RPC style interfaces and
//! also IIOP").
//!
//! Records travel as a SOAP 1.1 envelope whose body is the Figure 1-style
//! element-per-field encoding:
//!
//! ```xml
//! <SOAP-ENV:Envelope
//!     xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">
//!   <SOAP-ENV:Body>
//!     <SimpleData><timestep>9999</timestep>…</SimpleData>
//!   </SOAP-ENV:Body>
//! </SOAP-ENV:Envelope>
//! ```
//!
//! This is the same ASCII cost model as [`crate::XmlWire`] plus envelope
//! overhead — included so the benchmark suite can show what the
//! then-emerging SOAP systems (references 9, 6 and 1 in the paper) would
//! have paid.

use std::fmt::Write as _;
use std::sync::Arc;

use openmeta_pbio::{FormatDescriptor, RawRecord};
use openmeta_xml::NodeKind;

use crate::error::WireError;
use crate::traits::WireFormat;
use crate::xmlwire::{decode_record, encode_record};

/// The SOAP 1.1 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// The SOAP-envelope comparator.
#[derive(Default)]
pub struct SoapWire;

impl SoapWire {
    /// Create the comparator.
    pub fn new() -> Self {
        SoapWire
    }
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("soap", message)
}

impl WireFormat for SoapWire {
    fn name(&self) -> &'static str {
        "soap"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let start = out.len();
        let mut text = String::with_capacity(rec.format().record_size * 8 + 160);
        let _ = write!(
            text,
            "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"{SOAP_ENV_NS}\"><SOAP-ENV:Body><{}>",
            rec.format().name
        );
        encode_record(rec, rec.format(), "", &mut text)?;
        let _ = write!(text, "</{}></SOAP-ENV:Body></SOAP-ENV:Envelope>", rec.format().name);
        out.extend_from_slice(text.as_bytes());
        Ok(out.len() - start)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let text = std::str::from_utf8(bytes).map_err(|_| err("message is not UTF-8"))?;
        let doc = openmeta_xml::parse(text).map_err(|e| err(format!("bad XML: {e}")))?;
        let root = doc.root_element().ok_or_else(|| err("no envelope"))?;
        if !doc.name(root).is(Some(SOAP_ENV_NS), "Envelope") {
            return Err(err(format!("root is <{}>, not a SOAP envelope", doc.name(root))));
        }
        let body = doc
            .child_elements(root)
            .find(|&c| doc.name(c).is(Some(SOAP_ENV_NS), "Body"))
            .ok_or_else(|| err("envelope has no Body"))?;
        let payload = doc
            .child_elements(body)
            .find(|&c| {
                matches!(&doc.node(c).kind, NodeKind::Element { .. })
                    && doc.name(c).local == format.name
            })
            .ok_or_else(|| err(format!("Body holds no <{}>", format.name)))?;
        let mut rec = RawRecord::new(format.clone());
        decode_record(&doc, payload, format, "", &mut rec)?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn fixture() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "SimpleData",
                vec![
                    IOField::auto("timestep", "integer", 4),
                    IOField::auto("size", "integer", 4),
                    IOField::auto("data", "float[size]", 4),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("timestep", 9999).unwrap();
        rec.set_f64_array("data", &[1.5, 2.5]).unwrap();
        (fmt, rec)
    }

    #[test]
    fn envelope_structure() {
        let (_, rec) = fixture();
        let text = String::from_utf8(SoapWire::new().encode_vec(&rec).unwrap()).unwrap();
        assert!(text.starts_with("<SOAP-ENV:Envelope"));
        assert!(text.contains("<SOAP-ENV:Body><SimpleData>"));
        assert!(text.ends_with("</SOAP-ENV:Body></SOAP-ENV:Envelope>"));
    }

    #[test]
    fn round_trip() {
        let (fmt, rec) = fixture();
        let wire = SoapWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_i64("timestep").unwrap(), 9999);
        assert_eq!(back.get_f64_array("data").unwrap(), vec![1.5, 2.5]);
    }

    #[test]
    fn foreign_prefix_accepted() {
        // Namespace matching, not prefix matching.
        let (fmt, _) = fixture();
        let msg = format!(
            "<env:Envelope xmlns:env=\"{SOAP_ENV_NS}\"><env:Body>\
             <SimpleData><timestep>5</timestep><size>0</size></SimpleData>\
             </env:Body></env:Envelope>"
        );
        let back = SoapWire::new().decode(msg.as_bytes(), &fmt).unwrap();
        assert_eq!(back.get_i64("timestep").unwrap(), 5);
    }

    #[test]
    fn non_envelope_rejected() {
        let (fmt, _) = fixture();
        let wire = SoapWire::new();
        assert!(wire.decode(b"<SimpleData/>", &fmt).is_err());
        assert!(wire
            .decode(
                format!("<x:Envelope xmlns:x=\"{SOAP_ENV_NS}\"><x:Other/></x:Envelope>").as_bytes(),
                &fmt
            )
            .is_err());
        assert!(wire
            .decode(
                format!(
                    "<x:Envelope xmlns:x=\"{SOAP_ENV_NS}\"><x:Body><Wrong/></x:Body></x:Envelope>"
                )
                .as_bytes(),
                &fmt
            )
            .is_err());
    }

    #[test]
    fn envelope_costs_more_than_bare_xml() {
        let (_, rec) = fixture();
        let soap = SoapWire::new().encode_vec(&rec).unwrap().len();
        let xml = crate::XmlWire::new().encode_vec(&rec).unwrap().len();
        assert!(soap > xml);
    }
}
