//! GIOP framing — the "and also IIOP" of §3.2.
//!
//! IIOP is GIOP over TCP.  This module implements GIOP 1.0 message
//! framing around [`crate::CdrWire`] bodies: the 12-byte header (magic,
//! version, byte-order flag, message type, body length), `Request`
//! messages whose operation names the format, and `Reply` messages.  It
//! is what §5 describes: "CORBA-based object systems use IIOP as a wire
//! format.  IIOP attempts to reduce marshaling overhead by adopting a
//! 'reader-makes-right' approach with respect to byte order (the actual
//! byte order used in a message is specified by a header field)."

use std::sync::Arc;

use openmeta_pbio::{FormatDescriptor, RawRecord};

use crate::cdr::CdrWire;
use crate::error::WireError;
use crate::traits::WireFormat;
use crate::util::{get_uint, put_uint, Cursor, Order};

const GIOP_MAGIC: &[u8; 4] = b"GIOP";
const GIOP_MAJOR: u8 = 1;
const GIOP_MINOR: u8 = 0;

/// GIOP message types (the subset we frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// A request carrying one record as its body.
    Request,
    /// A reply carrying one record as its body.
    Reply,
}

impl MessageType {
    fn code(self) -> u8 {
        match self {
            MessageType::Request => 0,
            MessageType::Reply => 1,
        }
    }

    fn from_code(c: u8) -> Option<MessageType> {
        Some(match c {
            0 => MessageType::Request,
            1 => MessageType::Reply,
            _ => return None,
        })
    }
}

/// A framed GIOP message.
#[derive(Debug)]
pub struct GiopMessage {
    /// Request or reply.
    pub message_type: MessageType,
    /// Request id (echoed in replies).
    pub request_id: u32,
    /// Operation name; XMIT uses `deliver_<FormatName>`.
    pub operation: String,
    /// The record body.
    pub record: RawRecord,
}

/// A framed message as header + borrowed body: ready for one vectored
/// write, without the body ever being copied behind a fresh header.
///
/// The 12-byte GIOP header lives inline; the body stays in whatever
/// buffer [`encode_request_into`] filled — typically a pooled buffer
/// reused across messages.
#[derive(Debug)]
pub struct GiopFrame<'a> {
    header: [u8; 12],
    body: &'a [u8],
}

impl GiopFrame<'_> {
    /// The 12-byte GIOP header.
    pub fn header(&self) -> &[u8; 12] {
        &self.header
    }

    /// The CDR-encoded message body (borrowed from the encode buffer).
    pub fn body(&self) -> &[u8] {
        self.body
    }

    /// Total framed size in bytes.
    pub fn len(&self) -> usize {
        12 + self.body.len()
    }

    /// Frames are never empty (the header alone is 12 bytes).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Coalesce into one contiguous message (compat path; copies).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.header);
        out.extend_from_slice(self.body);
        out
    }
}

/// Frame a record as a GIOP Request into `body` (cleared first),
/// returning the header + borrowed-body pair.  Steady-state senders
/// reuse `body` so no per-message allocation occurs once it has grown
/// to the working-set size.
pub fn encode_request_into<'a>(
    request_id: u32,
    rec: &RawRecord,
    body: &'a mut Vec<u8>,
) -> Result<GiopFrame<'a>, WireError> {
    encode_message_into(MessageType::Request, request_id, rec, body)
}

/// Frame a record as a GIOP Reply into `body` (cleared first).
pub fn encode_reply_into<'a>(
    request_id: u32,
    rec: &RawRecord,
    body: &'a mut Vec<u8>,
) -> Result<GiopFrame<'a>, WireError> {
    encode_message_into(MessageType::Reply, request_id, rec, body)
}

/// Frame a record as a GIOP Request (compat: allocates a fresh message).
pub fn encode_request(request_id: u32, rec: &RawRecord) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::new();
    Ok(encode_request_into(request_id, rec, &mut body)?.to_vec())
}

/// Frame a record as a GIOP Reply (compat: allocates a fresh message).
pub fn encode_reply(request_id: u32, rec: &RawRecord) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::new();
    Ok(encode_reply_into(request_id, rec, &mut body)?.to_vec())
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("giop", message)
}

fn encode_message_into<'a>(
    mt: MessageType,
    request_id: u32,
    rec: &RawRecord,
    body: &'a mut Vec<u8>,
) -> Result<GiopFrame<'a>, WireError> {
    let order = Order::native();
    let operation = format!("deliver_{}", rec.format().name);
    // Build the body first (header carries its length).
    // Request header (GIOP 1.0, CDR-encoded relative to body start):
    //   service context count (0), request id, response_expected,
    //   object key (sequence<octet>), operation string, principal (0).
    body.clear();
    put_uint(body, order, 4, 0); // service context: empty sequence
    put_uint(body, order, 4, u64::from(request_id));
    match mt {
        MessageType::Request => {
            body.push(1); // response_expected
                          // CDR aligns the next u32 to 4.
            while !body.len().is_multiple_of(4) {
                body.push(0);
            }
            put_uint(body, order, 4, 4); // object key length
            body.extend_from_slice(b"XMIT");
            put_uint(body, order, 4, (operation.len() + 1) as u64);
            body.extend_from_slice(operation.as_bytes());
            body.push(0);
            while !body.len().is_multiple_of(4) {
                body.push(0);
            }
            put_uint(body, order, 4, 0); // principal: empty
        }
        MessageType::Reply => {
            put_uint(body, order, 4, 0); // reply_status NO_EXCEPTION
            put_uint(body, order, 4, (operation.len() + 1) as u64);
            body.extend_from_slice(operation.as_bytes());
            body.push(0);
            while !body.len().is_multiple_of(4) {
                body.push(0);
            }
        }
    }
    // The record body is a CDR encapsulation (own byte-order flag).
    let cdr = CdrWire::new();
    cdr.encode(rec, body)?;

    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(GIOP_MAGIC);
    header[4] = GIOP_MAJOR;
    header[5] = GIOP_MINOR;
    header[6] = match order {
        Order::Be => 0,
        Order::Le => 1,
    };
    header[7] = mt.code();
    let body_len = body.len() as u32;
    header[8..12].copy_from_slice(&match order {
        Order::Be => body_len.to_be_bytes(),
        Order::Le => body_len.to_le_bytes(),
    });
    Ok(GiopFrame { header, body })
}

/// Parse a GIOP message, decoding the body into `format`.
pub fn decode_message(
    bytes: &[u8],
    format: &Arc<FormatDescriptor>,
) -> Result<GiopMessage, WireError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(4).map_err(|_| err("truncated header"))?;
    if magic != GIOP_MAGIC {
        return Err(err("bad magic"));
    }
    let ver = cur.take(2).map_err(|_| err("truncated header"))?;
    if ver[0] != GIOP_MAJOR {
        return Err(err(format!("unsupported GIOP version {}.{}", ver[0], ver[1])));
    }
    let flags = cur.take(1).map_err(|_| err("truncated header"))?[0];
    let order = if flags & 1 == 1 { Order::Le } else { Order::Be };
    let mt = MessageType::from_code(cur.take(1).map_err(|_| err("truncated header"))?[0])
        .ok_or_else(|| err("unsupported message type"))?;
    let body_len = get_uint(cur.take(4).map_err(|_| err("truncated header"))?, order) as usize;
    let body = cur.take(body_len).map_err(|_| err("truncated body"))?;

    let mut b = Cursor::new(body);
    let trunc = || err("truncated message header");
    let sc_count = get_uint(b.take(4).map_err(|_| trunc())?, order);
    if sc_count != 0 {
        return Err(err("service contexts are not supported"));
    }
    let request_id = get_uint(b.take(4).map_err(|_| trunc())?, order) as u32;
    let operation = match mt {
        MessageType::Request => {
            let _response_expected = b.take(1).map_err(|_| trunc())?[0];
            b.align(4).map_err(|_| trunc())?;
            let key_len = get_uint(b.take(4).map_err(|_| trunc())?, order) as usize;
            b.take(key_len).map_err(|_| trunc())?;
            read_cdr_string(&mut b, order)?
        }
        MessageType::Reply => {
            let status = get_uint(b.take(4).map_err(|_| trunc())?, order);
            if status != 0 {
                return Err(err(format!("reply status {status} (exception)")));
            }
            read_cdr_string(&mut b, order)?
        }
    };
    if mt == MessageType::Request {
        b.align(4).map_err(|_| trunc())?;
        let principal_len = get_uint(b.take(4).map_err(|_| trunc())?, order) as usize;
        b.take(principal_len).map_err(|_| trunc())?;
    } else {
        b.align(4).map_err(|_| trunc())?;
    }
    let expected = format!("deliver_{}", format.name);
    if operation != expected {
        return Err(err(format!("operation '{operation}' does not carry '{}'", format.name)));
    }
    let record = CdrWire::new().decode(&body[b.pos()..], format)?;
    Ok(GiopMessage { message_type: mt, request_id, operation, record })
}

fn read_cdr_string(cur: &mut Cursor<'_>, order: Order) -> Result<String, WireError> {
    cur.align(4).map_err(|_| err("truncated string"))?;
    let len = get_uint(cur.take(4).map_err(|_| err("truncated string"))?, order) as usize;
    if len == 0 {
        return Err(err("empty CDR string"));
    }
    let bytes = cur.take(len).map_err(|_| err("truncated string"))?;
    if bytes[len - 1] != 0 {
        return Err(err("CDR string lacks NUL"));
    }
    String::from_utf8(bytes[..len - 1].to_vec()).map_err(|_| err("operation not UTF-8"))
}

// ---------------------------------------------------------------------------
// IIOP: GIOP over a live TCP stream.
// ---------------------------------------------------------------------------

/// Write one framed GIOP message to a stream (GIOP frames are
/// self-delimiting: the header carries the body length).
pub fn write_to(stream: &mut dyn std::io::Write, message: &[u8]) -> Result<(), WireError> {
    stream.write_all(message).map_err(|e| err(format!("write: {e}")))?;
    stream.flush().map_err(|e| err(format!("flush: {e}")))
}

/// Write a header + borrowed-body frame in one gather-write: the header
/// and the encode buffer go out in a single syscall without first being
/// coalesced into a contiguous message.
pub fn write_message(
    stream: &mut dyn std::io::Write,
    frame: &GiopFrame<'_>,
) -> Result<(), WireError> {
    openmeta_net::write_all_vectored(stream, &[&frame.header[..], frame.body])
        .map_err(|e| err(format!("write: {e}")))?;
    stream.flush().map_err(|e| err(format!("flush: {e}")))
}

/// Read one GIOP message from a stream and decode its record, resolving
/// the target format from `registry` by the operation's format name
/// (`deliver_<Name>` → the receiver's own registration of `<Name>`).
///
/// Returns `Ok(None)` on clean end-of-stream.
pub fn read_from(
    stream: &mut dyn std::io::Read,
    registry: &openmeta_pbio::FormatRegistry,
) -> Result<Option<GiopMessage>, WireError> {
    let mut header = [0u8; 12];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(err(format!("read header: {e}"))),
    }
    if &header[0..4] != GIOP_MAGIC {
        return Err(err("bad magic"));
    }
    let order = if header[6] & 1 == 1 { Order::Le } else { Order::Be };
    let body_len = get_uint(&header[8..12], order) as usize;
    if body_len > 64 << 20 {
        return Err(err(format!("body of {body_len} bytes exceeds limit")));
    }
    let mut frame = header.to_vec();
    frame.resize(12 + body_len, 0);
    stream.read_exact(&mut frame[12..]).map_err(|e| err(format!("read body: {e}")))?;
    // Peek the operation to find the target format name.
    let name = peek_format_name(&frame)?;
    let format = registry
        .lookup_name(&name)
        .ok_or_else(|| err(format!("no registered format named '{name}'")))?;
    decode_message(&frame, &format).map(Some)
}

/// Extract the format name from a framed message's operation string
/// without decoding the record body.
fn peek_format_name(frame: &[u8]) -> Result<String, WireError> {
    let order = if frame[6] & 1 == 1 { Order::Le } else { Order::Be };
    let mt = MessageType::from_code(frame[7]).ok_or_else(|| err("unsupported message type"))?;
    let mut b = Cursor::new(&frame[12..]);
    let trunc = || err("truncated message header");
    let sc = get_uint(b.take(4).map_err(|_| trunc())?, order);
    if sc != 0 {
        return Err(err("service contexts are not supported"));
    }
    let _request_id = b.take(4).map_err(|_| trunc())?;
    let operation = match mt {
        MessageType::Request => {
            let _resp = b.take(1).map_err(|_| trunc())?;
            b.align(4).map_err(|_| trunc())?;
            let key_len = get_uint(b.take(4).map_err(|_| trunc())?, order) as usize;
            b.take(key_len).map_err(|_| trunc())?;
            read_cdr_string(&mut b, order)?
        }
        MessageType::Reply => {
            let _status = b.take(4).map_err(|_| trunc())?;
            read_cdr_string(&mut b, order)?
        }
    };
    operation
        .strip_prefix("deliver_")
        .map(str::to_string)
        .ok_or_else(|| err(format!("operation '{operation}' is not an XMIT delivery")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn fixture() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "SimpleData",
                vec![
                    IOField::auto("timestep", "integer", 4),
                    IOField::auto("size", "integer", 4),
                    IOField::auto("data", "float[size]", 4),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("timestep", 17).unwrap();
        rec.set_f64_array("data", &[2.5, 3.5]).unwrap();
        (fmt, rec)
    }

    #[test]
    fn request_round_trip() {
        let (fmt, rec) = fixture();
        let wire = encode_request(42, &rec).unwrap();
        assert_eq!(&wire[0..4], b"GIOP");
        let msg = decode_message(&wire, &fmt).unwrap();
        assert_eq!(msg.message_type, MessageType::Request);
        assert_eq!(msg.request_id, 42);
        assert_eq!(msg.operation, "deliver_SimpleData");
        assert_eq!(msg.record.get_i64("timestep").unwrap(), 17);
        assert_eq!(msg.record.get_f64_array("data").unwrap(), vec![2.5, 3.5]);
    }

    #[test]
    fn reply_round_trip() {
        let (fmt, rec) = fixture();
        let wire = encode_reply(42, &rec).unwrap();
        let msg = decode_message(&wire, &fmt).unwrap();
        assert_eq!(msg.message_type, MessageType::Reply);
        assert_eq!(msg.request_id, 42);
        assert_eq!(msg.record.get_f64_array("data").unwrap(), vec![2.5, 3.5]);
    }

    #[test]
    fn frame_into_matches_owned_encoding_and_reuses_buffer() {
        let (fmt, rec) = fixture();
        let owned = encode_request(7, &rec).unwrap();
        let mut body = Vec::new();
        {
            let frame = encode_request_into(7, &rec, &mut body).unwrap();
            assert_eq!(frame.to_vec(), owned, "split frame must serialise identically");
            assert_eq!(frame.len(), owned.len());
        }
        let cap = body.capacity();
        // Re-encoding into the same buffer must not reallocate.
        let frame = encode_request_into(8, &rec, &mut body).unwrap();
        let msg = decode_message(&frame.to_vec(), &fmt).unwrap();
        assert_eq!(msg.request_id, 8);
        assert_eq!(body.capacity(), cap, "steady-state encode must reuse the body buffer");
    }

    #[test]
    fn vectored_write_produces_canonical_bytes() {
        let (fmt, rec) = fixture();
        let mut body = Vec::new();
        let frame = encode_reply_into(9, &rec, &mut body).unwrap();
        let mut sink = Vec::new();
        write_message(&mut sink, &frame).unwrap();
        assert_eq!(sink, encode_reply(9, &rec).unwrap());
        let msg = decode_message(&sink, &fmt).unwrap();
        assert_eq!(msg.message_type, MessageType::Reply);
        assert_eq!(msg.request_id, 9);
    }

    #[test]
    fn header_carries_byte_order_flag() {
        let (_, rec) = fixture();
        let wire = encode_request(1, &rec).unwrap();
        let flag = wire[6];
        match Order::native() {
            Order::Le => assert_eq!(flag, 1),
            Order::Be => assert_eq!(flag, 0),
        }
        assert_eq!(wire[4], 1, "GIOP major");
        assert_eq!(wire[7], 0, "Request type code");
    }

    #[test]
    fn wrong_operation_rejected() {
        let reg = FormatRegistry::new(MachineModel::native());
        let other =
            reg.register(FormatSpec::new("Other", vec![IOField::auto("x", "integer", 4)])).unwrap();
        let (_, rec) = fixture();
        let wire = encode_request(1, &rec).unwrap();
        assert!(decode_message(&wire, &other).is_err());
    }

    /// IIOP over an actual socket: requests stream one way, a reply comes
    /// back, formats resolved by operation name at the receiver.
    #[test]
    fn iiop_request_reply_over_tcp() {
        let (_fmt, rec) = fixture();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();

        let server = std::thread::spawn(move || {
            let registry = FormatRegistry::new(MachineModel::native());
            registry
                .register(FormatSpec::new(
                    "SimpleData",
                    vec![
                        IOField::auto("timestep", "integer", 4),
                        IOField::auto("size", "integer", 4),
                        IOField::auto("data", "float[size]", 4),
                    ],
                ))
                .unwrap();
            let (mut stream, _) = listener.accept().unwrap();
            let mut seen = Vec::new();
            // One body buffer reused across replies: after the first
            // message no per-reply allocation happens.
            let mut body = Vec::new();
            while let Some(msg) = read_from(&mut stream, &registry).unwrap() {
                assert_eq!(msg.message_type, MessageType::Request);
                seen.push(msg.record.get_i64("timestep").unwrap());
                // Echo a reply carrying the same record.
                let reply = encode_reply_into(msg.request_id, &msg.record, &mut body).unwrap();
                write_message(&mut stream, &reply).unwrap();
                if seen.len() == 3 {
                    break;
                }
            }
            seen
        });

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let client_registry = FormatRegistry::new(MachineModel::native());
        client_registry
            .register(FormatSpec::new(
                "SimpleData",
                vec![
                    IOField::auto("timestep", "integer", 4),
                    IOField::auto("size", "integer", 4),
                    IOField::auto("data", "float[size]", 4),
                ],
            ))
            .unwrap();
        let mut body = Vec::new();
        for i in 0..3 {
            let mut r = rec.clone();
            r.set_i64("timestep", 100 + i).unwrap();
            let req = encode_request_into(i as u32, &r, &mut body).unwrap();
            write_message(&mut client, &req).unwrap();
            let reply = read_from(&mut client, &client_registry).unwrap().unwrap();
            assert_eq!(reply.message_type, MessageType::Reply);
            assert_eq!(reply.request_id, i as u32);
            assert_eq!(reply.record.get_i64("timestep").unwrap(), 100 + i);
        }
        drop(client);
        assert_eq!(server.join().unwrap(), vec![100, 101, 102]);
    }

    #[test]
    fn read_from_clean_eof_is_none() {
        let registry = FormatRegistry::new(MachineModel::native());
        let empty: &[u8] = &[];
        assert!(read_from(&mut { empty }, &registry).unwrap().is_none());
    }

    #[test]
    fn read_from_unknown_format_errors() {
        let (_, rec) = fixture();
        let wire = encode_request(1, &rec).unwrap();
        let registry = FormatRegistry::new(MachineModel::native());
        let mut cursor = &wire[..];
        assert!(read_from(&mut cursor, &registry).is_err());
    }

    #[test]
    fn corrupt_frames_rejected() {
        let (fmt, rec) = fixture();
        let wire = encode_request(1, &rec).unwrap();
        assert!(decode_message(&wire[..8], &fmt).is_err());
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(decode_message(&bad, &fmt).is_err());
        let mut badver = wire.clone();
        badver[4] = 9;
        assert!(decode_message(&badver, &fmt).is_err());
        let mut short = wire.clone();
        short.truncate(wire.len() - 3);
        assert!(decode_message(&short, &fmt).is_err());
    }
}
