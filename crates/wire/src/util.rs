//! Byte-level helpers shared by the comparator codecs.

/// Byte order of a comparator stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Big endian.
    Be,
    /// Little endian.
    Le,
}

impl Order {
    /// Native order of this host.
    pub fn native() -> Order {
        if cfg!(target_endian = "big") {
            Order::Be
        } else {
            Order::Le
        }
    }
}

/// Write the low `width` bytes of `v`.
pub fn put_uint(out: &mut Vec<u8>, order: Order, width: usize, v: u64) {
    match order {
        Order::Be => out.extend_from_slice(&v.to_be_bytes()[8 - width..]),
        Order::Le => out.extend_from_slice(&v.to_le_bytes()[..width]),
    }
}

/// Read an unsigned integer of `width` bytes.
pub fn get_uint(buf: &[u8], order: Order) -> u64 {
    let mut v = 0u64;
    match order {
        Order::Be => {
            for &b in buf {
                v = (v << 8) | u64::from(b);
            }
        }
        Order::Le => {
            for &b in buf.iter().rev() {
                v = (v << 8) | u64::from(b);
            }
        }
    }
    v
}

/// Read a sign-extended integer of `buf.len()` bytes.
pub fn get_int(buf: &[u8], order: Order) -> i64 {
    let raw = get_uint(buf, order);
    let bits = buf.len() * 8;
    if bits == 64 {
        raw as i64
    } else if raw & (1 << (bits - 1)) != 0 {
        (raw | !((1u64 << bits) - 1)) as i64
    } else {
        raw as i64
    }
}

/// Pad `out` with zeros until its length is a multiple of `align`.
pub fn pad_to(out: &mut Vec<u8>, align: usize) {
    while !out.len().is_multiple_of(align) {
        out.push(0);
    }
}

/// A checked read cursor.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Remaining byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Advance to the next multiple of `align`.
    #[allow(clippy::result_unit_err)] // callers map () to their own wire errors
    pub fn align(&mut self, align: usize) -> Result<(), ()> {
        let target = self.pos.div_ceil(align) * align;
        if target > self.buf.len() {
            return Err(());
        }
        self.pos = target;
        Ok(())
    }

    /// Take `n` bytes.
    #[allow(clippy::result_unit_err)] // callers map () to their own wire errors
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ()> {
        if self.pos + n > self.buf.len() {
            return Err(());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_round_trip_both_orders() {
        for order in [Order::Be, Order::Le] {
            for width in [1usize, 2, 4, 8] {
                let v = 0x1122_3344_5566_7788u64 & ((1u128 << (width * 8)) - 1) as u64;
                let mut out = Vec::new();
                put_uint(&mut out, order, width, v);
                assert_eq!(out.len(), width);
                assert_eq!(get_uint(&out, order), v);
            }
        }
    }

    #[test]
    fn int_sign_extension() {
        let mut out = Vec::new();
        put_uint(&mut out, Order::Be, 2, (-2i64) as u64);
        assert_eq!(get_int(&out, Order::Be), -2);
    }

    #[test]
    fn padding_and_alignment() {
        let mut out = vec![1u8];
        pad_to(&mut out, 4);
        assert_eq!(out.len(), 4);
        let mut c = Cursor::new(&out);
        c.take(1).unwrap();
        c.align(4).unwrap();
        assert_eq!(c.pos(), 4);
        assert!(c.take(1).is_err());
    }
}
