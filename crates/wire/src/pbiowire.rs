//! PBIO as a `WireFormat` — the system under test in Figure 8.

use std::sync::{Arc, Mutex};

use openmeta_pbio::{decode_with, Encoder, FormatDescriptor, FormatRegistry, RawRecord};

use crate::error::WireError;
use crate::traits::WireFormat;

/// Adapter exposing PBIO's marshaler through the comparator interface.
pub struct PbioWire {
    registry: Arc<FormatRegistry>,
    /// Cached encode plans (the `WireFormat` trait takes `&self`, so the
    /// reusable encoder sits behind a mutex).
    encoder: Mutex<Encoder>,
}

impl PbioWire {
    /// The registry used to resolve format ids during decode.
    pub fn new(registry: Arc<FormatRegistry>) -> Self {
        PbioWire { registry, encoder: Mutex::new(Encoder::new()) }
    }
}

impl WireFormat for PbioWire {
    fn name(&self) -> &'static str {
        "pbio"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let mut enc = self.encoder.lock().expect("encoder mutex poisoned");
        Ok(enc.encode_into(rec, out)?)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        // The sender's descriptor must be resolvable; register it if the
        // caller's registry has never seen this format id.
        self.registry.register_descriptor((**format).clone());
        Ok(decode_with(bytes, &self.registry, format)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatSpec, IOField, MachineModel};

    #[test]
    fn adapter_round_trips() {
        let reg = Arc::new(FormatRegistry::new(MachineModel::native()));
        let fmt = reg
            .register(FormatSpec::new(
                "T",
                vec![
                    IOField::auto("n", "integer", 4),
                    IOField::auto("xs", "float[n]", 8),
                    IOField::auto("who", "string", 0),
                ],
            ))
            .unwrap();
        let wire = PbioWire::new(reg);
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_f64_array("xs", &[1.0, 2.0]).unwrap();
        rec.set_string("who", "pbio").unwrap();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_f64_array("xs").unwrap(), vec![1.0, 2.0]);
        assert_eq!(back.get_string("who").unwrap(), "pbio");
    }
}
