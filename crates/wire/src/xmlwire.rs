//! XML as a wire format — the paper's anti-baseline (§4.1, Figure 1).
//!
//! Records travel as ASCII text, one element per field, repeated elements
//! for arrays:
//!
//! ```xml
//! <SimpleData>
//!   <timestep>9999</timestep>
//!   <size>3355</size>
//!   <data>12.345</data>
//!   <data>12.345</data>
//! </SimpleData>
//! ```
//!
//! Every field incurs binary↔ASCII conversion on both ends, plus markup
//! overhead — which is precisely why §4.1 finds "encoding/decoding times
//! … between 2 and 4 orders of magnitude greater than binary mechanisms"
//! and expansion factors of 6–8×.

use std::fmt::Write as _;
use std::sync::Arc;

use openmeta_pbio::{BaseType, FieldKind, FormatDescriptor, RawRecord};
use openmeta_xml::{escape_text, Document, NodeId};

use crate::error::WireError;
use crate::traits::WireFormat;

/// The XML-as-ASCII comparator.
#[derive(Default)]
pub struct XmlWire;

impl XmlWire {
    /// Create the comparator.
    pub fn new() -> Self {
        XmlWire
    }
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("xml", message)
}

impl WireFormat for XmlWire {
    fn name(&self) -> &'static str {
        "xml"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let start = out.len();
        let mut text = String::with_capacity(rec.format().record_size * 8);
        let _ = write!(text, "<{}>", rec.format().name);
        encode_record(rec, rec.format(), "", &mut text)?;
        let _ = write!(text, "</{}>", rec.format().name);
        out.extend_from_slice(text.as_bytes());
        Ok(out.len() - start)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let text = std::str::from_utf8(bytes).map_err(|_| err("message is not UTF-8 text"))?;
        let doc = openmeta_xml::parse(text).map_err(|e| err(format!("bad XML: {e}")))?;
        let root = doc.root_element().ok_or_else(|| err("no root element"))?;
        if doc.name(root).local != format.name {
            return Err(err(format!(
                "message is <{}>, expected <{}>",
                doc.name(root).local,
                format.name
            )));
        }
        let mut rec = RawRecord::new(format.clone());
        decode_record(&doc, root, format, "", &mut rec)?;
        Ok(rec)
    }
}

pub(crate) fn encode_record(
    rec: &RawRecord,
    desc: &FormatDescriptor,
    prefix: &str,
    out: &mut String,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        match &f.kind {
            FieldKind::Scalar(BaseType::Float) => {
                // Print at the field's own precision: a 4-byte float's
                // value widened to f64 would otherwise print spurious
                // digits and inflate the message.
                if f.size == 4 {
                    let _ = write!(out, "<{0}>{1}</{0}>", f.name, rec.get_f64(&path)? as f32);
                } else {
                    let _ = write!(out, "<{0}>{1}</{0}>", f.name, rec.get_f64(&path)?);
                }
            }
            FieldKind::Scalar(BaseType::Integer) => {
                let _ = write!(out, "<{0}>{1}</{0}>", f.name, rec.get_i64(&path)?);
            }
            FieldKind::Scalar(BaseType::Boolean) => {
                let _ = write!(out, "<{0}>{1}</{0}>", f.name, rec.get_bool(&path)?);
            }
            FieldKind::Scalar(_) => {
                let _ = write!(out, "<{0}>{1}</{0}>", f.name, rec.get_u64(&path)?);
            }
            FieldKind::String => {
                let _ = write!(out, "<{0}>{1}</{0}>", f.name, escape_text(rec.get_string(&path)?));
            }
            FieldKind::StaticArray { elem: BaseType::Char, .. } => {
                let _ =
                    write!(out, "<{0}>{1}</{0}>", f.name, escape_text(&rec.get_char_array(&path)?));
            }
            FieldKind::StaticArray { elem: BaseType::Float, elem_size, count } => {
                for i in 0..*count {
                    let v = rec.get_elem_f64(&path, i)?;
                    if *elem_size == 4 {
                        let _ = write!(out, "<{0}>{1}</{0}>", f.name, v as f32);
                    } else {
                        let _ = write!(out, "<{0}>{1}</{0}>", f.name, v);
                    }
                }
            }
            FieldKind::StaticArray { count, .. } => {
                for i in 0..*count {
                    let _ = write!(out, "<{0}>{1}</{0}>", f.name, rec.get_elem_i64(&path, i)?);
                }
            }
            FieldKind::DynamicArray { elem: BaseType::Float, elem_size, .. } => {
                for v in rec.get_f64_array(&path)? {
                    if *elem_size == 4 {
                        let _ = write!(out, "<{0}>{1}</{0}>", f.name, v as f32);
                    } else {
                        let _ = write!(out, "<{0}>{1}</{0}>", f.name, v);
                    }
                }
            }
            FieldKind::DynamicArray { .. } => {
                for v in rec.get_i64_array(&path)? {
                    let _ = write!(out, "<{0}>{1}</{0}>", f.name, v);
                }
            }
            FieldKind::Nested(sub) => {
                let _ = write!(out, "<{}>", f.name);
                encode_record(rec, sub, &path, out)?;
                let _ = write!(out, "</{}>", f.name);
            }
        }
    }
    Ok(())
}

fn children_named(doc: &Document, parent: NodeId, name: &str) -> Vec<NodeId> {
    doc.children_named(parent, name).collect()
}

fn text_of(doc: &Document, node: NodeId) -> String {
    doc.text_content(node)
}

pub(crate) fn decode_record(
    doc: &Document,
    parent: NodeId,
    desc: &FormatDescriptor,
    prefix: &str,
    rec: &mut RawRecord,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        let nodes = children_named(doc, parent, &f.name);
        let one = || -> Result<NodeId, WireError> {
            match nodes.as_slice() {
                [n] => Ok(*n),
                [] => Err(err(format!("missing element <{}>", f.name))),
                _ => Err(err(format!("repeated element <{}> for a scalar field", f.name))),
            }
        };
        match &f.kind {
            FieldKind::Scalar(BaseType::Float) => {
                let t = text_of(doc, one()?);
                let v: f64 = t
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad float '{t}' in <{}>", f.name)))?;
                rec.set_f64(&path, v)?;
            }
            FieldKind::Scalar(BaseType::Boolean) => {
                let t = text_of(doc, one()?);
                let v = match t.trim() {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    other => return Err(err(format!("bad boolean '{other}' in <{}>", f.name))),
                };
                rec.set_bool(&path, v)?;
            }
            FieldKind::Scalar(BaseType::Integer) => {
                let t = text_of(doc, one()?);
                let v: i64 = t
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad integer '{t}' in <{}>", f.name)))?;
                rec.set_i64(&path, v)?;
            }
            FieldKind::Scalar(_) => {
                let t = text_of(doc, one()?);
                let v: u64 = t
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad unsigned '{t}' in <{}>", f.name)))?;
                rec.set_u64(&path, v)?;
            }
            FieldKind::String => {
                rec.set_string(&path, text_of(doc, one()?))?;
            }
            FieldKind::StaticArray { elem: BaseType::Char, .. } => {
                rec.set_char_array(&path, &text_of(doc, one()?))?;
            }
            FieldKind::StaticArray { elem, count, .. } => {
                if nodes.len() != *count {
                    return Err(err(format!(
                        "<{}> needs exactly {count} occurrences, got {}",
                        f.name,
                        nodes.len()
                    )));
                }
                for (i, n) in nodes.iter().enumerate() {
                    let t = text_of(doc, *n);
                    if matches!(elem, BaseType::Float) {
                        let v: f64 = t
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("bad float '{t}' in <{}>", f.name)))?;
                        rec.set_elem_f64(&path, i, v)?;
                    } else {
                        let v: i64 = t
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("bad integer '{t}' in <{}>", f.name)))?;
                        rec.set_elem_i64(&path, i, v)?;
                    }
                }
            }
            FieldKind::DynamicArray { elem, .. } => {
                if matches!(elem, BaseType::Float) {
                    let mut vals = Vec::with_capacity(nodes.len());
                    for n in &nodes {
                        let t = text_of(doc, *n);
                        vals.push(
                            t.trim()
                                .parse::<f64>()
                                .map_err(|_| err(format!("bad float '{t}' in <{}>", f.name)))?,
                        );
                    }
                    rec.set_f64_array(&path, &vals)?;
                } else {
                    let mut vals = Vec::with_capacity(nodes.len());
                    for n in &nodes {
                        let t = text_of(doc, *n);
                        vals.push(
                            t.trim()
                                .parse::<i64>()
                                .map_err(|_| err(format!("bad integer '{t}' in <{}>", f.name)))?,
                        );
                    }
                    rec.set_i64_array(&path, &vals)?;
                }
            }
            FieldKind::Nested(sub) => {
                decode_record(doc, one()?, sub, &path, rec)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn simple_data() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "SimpleData",
                vec![
                    IOField::auto("timestep", "integer", 4),
                    IOField::auto("size", "integer", 4),
                    IOField::auto("data", "float[size]", 4),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("timestep", 9999).unwrap();
        rec.set_f64_array("data", &[12.25, 12.25, 12.25]).unwrap();
        (fmt, rec)
    }

    #[test]
    fn figure_1_shape() {
        let (_, rec) = simple_data();
        let text = String::from_utf8(XmlWire::new().encode_vec(&rec).unwrap()).unwrap();
        assert!(text.starts_with("<SimpleData>"));
        assert!(text.contains("<timestep>9999</timestep>"));
        assert!(text.contains("<size>3</size>"));
        assert_eq!(text.matches("<data>").count(), 3);
        assert!(text.ends_with("</SimpleData>"));
    }

    #[test]
    fn round_trip() {
        let (fmt, rec) = simple_data();
        let wire = XmlWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_i64("timestep").unwrap(), 9999);
        assert_eq!(back.get_f64_array("data").unwrap(), vec![12.25, 12.25, 12.25]);
    }

    #[test]
    fn expansion_factor_is_large() {
        // The paper: XML messages ≈3× the binary size for SimpleData.
        let (_, rec) = simple_data();
        let xml_len = XmlWire::new().encode_vec(&rec).unwrap().len();
        let binary_len = openmeta_pbio::encode(&rec).unwrap().len();
        assert!(xml_len as f64 / binary_len as f64 > 2.0, "xml {xml_len} vs binary {binary_len}");
    }

    #[test]
    fn strings_escaped() {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt =
            reg.register(FormatSpec::new("S", vec![IOField::auto("s", "string", 0)])).unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_string("s", "a < b & c").unwrap();
        let wire = XmlWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        assert!(String::from_utf8_lossy(&bytes).contains("a &lt; b &amp; c"));
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_string("s").unwrap(), "a < b & c");
    }

    #[test]
    fn wrong_root_and_garbage_rejected() {
        let (fmt, _) = simple_data();
        let wire = XmlWire::new();
        assert!(wire.decode(b"<Other/>", &fmt).is_err());
        assert!(wire.decode(b"not xml at all", &fmt).is_err());
        assert!(wire.decode(b"<SimpleData><timestep>NaNo</timestep></SimpleData>", &fmt).is_err());
    }

    #[test]
    fn missing_scalar_rejected() {
        let (fmt, _) = simple_data();
        let wire = XmlWire::new();
        let res = wire.decode(b"<SimpleData><size>0</size></SimpleData>", &fmt);
        assert!(res.is_err());
    }
}
