//! XML-RPC style messaging — the second of §3.2's planned "Others"
//! integrations, after the XML-RPC specification the paper cites as its
//! reference 9.
//!
//! A record becomes one `methodCall` whose single parameter is a
//! `<struct>` mirroring the format:
//!
//! ```xml
//! <methodCall>
//!   <methodName>xmit.deliver.SimpleData</methodName>
//!   <params><param><value><struct>
//!     <member><name>timestep</name><value><i4>9999</i4></value></member>
//!     <member><name>data</name><value><array><data>
//!       <value><double>12.345</double></value>
//!     </data></array></value></member>
//!   </struct></value></param></params>
//! </methodCall>
//! ```
//!
//! Scalars map onto XML-RPC's `<i4>`/`<i8>`/`<double>`/`<boolean>`/
//! `<string>`; arrays onto `<array><data>`; composed types onto nested
//! `<struct>`s.

use std::fmt::Write as _;
use std::sync::Arc;

use openmeta_pbio::{BaseType, FieldKind, FormatDescriptor, RawRecord};
use openmeta_xml::{escape_text, Document, NodeId};

use crate::error::WireError;
use crate::traits::WireFormat;

/// The XML-RPC comparator.
#[derive(Default)]
pub struct XmlRpcWire;

impl XmlRpcWire {
    /// Create the comparator.
    pub fn new() -> Self {
        XmlRpcWire
    }

    /// Method name used for a format.
    pub fn method_name(format: &FormatDescriptor) -> String {
        format!("xmit.deliver.{}", format.name)
    }
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("xmlrpc", message)
}

impl WireFormat for XmlRpcWire {
    fn name(&self) -> &'static str {
        "xmlrpc"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let start = out.len();
        let mut text = String::with_capacity(rec.format().record_size * 12 + 200);
        let _ = write!(
            text,
            "<methodCall><methodName>{}</methodName><params><param><value>",
            Self::method_name(rec.format())
        );
        encode_struct(rec, rec.format(), "", &mut text)?;
        text.push_str("</value></param></params></methodCall>");
        out.extend_from_slice(text.as_bytes());
        Ok(out.len() - start)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let text = std::str::from_utf8(bytes).map_err(|_| err("message is not UTF-8"))?;
        let doc = openmeta_xml::parse(text).map_err(|e| err(format!("bad XML: {e}")))?;
        let root = doc.root_element().ok_or_else(|| err("empty document"))?;
        if doc.name(root).local != "methodCall" {
            return Err(err("not a methodCall"));
        }
        let method = doc
            .children_named(root, "methodName")
            .next()
            .map(|n| doc.text_content(n))
            .ok_or_else(|| err("missing methodName"))?;
        if method != Self::method_name(format) {
            return Err(err(format!("method '{method}' does not deliver '{}'", format.name)));
        }
        let value = doc
            .children_named(root, "params")
            .next()
            .and_then(|p| doc.children_named(p, "param").next())
            .and_then(|p| doc.children_named(p, "value").next())
            .ok_or_else(|| err("missing params/param/value"))?;
        let st = doc
            .children_named(value, "struct")
            .next()
            .ok_or_else(|| err("parameter is not a struct"))?;
        let mut rec = RawRecord::new(format.clone());
        decode_struct(&doc, st, format, "", &mut rec)?;
        Ok(rec)
    }
}

fn write_scalar_value(out: &mut String, kind: &BaseType, size: usize, int: i64, float: f64) {
    match kind {
        BaseType::Float => {
            if size == 4 {
                let _ = write!(out, "<double>{}</double>", float as f32);
            } else {
                let _ = write!(out, "<double>{float}</double>");
            }
        }
        BaseType::Boolean => {
            let _ = write!(out, "<boolean>{}</boolean>", i64::from(int != 0));
        }
        _ => {
            if (i64::from(i32::MIN)..=i64::from(i32::MAX)).contains(&int) {
                let _ = write!(out, "<i4>{int}</i4>");
            } else {
                // The common i8 extension for 64-bit values.
                let _ = write!(out, "<i8>{int}</i8>");
            }
        }
    }
}

fn encode_struct(
    rec: &RawRecord,
    desc: &FormatDescriptor,
    prefix: &str,
    out: &mut String,
) -> Result<(), WireError> {
    out.push_str("<struct>");
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        let _ = write!(out, "<member><name>{}</name><value>", f.name);
        match &f.kind {
            FieldKind::Scalar(b) => {
                let (int, float) = match b {
                    BaseType::Float => (0, rec.get_f64(&path)?),
                    _ => (rec.get_i64(&path)?, 0.0),
                };
                write_scalar_value(out, b, f.size, int, float);
            }
            FieldKind::String => {
                let _ = write!(out, "<string>{}</string>", escape_text(rec.get_string(&path)?));
            }
            FieldKind::StaticArray { elem: BaseType::Char, .. } => {
                let _ =
                    write!(out, "<string>{}</string>", escape_text(&rec.get_char_array(&path)?));
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                out.push_str("<array><data>");
                for i in 0..*count {
                    out.push_str("<value>");
                    let (int, float) = match elem {
                        BaseType::Float => (0, rec.get_elem_f64(&path, i)?),
                        _ => (rec.get_elem_i64(&path, i)?, 0.0),
                    };
                    write_scalar_value(out, elem, *elem_size, int, float);
                    out.push_str("</value>");
                }
                out.push_str("</data></array>");
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                out.push_str("<array><data>");
                if matches!(elem, BaseType::Float) {
                    for v in rec.get_f64_array(&path)? {
                        out.push_str("<value>");
                        write_scalar_value(out, elem, *elem_size, 0, v);
                        out.push_str("</value>");
                    }
                } else {
                    for v in rec.get_i64_array(&path)? {
                        out.push_str("<value>");
                        write_scalar_value(out, elem, *elem_size, v, 0.0);
                        out.push_str("</value>");
                    }
                }
                out.push_str("</data></array>");
            }
            FieldKind::Nested(sub) => encode_struct(rec, sub, &path, out)?,
        }
        out.push_str("</value></member>");
    }
    out.push_str("</struct>");
    Ok(())
}

/// Find the typed child of a `<value>` element, with XML-RPC's implicit
/// string default.
fn value_payload(doc: &Document, value: NodeId) -> (String, Option<NodeId>) {
    match doc.child_elements(value).next() {
        Some(typed) => (doc.name(typed).local.clone(), Some(typed)),
        None => ("string".to_string(), None),
    }
}

fn scalar_from_value(
    doc: &Document,
    value: NodeId,
    field: &str,
) -> Result<(String, String), WireError> {
    let (ty, typed) = value_payload(doc, value);
    let text = match typed {
        Some(n) => doc.text_content(n),
        None => doc.text_content(value),
    };
    if matches!(ty.as_str(), "i4" | "int" | "i8" | "double" | "boolean" | "string") {
        Ok((ty, text))
    } else {
        Err(err(format!("member '{field}' has unsupported value type <{ty}>")))
    }
}

fn set_scalar(
    rec: &mut RawRecord,
    path: &str,
    kind: &BaseType,
    ty: &str,
    text: &str,
) -> Result<(), WireError> {
    let bad = |what: &str| err(format!("member '{path}': bad {what} '{text}'"));
    match kind {
        BaseType::Float => {
            if ty != "double" && ty != "i4" && ty != "int" {
                return Err(err(format!("member '{path}': expected <double>, got <{ty}>")));
            }
            rec.set_f64(path, text.trim().parse::<f64>().map_err(|_| bad("double"))?)?;
        }
        BaseType::Boolean => {
            let v = match text.trim() {
                "1" | "true" => true,
                "0" | "false" => false,
                _ => return Err(bad("boolean")),
            };
            rec.set_bool(path, v)?;
        }
        _ => {
            rec.set_i64(path, text.trim().parse::<i64>().map_err(|_| bad("integer"))?)?;
        }
    }
    Ok(())
}

fn decode_struct(
    doc: &Document,
    st: NodeId,
    desc: &FormatDescriptor,
    prefix: &str,
    rec: &mut RawRecord,
) -> Result<(), WireError> {
    // Index members by name.
    let mut members = std::collections::HashMap::new();
    for m in doc.children_named(st, "member") {
        let name = doc
            .children_named(m, "name")
            .next()
            .map(|n| doc.text_content(n))
            .ok_or_else(|| err("member without a name"))?;
        let value = doc
            .children_named(m, "value")
            .next()
            .ok_or_else(|| err(format!("member '{name}' without a value")))?;
        members.insert(name, value);
    }
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        let value =
            *members.get(&f.name).ok_or_else(|| err(format!("missing member '{}'", f.name)))?;
        match &f.kind {
            FieldKind::Scalar(b) => {
                let (ty, text) = scalar_from_value(doc, value, &f.name)?;
                set_scalar(rec, &path, b, &ty, &text)?;
            }
            FieldKind::String | FieldKind::StaticArray { elem: BaseType::Char, .. } => {
                let (ty, text) = scalar_from_value(doc, value, &f.name)?;
                if ty != "string" {
                    return Err(err(format!("member '{}': expected <string>, got <{ty}>", f.name)));
                }
                if matches!(f.kind, FieldKind::String) {
                    rec.set_string(&path, text)?;
                } else {
                    rec.set_char_array(&path, &text)?;
                }
            }
            FieldKind::StaticArray { elem, count, .. } => {
                let values = array_values(doc, value, &f.name)?;
                if values.len() != *count {
                    return Err(err(format!(
                        "member '{}': expected {count} values, got {}",
                        f.name,
                        values.len()
                    )));
                }
                for (i, v) in values.iter().enumerate() {
                    let (ty, text) = scalar_from_value(doc, *v, &f.name)?;
                    if matches!(elem, BaseType::Float) {
                        let x: f64 = text
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("member '{}': bad double", f.name)))?;
                        let _ = ty;
                        rec.set_elem_f64(&path, i, x)?;
                    } else {
                        let x: i64 = text
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("member '{}': bad integer", f.name)))?;
                        rec.set_elem_i64(&path, i, x)?;
                    }
                }
            }
            FieldKind::DynamicArray { elem, .. } => {
                let values = array_values(doc, value, &f.name)?;
                if matches!(elem, BaseType::Float) {
                    let mut xs = Vec::with_capacity(values.len());
                    for v in values {
                        let (_, text) = scalar_from_value(doc, v, &f.name)?;
                        xs.push(
                            text.trim()
                                .parse::<f64>()
                                .map_err(|_| err(format!("member '{}': bad double", f.name)))?,
                        );
                    }
                    rec.set_f64_array(&path, &xs)?;
                } else {
                    let mut xs = Vec::with_capacity(values.len());
                    for v in values {
                        let (_, text) = scalar_from_value(doc, v, &f.name)?;
                        xs.push(
                            text.trim()
                                .parse::<i64>()
                                .map_err(|_| err(format!("member '{}': bad integer", f.name)))?,
                        );
                    }
                    rec.set_i64_array(&path, &xs)?;
                }
            }
            FieldKind::Nested(sub) => {
                let st = doc
                    .children_named(value, "struct")
                    .next()
                    .ok_or_else(|| err(format!("member '{}' is not a struct", f.name)))?;
                decode_struct(doc, st, sub, &path, rec)?;
            }
        }
    }
    Ok(())
}

fn array_values(doc: &Document, value: NodeId, field: &str) -> Result<Vec<NodeId>, WireError> {
    let arr = doc
        .children_named(value, "array")
        .next()
        .ok_or_else(|| err(format!("member '{field}' is not an array")))?;
    let data = doc
        .children_named(arr, "data")
        .next()
        .ok_or_else(|| err(format!("member '{field}': array without data")))?;
    Ok(doc.children_named(data, "value").collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn fixture() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        reg.register(FormatSpec::new(
            "Hdr",
            vec![IOField::auto("seq", "integer", 4), IOField::auto("src", "string", 0)],
        ))
        .unwrap();
        let fmt = reg
            .register(FormatSpec::new(
                "Telemetry",
                vec![
                    IOField::auto("hdr", "Hdr", 0),
                    IOField::auto("big", "unsigned integer", 8),
                    IOField::auto("ok", "boolean", 4),
                    IOField::auto("tag", "char[6]", 1),
                    IOField::auto("n", "integer", 4),
                    IOField::auto("xs", "float[n]", 8),
                    IOField::auto("grid", "integer[2]", 4),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("hdr.seq", 9).unwrap();
        rec.set_string("hdr.src", "gauge").unwrap();
        rec.set_u64("big", 5_000_000_000).unwrap();
        rec.set_bool("ok", true).unwrap();
        rec.set_char_array("tag", "t6").unwrap();
        rec.set_f64_array("xs", &[0.5, -1.5]).unwrap();
        rec.set_elem_i64("grid", 0, 3).unwrap();
        rec.set_elem_i64("grid", 1, 4).unwrap();
        (fmt, rec)
    }

    #[test]
    fn call_structure() {
        let (_, rec) = fixture();
        let text = String::from_utf8(XmlRpcWire::new().encode_vec(&rec).unwrap()).unwrap();
        assert!(text.starts_with("<methodCall><methodName>xmit.deliver.Telemetry</methodName>"));
        assert!(text.contains("<member><name>big</name><value><i8>5000000000</i8></value>"));
        assert!(text.contains("<boolean>1</boolean>"));
        assert!(text.contains("<array><data><value><double>0.5</double></value>"));
        assert!(text.contains("<struct><member><name>seq</name><value><i4>9</i4>"));
    }

    #[test]
    fn round_trip() {
        let (fmt, rec) = fixture();
        let wire = XmlRpcWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_i64("hdr.seq").unwrap(), 9);
        assert_eq!(back.get_string("hdr.src").unwrap(), "gauge");
        assert_eq!(back.get_u64("big").unwrap(), 5_000_000_000);
        assert!(back.get_bool("ok").unwrap());
        assert_eq!(back.get_char_array("tag").unwrap(), "t6");
        assert_eq!(back.get_f64_array("xs").unwrap(), vec![0.5, -1.5]);
        assert_eq!(back.get_elem_i64("grid", 1).unwrap(), 4);
    }

    #[test]
    fn wrong_method_rejected() {
        let (fmt, rec) = fixture();
        let wire = XmlRpcWire::new();
        let text = String::from_utf8(wire.encode_vec(&rec).unwrap())
            .unwrap()
            .replace("Telemetry", "Other");
        // Method name mismatch even though the struct matches.
        assert!(wire.decode(text.as_bytes(), &fmt).is_err());
    }

    #[test]
    fn malformed_calls_rejected() {
        let (fmt, _) = fixture();
        let wire = XmlRpcWire::new();
        for msg in [
            "not xml",
            "<methodResponse/>",
            "<methodCall><methodName>xmit.deliver.Telemetry</methodName></methodCall>",
            "<methodCall><methodName>xmit.deliver.Telemetry</methodName>\
             <params><param><value><i4>1</i4></value></param></params></methodCall>",
        ] {
            assert!(wire.decode(msg.as_bytes(), &fmt).is_err(), "{msg}");
        }
    }

    #[test]
    fn missing_member_rejected() {
        let (fmt, rec) = fixture();
        let wire = XmlRpcWire::new();
        let text = String::from_utf8(wire.encode_vec(&rec).unwrap())
            .unwrap()
            .replace("<member><name>ok</name><value><boolean>1</boolean></value></member>", "");
        let e = wire.decode(text.as_bytes(), &fmt).unwrap_err();
        assert!(e.message.contains("missing member 'ok'"), "{e}");
    }

    #[test]
    fn untyped_value_defaults_to_string() {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt =
            reg.register(FormatSpec::new("S", vec![IOField::auto("s", "string", 0)])).unwrap();
        let msg = "<methodCall><methodName>xmit.deliver.S</methodName><params><param>\
                   <value><struct><member><name>s</name><value>plain text</value></member>\
                   </struct></value></param></params></methodCall>";
        let back = XmlRpcWire::new().decode(msg.as_bytes(), &fmt).unwrap();
        assert_eq!(back.get_string("s").unwrap(), "plain text");
    }
}
