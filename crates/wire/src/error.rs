//! Error type for the comparator wire formats.

use std::fmt;

use openmeta_pbio::PbioError;

/// A failure encoding or decoding under one of the comparator formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Which wire format failed.
    pub format: &'static str,
    /// What went wrong.
    pub message: String,
}

impl WireError {
    pub(crate) fn new(format: &'static str, message: impl Into<String>) -> Self {
        WireError { format, message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} wire format: {}", self.format, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<PbioError> for WireError {
    fn from(e: PbioError) -> Self {
        WireError { format: "pbio", message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = WireError::new("cdr", "truncated sequence");
        assert_eq!(e.to_string(), "cdr wire format: truncated sequence");
    }
}
