//! The common `WireFormat` interface and record-walking helpers.

use std::sync::Arc;

use openmeta_pbio::layout::FieldLayout;
use openmeta_pbio::{FormatDescriptor, RawRecord};

use crate::error::WireError;

/// A wire format that can marshal records to bytes and back.
///
/// `decode` takes the target format explicitly: the comparators model
/// systems where both sides share the message definition (MPI datatypes,
/// CORBA IDL, the XML document), so no format identifier travels in-band.
pub trait WireFormat: Send + Sync {
    /// Short name used in benchmark tables (`"pbio"`, `"xml"`, …).
    fn name(&self) -> &'static str;

    /// Marshal `rec`, appending to `out`.  Returns bytes written.
    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError>;

    /// Unmarshal one record of `format` from `bytes`.
    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn encode_vec(&self, rec: &RawRecord) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode(rec, &mut out)?;
        Ok(out)
    }
}

/// Wraps any [`WireFormat`] so its encode/decode calls record
/// `marshal.encode` / `marshal.decode` stage spans, labeled by the
/// wrapped format's name (`{"stage": "marshal.encode", "format": ...}`).
///
/// The Figure 8 comparison loops deliberately do *not* use this wrapper
/// (and pause span timing around the one instrumented format, PBIO's
/// `Encoder`): per-call timing would bias sub-microsecond comparisons.
/// It exists for production-shaped paths that want per-format stage
/// histograms without touching each comparator.
pub struct Instrumented<W: WireFormat> {
    inner: W,
    encode_hist: Arc<openmeta_obs::Histogram>,
    decode_hist: Arc<openmeta_obs::Histogram>,
}

impl<W: WireFormat> Instrumented<W> {
    /// Wrap `inner`, registering its stage series with the global
    /// metrics registry.
    pub fn new(inner: W) -> Instrumented<W> {
        let m = openmeta_obs::MetricsRegistry::global();
        let name = inner.name();
        Instrumented {
            encode_hist: m.histogram_with(
                openmeta_obs::STAGE_HISTOGRAM,
                &[("stage", "marshal.encode"), ("format", name)],
            ),
            decode_hist: m.histogram_with(
                openmeta_obs::STAGE_HISTOGRAM,
                &[("stage", "marshal.decode"), ("format", name)],
            ),
            inner,
        }
    }

    /// The wrapped format.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: WireFormat> WireFormat for Instrumented<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let _span = openmeta_obs::Span::enter(&self.encode_hist);
        self.inner.encode(rec, out)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let _span = openmeta_obs::Span::enter(&self.decode_hist);
        self.inner.decode(bytes, format)
    }
}

/// Walk a format's fields in declaration order, recursing into nested
/// records; the callback receives the dotted path and the field.
pub fn visit_fields<'d>(
    desc: &'d FormatDescriptor,
    prefix: &str,
    visit: &mut impl FnMut(&str, &'d FieldLayout) -> Result<(), WireError>,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        if let openmeta_pbio::FieldKind::Nested(sub) = &f.kind {
            visit_fields(sub, &path, visit)?;
        } else {
            visit(&path, f)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    #[test]
    fn visit_walks_nested_paths_in_order() {
        let reg = FormatRegistry::new(MachineModel::native());
        reg.register(FormatSpec::new(
            "Hdr",
            vec![IOField::auto("seq", "integer", 4), IOField::auto("src", "string", 0)],
        ))
        .unwrap();
        let fmt = reg
            .register(FormatSpec::new(
                "Msg",
                vec![IOField::auto("hdr", "Hdr", 0), IOField::auto("v", "float", 8)],
            ))
            .unwrap();
        let mut seen = Vec::new();
        visit_fields(&fmt, "", &mut |path, _| {
            seen.push(path.to_string());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec!["hdr.seq", "hdr.src", "v"]);
    }

    #[test]
    fn instrumented_round_trips_and_records_per_format_series() {
        let reg = Arc::new(FormatRegistry::new(MachineModel::native()));
        let fmt =
            reg.register(FormatSpec::new("Point", vec![IOField::auto("x", "integer", 4)])).unwrap();
        let wire = Instrumented::new(crate::pbiowire::PbioWire::new(reg));
        assert_eq!(wire.name(), wire.inner().name());
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("x", 7).unwrap();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_i64("x").unwrap(), 7);
        let snap = openmeta_obs::MetricsRegistry::global().snapshot();
        let name = wire.name();
        for stage in ["marshal.encode", "marshal.decode"] {
            let h = snap
                .histogram_value(
                    openmeta_obs::STAGE_HISTOGRAM,
                    &[("format", name), ("stage", stage)],
                )
                .expect("per-format stage series registered");
            assert!(h.count >= 1, "{stage} count = {}", h.count);
        }
    }
}
