//! The common `WireFormat` interface and record-walking helpers.

use std::sync::Arc;

use openmeta_pbio::layout::FieldLayout;
use openmeta_pbio::{FormatDescriptor, RawRecord};

use crate::error::WireError;

/// A wire format that can marshal records to bytes and back.
///
/// `decode` takes the target format explicitly: the comparators model
/// systems where both sides share the message definition (MPI datatypes,
/// CORBA IDL, the XML document), so no format identifier travels in-band.
pub trait WireFormat: Send + Sync {
    /// Short name used in benchmark tables (`"pbio"`, `"xml"`, …).
    fn name(&self) -> &'static str;

    /// Marshal `rec`, appending to `out`.  Returns bytes written.
    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError>;

    /// Unmarshal one record of `format` from `bytes`.
    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn encode_vec(&self, rec: &RawRecord) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode(rec, &mut out)?;
        Ok(out)
    }
}

/// Walk a format's fields in declaration order, recursing into nested
/// records; the callback receives the dotted path and the field.
pub fn visit_fields<'d>(
    desc: &'d FormatDescriptor,
    prefix: &str,
    visit: &mut impl FnMut(&str, &'d FieldLayout) -> Result<(), WireError>,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        if let openmeta_pbio::FieldKind::Nested(sub) = &f.kind {
            visit_fields(sub, &path, visit)?;
        } else {
            visit(&path, f)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    #[test]
    fn visit_walks_nested_paths_in_order() {
        let reg = FormatRegistry::new(MachineModel::native());
        reg.register(FormatSpec::new(
            "Hdr",
            vec![IOField::auto("seq", "integer", 4), IOField::auto("src", "string", 0)],
        ))
        .unwrap();
        let fmt = reg
            .register(FormatSpec::new(
                "Msg",
                vec![IOField::auto("hdr", "Hdr", 0), IOField::auto("v", "float", 8)],
            ))
            .unwrap();
        let mut seen = Vec::new();
        visit_fields(&fmt, "", &mut |path, _| {
            seen.push(path.to_string());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec!["hdr.seq", "hdr.src", "v"]);
    }
}
