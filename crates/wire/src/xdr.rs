//! XDR — External Data Representation (RFC 1014), the Sun RPC wire
//! format the paper cites as the classic "common data exchange format".
//!
//! XDR is a *canonical* format: everything is big-endian and every item
//! occupies a multiple of 4 bytes, so **both** sides always convert — the
//! design point PBIO's receiver-makes-right explicitly rejects.  Integers
//! of width ≤ 4 widen to 4 bytes; 8-byte integers are hyper; strings and
//! variable arrays are length-prefixed and padded to 4.

use std::sync::Arc;

use openmeta_pbio::{BaseType, FieldKind, FormatDescriptor, RawRecord};

use crate::error::WireError;
use crate::traits::WireFormat;
use crate::util::{get_int, get_uint, pad_to, put_uint, Cursor, Order};

/// The XDR comparator.
#[derive(Default)]
pub struct XdrWire;

impl XdrWire {
    /// Create the comparator.
    pub fn new() -> Self {
        XdrWire
    }
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("xdr", message)
}

/// On-wire width of a scalar: 4 or 8.
fn xdr_width(size: usize) -> usize {
    if size > 4 {
        8
    } else {
        4
    }
}

impl WireFormat for XdrWire {
    fn name(&self) -> &'static str {
        "xdr"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let start = out.len();
        encode_struct(rec, rec.format(), "", out)?;
        Ok(out.len() - start)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let mut cur = Cursor::new(bytes);
        let mut rec = RawRecord::new(format.clone());
        decode_struct(&mut cur, format, "", &mut rec)?;
        Ok(rec)
    }
}

fn encode_struct(
    rec: &RawRecord,
    desc: &FormatDescriptor,
    prefix: &str,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        match &f.kind {
            FieldKind::Scalar(b) => {
                let width = xdr_width(f.size);
                let raw = match b {
                    BaseType::Float => {
                        // XDR float (4) / double (8) per declared width.
                        if f.size == 4 {
                            u64::from((rec.get_f64(&path)? as f32).to_bits())
                        } else {
                            rec.get_f64(&path)?.to_bits()
                        }
                    }
                    BaseType::Integer => rec.get_i64(&path)? as u64,
                    _ => rec.get_u64(&path)?,
                };
                // Floats keep their IEEE width; integers widen to 4/8.
                let width = if matches!(b, BaseType::Float) { f.size } else { width };
                put_uint(out, Order::Be, width, raw);
                pad_to(out, 4);
            }
            FieldKind::String => {
                let s = rec.get_string(&path)?;
                put_uint(out, Order::Be, 4, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
                pad_to(out, 4);
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                for i in 0..*count {
                    encode_array_elem(rec, &path, i, elem, *elem_size, out)?;
                }
                pad_to(out, 4);
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                if matches!(elem, BaseType::Float) {
                    let vals = rec.get_f64_array(&path)?;
                    put_uint(out, Order::Be, 4, vals.len() as u64);
                    for v in vals {
                        if *elem_size == 4 {
                            put_uint(out, Order::Be, 4, u64::from((v as f32).to_bits()));
                        } else {
                            put_uint(out, Order::Be, 8, v.to_bits());
                        }
                    }
                } else {
                    let vals = rec.get_i64_array(&path)?;
                    put_uint(out, Order::Be, 4, vals.len() as u64);
                    for v in vals {
                        put_uint(out, Order::Be, xdr_width(*elem_size), v as u64);
                    }
                }
                pad_to(out, 4);
            }
            FieldKind::Nested(sub) => encode_struct(rec, sub, &path, out)?,
        }
    }
    Ok(())
}

fn encode_array_elem(
    rec: &RawRecord,
    path: &str,
    i: usize,
    elem: &BaseType,
    elem_size: usize,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    if matches!(elem, BaseType::Float) {
        let v = rec.get_elem_f64(path, i)?;
        if elem_size == 4 {
            put_uint(out, Order::Be, 4, u64::from((v as f32).to_bits()));
        } else {
            put_uint(out, Order::Be, 8, v.to_bits());
        }
    } else if matches!(elem, BaseType::Char) {
        // Fixed opaque data: bytes packed, padded by the caller.
        put_uint(out, Order::Be, 1, rec.get_elem_i64(path, i)? as u64);
    } else {
        put_uint(out, Order::Be, xdr_width(elem_size), rec.get_elem_i64(path, i)? as u64);
    }
    Ok(())
}

fn decode_struct(
    cur: &mut Cursor<'_>,
    desc: &FormatDescriptor,
    prefix: &str,
    rec: &mut RawRecord,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        let trunc = || err(format!("truncated at field '{path}'"));
        match &f.kind {
            FieldKind::Scalar(b) => {
                match b {
                    BaseType::Float => {
                        let raw = cur.take(f.size).map_err(|_| trunc())?;
                        let v = if f.size == 4 {
                            f32::from_bits(get_uint(raw, Order::Be) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, Order::Be))
                        };
                        rec.set_f64(&path, v)?;
                    }
                    BaseType::Integer => {
                        let raw = cur.take(xdr_width(f.size)).map_err(|_| trunc())?;
                        rec.set_i64(&path, get_int(raw, Order::Be))?;
                    }
                    _ => {
                        let raw = cur.take(xdr_width(f.size)).map_err(|_| trunc())?;
                        rec.set_u64(&path, get_uint(raw, Order::Be))?;
                    }
                }
                cur.align(4).map_err(|_| trunc())?;
            }
            FieldKind::String => {
                let len = get_uint(cur.take(4).map_err(|_| trunc())?, Order::Be) as usize;
                if len > cur.remaining() {
                    return Err(err(format!("string at '{path}' claims {len} bytes")));
                }
                let bytes = cur.take(len).map_err(|_| trunc())?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| err(format!("string at '{path}' is not UTF-8")))?
                    .to_string();
                cur.align(4).map_err(|_| trunc())?;
                rec.set_string(&path, s)?;
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                for i in 0..*count {
                    if matches!(elem, BaseType::Float) {
                        let raw = cur.take(*elem_size).map_err(|_| trunc())?;
                        let v = if *elem_size == 4 {
                            f32::from_bits(get_uint(raw, Order::Be) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, Order::Be))
                        };
                        rec.set_elem_f64(&path, i, v)?;
                    } else if matches!(elem, BaseType::Char) {
                        let raw = cur.take(1).map_err(|_| trunc())?;
                        rec.set_elem_i64(&path, i, raw[0] as i64)?;
                    } else {
                        let raw = cur.take(xdr_width(*elem_size)).map_err(|_| trunc())?;
                        rec.set_elem_i64(&path, i, get_int(raw, Order::Be))?;
                    }
                }
                cur.align(4).map_err(|_| trunc())?;
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                let count = get_uint(cur.take(4).map_err(|_| trunc())?, Order::Be) as usize;
                if count > cur.remaining() {
                    return Err(err(format!("array at '{path}' claims {count} elements")));
                }
                if matches!(elem, BaseType::Float) {
                    let mut vals = Vec::with_capacity(count);
                    for _ in 0..count {
                        let raw = cur.take(*elem_size).map_err(|_| trunc())?;
                        vals.push(if *elem_size == 4 {
                            f32::from_bits(get_uint(raw, Order::Be) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, Order::Be))
                        });
                    }
                    rec.set_f64_array(&path, &vals)?;
                } else {
                    let mut vals = Vec::with_capacity(count);
                    for _ in 0..count {
                        let raw = cur.take(xdr_width(*elem_size)).map_err(|_| trunc())?;
                        vals.push(get_int(raw, Order::Be));
                    }
                    rec.set_i64_array(&path, &vals)?;
                }
                cur.align(4).map_err(|_| trunc())?;
            }
            FieldKind::Nested(sub) => decode_struct(cur, sub, &path, rec)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn fmt_and_rec() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "M",
                vec![
                    IOField::auto("small", "integer", 2),
                    IOField::auto("wide", "unsigned integer", 8),
                    IOField::auto("f", "float", 4),
                    IOField::auto("s", "string", 0),
                    IOField::auto("n", "integer", 4),
                    IOField::auto("xs", "float[n]", 8),
                    IOField::auto("tag", "char[5]", 1),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("small", -3).unwrap();
        rec.set_u64("wide", u64::MAX - 1).unwrap();
        rec.set_f64("f", 0.25).unwrap();
        rec.set_string("s", "xdr!").unwrap();
        rec.set_f64_array("xs", &[1.0, 2.0, 3.0]).unwrap();
        rec.set_char_array("tag", "tag5!").unwrap();
        (fmt, rec)
    }

    #[test]
    fn round_trip() {
        let (fmt, rec) = fmt_and_rec();
        let wire = XdrWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_i64("small").unwrap(), -3);
        assert_eq!(back.get_u64("wide").unwrap(), u64::MAX - 1);
        assert_eq!(back.get_f64("f").unwrap(), 0.25);
        assert_eq!(back.get_string("s").unwrap(), "xdr!");
        assert_eq!(back.get_f64_array("xs").unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(back.get_char_array("tag").unwrap(), "tag5!");
    }

    #[test]
    fn everything_is_4_byte_aligned_big_endian() {
        let (_, rec) = fmt_and_rec();
        let bytes = XdrWire::new().encode_vec(&rec).unwrap();
        assert_eq!(bytes.len() % 4, 0);
        // The 2-byte integer widened to 4 bytes big-endian: -3.
        assert_eq!(&bytes[0..4], &[0xff, 0xff, 0xff, 0xfd]);
    }

    #[test]
    fn small_ints_widen() {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt =
            reg.register(FormatSpec::new("B", vec![IOField::auto("b", "integer", 1)])).unwrap();
        let mut rec = RawRecord::new(fmt);
        rec.set_i64("b", 5).unwrap();
        let bytes = XdrWire::new().encode_vec(&rec).unwrap();
        assert_eq!(bytes, vec![0, 0, 0, 5]);
    }

    #[test]
    fn truncation_rejected() {
        let (fmt, rec) = fmt_and_rec();
        let wire = XdrWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(wire.decode(&bytes[..cut], &fmt).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_lengths_rejected() {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt =
            reg.register(FormatSpec::new("S", vec![IOField::auto("s", "string", 0)])).unwrap();
        let msg = [0xffu8, 0xff, 0xff, 0xff];
        assert!(XdrWire::new().decode(&msg, &fmt).is_err());
    }
}
