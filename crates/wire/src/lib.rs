//! Comparator wire formats.
//!
//! The paper's Figure 8 plots send-side encode times for four binary
//! communication mechanisms — **PBIO**, **MPICH**, **CORBA** (IIOP/CDR)
//! and **XML** — across message sizes from 100 bytes to 100 KB, on a log
//! scale.  §4.1 adds the headline claim that XML-as-wire-format costs
//! "between 2 and 4 orders of magnitude" more than binary mechanisms and
//! inflates messages by 6–8× (3× for the Figure 1 `SimpleData`).
//!
//! This crate implements each comparator against the same record model so
//! the benchmark harness can reproduce the figure:
//!
//! | impl | models | encode strategy |
//! |---|---|---|
//! | [`PbioWire`] | PBIO | block-copy fixed image + patched pointer slots |
//! | [`MpiPackWire`] | MPICH `MPI_Pack` | per-element datatype-walking copy into a contiguous buffer |
//! | [`CdrWire`] | CORBA CDR (GIOP) | aligned little/big-endian CDR with byte-order flag, reader makes right |
//! | [`XdrWire`] | Sun RPC XDR (RFC 1014) | big-endian 4-byte-aligned canonical form |
//! | [`XmlWire`] | XML over ASCII | Figure 1-style element-per-field text, full string conversion both ways |
//!
//! All five implement [`WireFormat`], so they are interchangeable in
//! benchmarks and differential tests.

#![deny(unsafe_code)]

pub mod cdr;
pub mod error;
pub mod giop;
pub mod mpipack;
pub mod pbiowire;
pub mod soap;
pub mod traits;
pub mod util;
pub mod xdr;
pub mod xmlrpc;
pub mod xmlwire;

pub use cdr::CdrWire;
pub use error::WireError;
pub use mpipack::MpiPackWire;
pub use pbiowire::PbioWire;
pub use soap::SoapWire;
pub use traits::{Instrumented, WireFormat};
pub use xdr::XdrWire;
pub use xmlrpc::XmlRpcWire;
pub use xmlwire::XmlWire;

/// The paper's Figure 8 comparators, for table-driven benchmarks.
pub fn all_formats(
    registry: std::sync::Arc<openmeta_pbio::FormatRegistry>,
) -> Vec<Box<dyn WireFormat>> {
    vec![
        Box::new(PbioWire::new(registry)),
        Box::new(MpiPackWire::new()),
        Box::new(CdrWire::new()),
        Box::new(XdrWire::new()),
        Box::new(XmlWire::new()),
    ]
}

/// Every wire format including the §3.2 "Others" (SOAP, XML-RPC), for
/// differential tests.
pub fn all_formats_extended(
    registry: std::sync::Arc<openmeta_pbio::FormatRegistry>,
) -> Vec<Box<dyn WireFormat>> {
    let mut v = all_formats(registry);
    v.push(Box::new(SoapWire::new()));
    v.push(Box::new(XmlRpcWire::new()));
    v
}
