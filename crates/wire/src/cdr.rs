//! CORBA CDR (Common Data Representation), as carried by IIOP.
//!
//! §5 of the paper: "IIOP attempts to reduce marshaling overhead by
//! adopting a 'reader-makes-right' approach with respect to byte order
//! (the actual byte order used in a message is specified by a header
//! field) … but is not sufficient to allow such message exchanges without
//! copying of data at both sender and receiver."
//!
//! This implementation follows CDR encapsulation rules: one byte-order
//! flag byte, then primitives aligned to their natural size relative to
//! the start of the encapsulation, strings as length-prefixed
//! NUL-terminated octets, sequences as length-prefixed element runs, and
//! struct members in declaration order.  Every field is visited and
//! copied individually — the per-field cost Figure 8 shows sitting well
//! above PBIO's block copy.

use std::sync::Arc;

use openmeta_pbio::{BaseType, FieldKind, FormatDescriptor, RawRecord};

use crate::error::WireError;
use crate::traits::WireFormat;
use crate::util::{get_int, get_uint, pad_to, put_uint, Cursor, Order};

/// The CDR comparator.
#[derive(Default)]
pub struct CdrWire;

impl CdrWire {
    /// Create the comparator.
    pub fn new() -> Self {
        CdrWire
    }
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("cdr", message)
}

/// CDR alignment of a primitive of `size` bytes.
fn cdr_align(size: usize) -> usize {
    size.clamp(1, 8)
}

impl WireFormat for CdrWire {
    fn name(&self) -> &'static str {
        "cdr"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let start = out.len();
        // CDR encapsulations are self-contained; encode into a scratch
        // buffer so alignment is relative to the encapsulation start.
        let mut body = Vec::with_capacity(rec.format().record_size * 2);
        body.push(match Order::native() {
            Order::Be => 0u8,
            Order::Le => 1u8,
        });
        encode_struct(rec, rec.format(), "", &mut body)?;
        out.extend_from_slice(&body);
        Ok(out.len() - start)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let mut cur = Cursor::new(bytes);
        let flag = cur.take(1).map_err(|_| err("empty message"))?[0];
        let order = match flag {
            0 => Order::Be,
            1 => Order::Le,
            other => return Err(err(format!("bad byte-order flag {other}"))),
        };
        let mut rec = RawRecord::new(format.clone());
        decode_struct(&mut cur, order, format, "", &mut rec)?;
        Ok(rec)
    }
}

fn encode_struct(
    rec: &RawRecord,
    desc: &FormatDescriptor,
    prefix: &str,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let order = Order::native();
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        match &f.kind {
            FieldKind::Scalar(b) => {
                pad_to(out, cdr_align(f.size));
                let raw = match b {
                    BaseType::Float => {
                        if f.size == 4 {
                            u64::from((rec.get_f64(&path)? as f32).to_bits())
                        } else {
                            rec.get_f64(&path)?.to_bits()
                        }
                    }
                    _ => rec.get_u64(&path)?,
                };
                put_uint(out, order, f.size, raw);
            }
            FieldKind::String => {
                let s = rec.get_string(&path)?;
                pad_to(out, 4);
                put_uint(out, order, 4, (s.len() + 1) as u64);
                out.extend_from_slice(s.as_bytes());
                out.push(0);
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                pad_to(out, cdr_align(*elem_size));
                for i in 0..*count {
                    let raw = match elem {
                        BaseType::Float => {
                            if *elem_size == 4 {
                                u64::from((rec.get_elem_f64(&path, i)? as f32).to_bits())
                            } else {
                                rec.get_elem_f64(&path, i)?.to_bits()
                            }
                        }
                        _ => rec.get_elem_i64(&path, i)? as u64,
                    };
                    put_uint(out, order, *elem_size, raw);
                }
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                pad_to(out, 4);
                if matches!(elem, BaseType::Float) {
                    let vals = rec.get_f64_array(&path)?;
                    put_uint(out, order, 4, vals.len() as u64);
                    pad_to(out, cdr_align(*elem_size));
                    for v in vals {
                        let raw = if *elem_size == 4 {
                            u64::from((v as f32).to_bits())
                        } else {
                            v.to_bits()
                        };
                        put_uint(out, order, *elem_size, raw);
                    }
                } else {
                    let vals = rec.get_i64_array(&path)?;
                    put_uint(out, order, 4, vals.len() as u64);
                    pad_to(out, cdr_align(*elem_size));
                    for v in vals {
                        put_uint(out, order, *elem_size, v as u64);
                    }
                }
            }
            FieldKind::Nested(sub) => encode_struct(rec, sub, &path, out)?,
        }
    }
    Ok(())
}

fn decode_struct(
    cur: &mut Cursor<'_>,
    order: Order,
    desc: &FormatDescriptor,
    prefix: &str,
    rec: &mut RawRecord,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        let trunc = || err(format!("truncated at field '{path}'"));
        match &f.kind {
            FieldKind::Scalar(b) => {
                cur.align(cdr_align(f.size)).map_err(|_| trunc())?;
                let raw = cur.take(f.size).map_err(|_| trunc())?;
                match b {
                    BaseType::Float => {
                        let v = if f.size == 4 {
                            f32::from_bits(get_uint(raw, order) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, order))
                        };
                        rec.set_f64(&path, v)?;
                    }
                    BaseType::Integer => {
                        rec.set_i64(&path, get_int(raw, order))?;
                    }
                    _ => {
                        rec.set_u64(&path, get_uint(raw, order))?;
                    }
                }
            }
            FieldKind::String => {
                cur.align(4).map_err(|_| trunc())?;
                let len = get_uint(cur.take(4).map_err(|_| trunc())?, order) as usize;
                if len == 0 {
                    return Err(err(format!("zero-length CDR string at '{path}'")));
                }
                let bytes = cur.take(len).map_err(|_| trunc())?;
                if bytes[len - 1] != 0 {
                    return Err(err(format!("CDR string at '{path}' lacks NUL")));
                }
                let s = std::str::from_utf8(&bytes[..len - 1])
                    .map_err(|_| err(format!("string at '{path}' is not UTF-8")))?;
                rec.set_string(&path, s)?;
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                cur.align(cdr_align(*elem_size)).map_err(|_| trunc())?;
                for i in 0..*count {
                    let raw = cur.take(*elem_size).map_err(|_| trunc())?;
                    if matches!(elem, BaseType::Float) {
                        let v = if *elem_size == 4 {
                            f32::from_bits(get_uint(raw, order) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, order))
                        };
                        rec.set_elem_f64(&path, i, v)?;
                    } else {
                        rec.set_elem_i64(&path, i, get_int(raw, order))?;
                    }
                }
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                cur.align(4).map_err(|_| trunc())?;
                let count = get_uint(cur.take(4).map_err(|_| trunc())?, order) as usize;
                if count > cur.remaining() / *elem_size + 1 {
                    return Err(err(format!("sequence at '{path}' claims {count} elements")));
                }
                cur.align(cdr_align(*elem_size)).map_err(|_| trunc())?;
                if matches!(elem, BaseType::Float) {
                    let mut vals = Vec::with_capacity(count);
                    for _ in 0..count {
                        let raw = cur.take(*elem_size).map_err(|_| trunc())?;
                        vals.push(if *elem_size == 4 {
                            f32::from_bits(get_uint(raw, order) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, order))
                        });
                    }
                    rec.set_f64_array(&path, &vals)?;
                } else {
                    let mut vals = Vec::with_capacity(count);
                    for _ in 0..count {
                        vals.push(get_int(cur.take(*elem_size).map_err(|_| trunc())?, order));
                    }
                    rec.set_i64_array(&path, &vals)?;
                }
            }
            FieldKind::Nested(sub) => decode_struct(cur, order, sub, &path, rec)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn fmt_and_rec() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "M",
                vec![
                    IOField::auto("tag", "char", 1),
                    IOField::auto("v", "float", 8),
                    IOField::auto("who", "string", 0),
                    IOField::auto("n", "integer", 4),
                    IOField::auto("xs", "float[n]", 4),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_u64("tag", b'Q' as u64).unwrap();
        rec.set_f64("v", -3.5).unwrap();
        rec.set_string("who", "cdr").unwrap();
        rec.set_f64_array("xs", &[0.5, 1.5]).unwrap();
        (fmt, rec)
    }

    #[test]
    fn round_trip() {
        let (fmt, rec) = fmt_and_rec();
        let wire = CdrWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_u64("tag").unwrap(), b'Q' as u64);
        assert_eq!(back.get_f64("v").unwrap(), -3.5);
        assert_eq!(back.get_string("who").unwrap(), "cdr");
        assert_eq!(back.get_f64_array("xs").unwrap(), vec![0.5, 1.5]);
    }

    #[test]
    fn alignment_rules_respected() {
        let (_, rec) = fmt_and_rec();
        let bytes = CdrWire::new().encode_vec(&rec).unwrap();
        // flag(1) → pad to 0 for char at 1 … double 'v' must start at 8.
        // tag is at offset 1; the double is aligned to 8.
        assert_eq!(&bytes[1], &b'Q');
        let v = f64::from_le_bytes(bytes[8..16].try_into().unwrap());
        // Only valid on little-endian hosts; tolerate BE by re-checking.
        if Order::native() == Order::Le {
            assert_eq!(v, -3.5);
        }
    }

    #[test]
    fn reader_makes_right_foreign_order() {
        // Craft a big-endian message by hand and decode on any host.
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt =
            reg.register(FormatSpec::new("I", vec![IOField::auto("x", "integer", 4)])).unwrap();
        let msg = [0u8, 0, 0, 0, /* pad to 4 */ 0, 0, 0, 42];
        let back = CdrWire::new().decode(&msg, &fmt).unwrap();
        assert_eq!(back.get_i64("x").unwrap(), 42);
    }

    #[test]
    fn truncation_and_bad_flags_rejected() {
        let (fmt, rec) = fmt_and_rec();
        let wire = CdrWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        assert!(wire.decode(&bytes[..bytes.len() - 1], &fmt).is_err());
        assert!(wire.decode(&[], &fmt).is_err());
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(wire.decode(&bad, &fmt).is_err());
    }

    #[test]
    fn hostile_sequence_length_rejected() {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "A",
                vec![IOField::auto("n", "integer", 4), IOField::auto("xs", "float[n]", 4)],
            ))
            .unwrap();
        // flag BE, n=1, then count=0xFFFFFFFF with no payload.
        let msg = [0u8, 0, 0, 0, /*n*/ 0, 0, 0, 1, /*count*/ 0xff, 0xff, 0xff, 0xff];
        assert!(CdrWire::new().decode(&msg, &fmt).is_err());
    }
}
