//! MPI-style pack/unpack, modelled on MPICH's generic `MPI_Pack` path.
//!
//! §4.5: "previous research has established that MPI takes on the order
//! of 10 times as long as PBIO to encode a structure of comparable size".
//! The reason is structural: `MPI_Pack` walks the user's derived datatype
//! and copies **element by element** through a type-dispatch loop into a
//! contiguous `MPI_PACKED` buffer, while PBIO block-copies the whole
//! record and patches pointer slots.  This implementation reproduces that
//! per-element loop faithfully (one dispatch + one bounded copy per
//! element), so the relative cost in Figure 8 emerges from structure, not
//! from an artificial sleep.
//!
//! Framing: fields in declaration order, native byte order, no alignment
//! (a packed buffer), dynamic arrays and strings length-prefixed with a
//! u32 count — the receiver shares the datatype, as MPI requires.

use std::sync::Arc;

use openmeta_pbio::{BaseType, FieldKind, FormatDescriptor, RawRecord};

use crate::error::WireError;
use crate::traits::WireFormat;
use crate::util::{get_int, get_uint, put_uint, Cursor, Order};

/// The MPI-pack comparator.
#[derive(Default)]
pub struct MpiPackWire;

impl MpiPackWire {
    /// Create the comparator.
    pub fn new() -> Self {
        MpiPackWire
    }
}

fn err(message: impl Into<String>) -> WireError {
    WireError::new("mpi", message)
}

/// One element copied through the dispatch switch, as MPICH's
/// `MPIR_Pack_size`/segment loop does.
#[inline(never)]
fn pack_element(out: &mut Vec<u8>, elem: BaseType, size: usize, raw: u64) {
    // The dispatch itself is the modelled cost; all integer categories
    // share a copy loop, floats go through their own arm.
    match elem {
        BaseType::Float => put_uint(out, Order::native(), size, raw),
        BaseType::Integer
        | BaseType::Unsigned
        | BaseType::Boolean
        | BaseType::Enumeration
        | BaseType::Char => put_uint(out, Order::native(), size, raw),
    }
}

impl WireFormat for MpiPackWire {
    fn name(&self) -> &'static str {
        "mpi"
    }

    fn encode(&self, rec: &RawRecord, out: &mut Vec<u8>) -> Result<usize, WireError> {
        let start = out.len();
        pack_struct(rec, rec.format(), "", out)?;
        Ok(out.len() - start)
    }

    fn decode(&self, bytes: &[u8], format: &Arc<FormatDescriptor>) -> Result<RawRecord, WireError> {
        let mut cur = Cursor::new(bytes);
        let mut rec = RawRecord::new(format.clone());
        unpack_struct(&mut cur, format, "", &mut rec)?;
        if cur.remaining() != 0 {
            return Err(err(format!("{} trailing bytes", cur.remaining())));
        }
        Ok(rec)
    }
}

fn pack_struct(
    rec: &RawRecord,
    desc: &FormatDescriptor,
    prefix: &str,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        match &f.kind {
            FieldKind::Scalar(b) => {
                let raw = match b {
                    BaseType::Float => {
                        if f.size == 4 {
                            u64::from((rec.get_f64(&path)? as f32).to_bits())
                        } else {
                            rec.get_f64(&path)?.to_bits()
                        }
                    }
                    _ => rec.get_u64(&path)?,
                };
                pack_element(out, scalar_base(b), f.size, raw);
            }
            FieldKind::String => {
                let s = rec.get_string(&path)?;
                put_uint(out, Order::native(), 4, s.len() as u64);
                for &b in s.as_bytes() {
                    pack_element(out, BaseType::Char, 1, u64::from(b));
                }
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                for i in 0..*count {
                    let raw = match elem {
                        BaseType::Float => {
                            if *elem_size == 4 {
                                u64::from((rec.get_elem_f64(&path, i)? as f32).to_bits())
                            } else {
                                rec.get_elem_f64(&path, i)?.to_bits()
                            }
                        }
                        _ => rec.get_elem_i64(&path, i)? as u64,
                    };
                    pack_element(out, *elem, *elem_size, raw);
                }
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                if matches!(elem, BaseType::Float) {
                    let vals = rec.get_f64_array(&path)?;
                    put_uint(out, Order::native(), 4, vals.len() as u64);
                    for v in vals {
                        let raw = if *elem_size == 4 {
                            u64::from((v as f32).to_bits())
                        } else {
                            v.to_bits()
                        };
                        pack_element(out, BaseType::Float, *elem_size, raw);
                    }
                } else {
                    let vals = rec.get_i64_array(&path)?;
                    put_uint(out, Order::native(), 4, vals.len() as u64);
                    for v in vals {
                        pack_element(out, *elem, *elem_size, v as u64);
                    }
                }
            }
            FieldKind::Nested(sub) => pack_struct(rec, sub, &path, out)?,
        }
    }
    Ok(())
}

fn scalar_base(b: &BaseType) -> BaseType {
    *b
}

fn unpack_struct(
    cur: &mut Cursor<'_>,
    desc: &FormatDescriptor,
    prefix: &str,
    rec: &mut RawRecord,
) -> Result<(), WireError> {
    let order = Order::native();
    for f in &desc.fields {
        let path = if prefix.is_empty() { f.name.clone() } else { format!("{prefix}.{}", f.name) };
        let trunc = || err(format!("truncated at field '{path}'"));
        match &f.kind {
            FieldKind::Scalar(b) => {
                let raw = cur.take(f.size).map_err(|_| trunc())?;
                match b {
                    BaseType::Float => {
                        let v = if f.size == 4 {
                            f32::from_bits(get_uint(raw, order) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, order))
                        };
                        rec.set_f64(&path, v)?;
                    }
                    BaseType::Integer => rec.set_i64(&path, get_int(raw, order))?,
                    _ => rec.set_u64(&path, get_uint(raw, order))?,
                }
            }
            FieldKind::String => {
                let len = get_uint(cur.take(4).map_err(|_| trunc())?, order) as usize;
                let bytes = cur.take(len).map_err(|_| trunc())?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| err(format!("string at '{path}' is not UTF-8")))?;
                rec.set_string(&path, s)?;
            }
            FieldKind::StaticArray { elem, elem_size, count } => {
                for i in 0..*count {
                    let raw = cur.take(*elem_size).map_err(|_| trunc())?;
                    if matches!(elem, BaseType::Float) {
                        let v = if *elem_size == 4 {
                            f32::from_bits(get_uint(raw, order) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, order))
                        };
                        rec.set_elem_f64(&path, i, v)?;
                    } else {
                        rec.set_elem_i64(&path, i, get_int(raw, order))?;
                    }
                }
            }
            FieldKind::DynamicArray { elem, elem_size, .. } => {
                let count = get_uint(cur.take(4).map_err(|_| trunc())?, order) as usize;
                if count > cur.remaining() / *elem_size + 1 {
                    return Err(err(format!("array at '{path}' claims {count} elements")));
                }
                if matches!(elem, BaseType::Float) {
                    let mut vals = Vec::with_capacity(count);
                    for _ in 0..count {
                        let raw = cur.take(*elem_size).map_err(|_| trunc())?;
                        vals.push(if *elem_size == 4 {
                            f32::from_bits(get_uint(raw, order) as u32) as f64
                        } else {
                            f64::from_bits(get_uint(raw, order))
                        });
                    }
                    rec.set_f64_array(&path, &vals)?;
                } else {
                    let mut vals = Vec::with_capacity(count);
                    for _ in 0..count {
                        vals.push(get_int(cur.take(*elem_size).map_err(|_| trunc())?, order));
                    }
                    rec.set_i64_array(&path, &vals)?;
                }
            }
            FieldKind::Nested(sub) => unpack_struct(cur, sub, &path, rec)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel};

    fn fmt_and_rec() -> (Arc<FormatDescriptor>, RawRecord) {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "M",
                vec![
                    IOField::auto("a", "integer", 4),
                    IOField::auto("s", "string", 0),
                    IOField::auto("n", "integer", 4),
                    IOField::auto("xs", "float[n]", 8),
                    IOField::auto("grid", "integer[3]", 2),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt.clone());
        rec.set_i64("a", -9).unwrap();
        rec.set_string("s", "mpi").unwrap();
        rec.set_f64_array("xs", &[2.5, -0.5]).unwrap();
        for i in 0..3 {
            rec.set_elem_i64("grid", i, i as i64 - 1).unwrap();
        }
        (fmt, rec)
    }

    #[test]
    fn round_trip() {
        let (fmt, rec) = fmt_and_rec();
        let wire = MpiPackWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        let back = wire.decode(&bytes, &fmt).unwrap();
        assert_eq!(back.get_i64("a").unwrap(), -9);
        assert_eq!(back.get_string("s").unwrap(), "mpi");
        assert_eq!(back.get_f64_array("xs").unwrap(), vec![2.5, -0.5]);
        assert_eq!(back.get_elem_i64("grid", 0).unwrap(), -1);
    }

    #[test]
    fn packed_buffer_has_no_padding() {
        let (_, rec) = fmt_and_rec();
        let bytes = MpiPackWire::new().encode_vec(&rec).unwrap();
        // 4 (a) + 4+3 (s) + 4 (n) + 4+16 (xs) + 6 (grid) = 41
        assert_eq!(bytes.len(), 41);
    }

    #[test]
    fn truncation_and_trailing_garbage_rejected() {
        let (fmt, rec) = fmt_and_rec();
        let wire = MpiPackWire::new();
        let bytes = wire.encode_vec(&rec).unwrap();
        assert!(wire.decode(&bytes[..bytes.len() - 1], &fmt).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(wire.decode(&extra, &fmt).is_err());
    }

    #[test]
    fn hostile_count_rejected() {
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "A",
                vec![IOField::auto("n", "integer", 4), IOField::auto("xs", "float[n]", 4)],
            ))
            .unwrap();
        let mut msg = Vec::new();
        put_uint(&mut msg, Order::native(), 4, 1); // n
        put_uint(&mut msg, Order::native(), 4, u32::MAX as u64); // count
        assert!(MpiPackWire::new().decode(&msg, &fmt).is_err());
    }
}
