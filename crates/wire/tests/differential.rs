//! Differential testing: every comparator wire format must round-trip
//! the same records to the same values — they differ in cost and bytes,
//! never in meaning.

use std::sync::Arc;

use proptest::prelude::*;

use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel, RawRecord};
use openmeta_wire::{all_formats, all_formats_extended};

fn registry() -> Arc<FormatRegistry> {
    Arc::new(FormatRegistry::new(MachineModel::native()))
}

fn mixed_format(reg: &FormatRegistry) -> Arc<openmeta_pbio::FormatDescriptor> {
    reg.register(FormatSpec::new(
        "Mixed",
        vec![
            IOField::auto("id", "integer", 4),
            IOField::auto("weight", "float", 8),
            IOField::auto("ratio", "float", 4),
            IOField::auto("label", "string", 0),
            IOField::auto("n", "integer", 4),
            IOField::auto("samples", "float[n]", 8),
            IOField::auto("m", "integer", 4),
            IOField::auto("codes", "integer[m]", 4),
            IOField::auto("grid", "integer[4]", 2),
        ],
    ))
    .unwrap()
}

#[derive(Debug, Clone)]
struct Payload {
    id: i64,
    weight: f64,
    ratio: f32,
    label: String,
    samples: Vec<f64>,
    codes: Vec<i64>,
    grid: [i64; 4],
}

fn payload() -> impl Strategy<Value = Payload> {
    (
        any::<i32>(),
        -1e9f64..1e9,
        -1e6f32..1e6,
        "[ -~]{0,40}",
        proptest::collection::vec(-1e6f64..1e6, 0..20),
        proptest::collection::vec(-1000000i64..1000000, 0..20),
        [-30000i64..30000, -30000i64..30000, -30000i64..30000, -30000i64..30000],
    )
        .prop_map(|(id, weight, ratio, label, samples, codes, grid)| Payload {
            id: id as i64,
            weight,
            ratio,
            label,
            samples,
            codes,
            grid,
        })
}

fn build(fmt: &Arc<openmeta_pbio::FormatDescriptor>, p: &Payload) -> RawRecord {
    let mut rec = RawRecord::new(fmt.clone());
    rec.set_i64("id", p.id).unwrap();
    rec.set_f64("weight", p.weight).unwrap();
    rec.set_f64("ratio", p.ratio as f64).unwrap();
    rec.set_string("label", p.label.clone()).unwrap();
    rec.set_f64_array("samples", &p.samples).unwrap();
    rec.set_i64_array("codes", &p.codes).unwrap();
    for (i, g) in p.grid.iter().enumerate() {
        rec.set_elem_i64("grid", i, *g).unwrap();
    }
    rec
}

fn check(back: &RawRecord, p: &Payload, which: &str) {
    assert_eq!(back.get_i64("id").unwrap(), p.id, "{which}: id");
    assert_eq!(back.get_f64("weight").unwrap(), p.weight, "{which}: weight");
    assert_eq!(back.get_f64("ratio").unwrap(), p.ratio as f64, "{which}: ratio");
    assert_eq!(back.get_string("label").unwrap(), p.label, "{which}: label");
    assert_eq!(back.get_f64_array("samples").unwrap(), p.samples, "{which}: samples");
    assert_eq!(back.get_i64_array("codes").unwrap(), p.codes, "{which}: codes");
    for (i, g) in p.grid.iter().enumerate() {
        assert_eq!(back.get_elem_i64("grid", i).unwrap(), *g, "{which}: grid[{i}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_formats_round_trip_identically(p in payload()) {
        let reg = registry();
        let fmt = mixed_format(&reg);
        let rec = build(&fmt, &p);
        for wire in all_formats_extended(reg.clone()) {
            let bytes = wire.encode_vec(&rec)
                .unwrap_or_else(|e| panic!("{} encode: {e}", wire.name()));
            let back = wire.decode(&bytes, &fmt)
                .unwrap_or_else(|e| panic!("{} decode: {e}", wire.name()));
            check(&back, &p, wire.name());
        }
    }

    #[test]
    fn no_format_panics_on_mutated_bytes(
        p in payload(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..255), 1..5),
    ) {
        let reg = registry();
        let fmt = mixed_format(&reg);
        let rec = build(&fmt, &p);
        for wire in all_formats_extended(reg.clone()) {
            let mut bytes = wire.encode_vec(&rec).unwrap();
            if bytes.is_empty() { continue; }
            for (idx, x) in &flips {
                let i = idx.index(bytes.len());
                bytes[i] ^= *x;
            }
            let _ = wire.decode(&bytes, &fmt); // may error, must not panic
        }
    }
}

/// The paper's size ordering: binary formats are compact, XML is not.
#[test]
fn xml_is_largest_pbio_among_smallest() {
    let reg = registry();
    let fmt = mixed_format(&reg);
    let p = Payload {
        id: 42,
        weight: 1.5,
        ratio: 0.25,
        label: "hydrology".to_string(),
        samples: (0..50).map(|i| i as f64 * 0.75).collect(),
        codes: (0..20).collect(),
        grid: [1, 2, 3, 4],
    };
    let rec = build(&fmt, &p);
    let mut sizes = std::collections::HashMap::new();
    for wire in all_formats(reg.clone()) {
        sizes.insert(wire.name(), wire.encode_vec(&rec).unwrap().len());
    }
    let xml = sizes["xml"];
    for (name, size) in &sizes {
        if *name != "xml" {
            assert!(xml > 2 * size, "xml ({xml}) should dwarf {name} ({size}); sizes: {sizes:?}");
        }
    }
}
