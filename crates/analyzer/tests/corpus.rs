//! Zero-false-positive guarantee: the analyzer must accept every plan the
//! existing schema fixture corpus produces — the Figure 3 proof-of-concept
//! formats, the Figure 6 Hydrology formats, the full Hydrology schema, and
//! the Figure 7 toolkit workload — across the whole machine matrix.

use openmeta_analyzer::{analyze_xmit, analyze_xml, verify, MACHINE_MATRIX};
use openmeta_bench::workloads::{figure3_cases, figure6_cases, figure7_cases};
use openmeta_hydrology::hydrology_schema_xml;
use openmeta_pbio::{ConvertPlan, EncodePlan, FormatRegistry};

#[test]
fn figure3_corpus_is_clean() {
    for case in figure3_cases() {
        let report = analyze_xml(&case.xml);
        assert!(report.diagnostics.is_empty(), "{}: {:#?}", case.name, report.diagnostics);
        assert!(report.encode_plans_checked >= MACHINE_MATRIX.len());
    }
}

#[test]
fn figure6_corpus_is_clean() {
    for case in figure6_cases() {
        let report = analyze_xml(&case.xml);
        assert!(report.diagnostics.is_empty(), "{}: {:#?}", case.name, report.diagnostics);
    }
}

#[test]
fn full_hydrology_schema_is_clean() {
    let report = analyze_xml(&hydrology_schema_xml());
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    // Every type × every machine model got an encode plan, and every
    // ordered machine pair a convert plan.
    assert!(report.formats_checked >= 4 * MACHINE_MATRIX.len());
    assert!(report.convert_plans_checked >= 4 * MACHINE_MATRIX.len() * (MACHINE_MATRIX.len() - 1));
}

#[test]
fn figure7_toolkit_bind_path_is_clean() {
    let (toolkit, _cases) = figure7_cases();
    let report = analyze_xmit(&toolkit);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert!(report.formats_checked >= 4);
}

/// The raw verifier, not just the pipeline, accepts every compiled-in
/// corpus plan — including cross-machine convert plans between every
/// matrix pair.
#[test]
fn raw_plans_from_compiled_specs_are_clean() {
    for case in figure3_cases().into_iter().chain(figure6_cases()) {
        let mut descs = Vec::new();
        for machine in MACHINE_MATRIX {
            let registry = FormatRegistry::new(machine);
            let mut last = None;
            for spec in &case.compiled {
                last = Some(registry.register(spec.clone()).expect("corpus registers"));
            }
            descs.push(last.expect("at least one spec"));
        }
        for d in &descs {
            let plan = EncodePlan::compile(d).expect("corpus compiles");
            let verdict = verify::verify_encode_plan(d, &plan);
            assert!(verdict.is_clean(), "{}: {:#?}", case.name, verdict.violations());
        }
        for from in &descs {
            for to in &descs {
                let plan = ConvertPlan::compile(from, to).expect("corpus converts");
                let verdict = verify::verify_convert_plan(from, to, &plan);
                assert!(verdict.is_clean(), "{}: {:#?}", case.name, verdict.violations());
            }
        }
    }
}

/// The registry plan-cache gate accepts the corpus too (debug builds run
/// the verifier on every cache miss).
#[test]
fn registry_gate_accepts_corpus() {
    for case in figure3_cases().into_iter().chain(figure6_cases()) {
        for machine in MACHINE_MATRIX {
            let registry = FormatRegistry::new(machine);
            let mut last = None;
            for spec in &case.compiled {
                last = Some(registry.register(spec.clone()).expect("corpus registers"));
            }
            let desc = last.expect("at least one spec");
            registry.encode_plan(&desc).expect("gate accepts encode plan");
            registry.convert_plan(&desc, &desc).expect("gate accepts convert plan");
        }
    }
}
