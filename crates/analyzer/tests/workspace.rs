//! The source-level engines, run against this workspace's own tree.
//!
//! These are the zero-false-positive guarantees: the lock-order graph
//! of the real crates is acyclic and no wire-derived integer reaches an
//! allocation unbounded.  `cargo xtask analyze` runs the same checks in
//! CI; this test keeps them honest from inside the test suite too.

use std::path::PathBuf;

use openmeta_analyzer::lockorder::{analyze_lock_order, LockOrderConfig};
use openmeta_analyzer::source::collect_workspace_sources;
use openmeta_analyzer::taint::analyze_taint;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

#[test]
fn workspace_lock_order_graph_is_acyclic() {
    let files = collect_workspace_sources(&repo_root()).expect("collect sources");
    assert!(!files.is_empty());
    let report = analyze_lock_order(&files, &LockOrderConfig::default());
    assert!(report.passed(), "lock-order violations in the workspace: {:?}", report.diagnostics);
    // Every `sync::lock`/`sync::wait` call site must be seen — the echo
    // fan-out alone has more than a dozen.
    assert!(report.lock_sites >= 40, "only {} lock sites found", report.lock_sites);
}

#[test]
fn workspace_has_no_unbounded_wire_allocations() {
    let files = collect_workspace_sources(&repo_root()).expect("collect sources");
    let report = analyze_taint(&files);
    assert!(report.passed(), "tainted allocations in the workspace: {:?}", report.diagnostics);
    assert!(report.taint_flows_checked >= 1, "no flows checked — sources not collected?");
}
