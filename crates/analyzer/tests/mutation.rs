//! Mutation testing for the verifier: corrupt a valid compiled plan in a
//! single structured way and assert the analyzer rejects the mutant.
//! Acceptance of the unmutated corpus is covered by `tests/corpus.rs`;
//! together they pin the verifier between false positives and false
//! negatives.

use openmeta_analyzer::verify::{verify_convert_program, verify_encode_program};
use openmeta_bench::workloads::{figure3_cases, figure6_cases};
use openmeta_pbio::plan::{ConvertProgram, EncodeProgram, PlanOp};
use openmeta_pbio::{ConvertPlan, EncodePlan, FormatDescriptor, FormatRegistry, MachineModel};
use proptest::prelude::*;
use std::sync::Arc;

/// Every corpus format resolved for the two most different machine models.
fn corpus_pairs() -> Vec<(Arc<FormatDescriptor>, Arc<FormatDescriptor>)> {
    let mut out = Vec::new();
    for case in figure3_cases().into_iter().chain(figure6_cases()) {
        let sparc = FormatRegistry::new(MachineModel::SPARC32);
        let x64 = FormatRegistry::new(MachineModel::X86_64);
        let mut a = None;
        let mut b = None;
        for spec in &case.compiled {
            a = Some(sparc.register(spec.clone()).expect("corpus registers"));
            b = Some(x64.register(spec.clone()).expect("corpus registers"));
        }
        out.push((a.expect("specs"), b.expect("specs")));
    }
    out
}

/// The structured single mutations the issue calls out, plus a few more.
#[derive(Debug, Clone, Copy)]
enum ConvertMutation {
    /// Shift one op's destination offset.
    ShiftDst(usize, u32),
    /// Shift one op's source offset.
    ShiftSrc(usize, u32),
    /// Drop one op entirely.
    DropOp(usize),
    /// Inflate a copy length / element count.
    Inflate(usize, u32),
    /// Give a swap a non-power-of-two width (misaligned primitive).
    BreakSwapWidth(usize),
    /// Retarget one var-length move.
    ShiftVarDst(usize, usize),
    /// Drop one var-length move.
    DropVar(usize),
    /// Drop one length fix.
    DropLenFix(usize),
    /// Point one length fix at the wrong offset.
    ShiftLenFix(usize, usize),
    /// Lie about the destination record size.
    ShrinkDstRecord,
}

/// Apply a mutation; returns `false` if it does not apply to this program
/// (e.g. no var ops to drop), in which case the case is vacuous.
fn apply_convert(prog: &mut ConvertProgram, m: ConvertMutation) -> bool {
    match m {
        ConvertMutation::ShiftDst(i, delta) => {
            let delta = delta.max(1);
            let Some(op) = nth_op(prog, i) else { return false };
            match op {
                PlanOp::Copy { dst, .. }
                | PlanOp::Swap { dst, .. }
                | PlanOp::Int { dst, .. }
                | PlanOp::Float { dst, .. } => *dst += delta,
            }
            true
        }
        ConvertMutation::ShiftSrc(i, delta) => {
            let delta = delta.max(1);
            let Some(op) = nth_op(prog, i) else { return false };
            match op {
                PlanOp::Copy { src, .. }
                | PlanOp::Swap { src, .. }
                | PlanOp::Int { src, .. }
                | PlanOp::Float { src, .. } => *src += delta,
            }
            true
        }
        ConvertMutation::DropOp(i) => {
            if prog.ops.is_empty() {
                return false;
            }
            let i = i % prog.ops.len();
            prog.ops.remove(i);
            true
        }
        ConvertMutation::Inflate(i, by) => {
            let by = by.max(1);
            let Some(op) = nth_op(prog, i) else { return false };
            match op {
                PlanOp::Copy { len, .. } => *len += by,
                PlanOp::Swap { count, .. }
                | PlanOp::Int { count, .. }
                | PlanOp::Float { count, .. } => *count += by,
            }
            true
        }
        ConvertMutation::BreakSwapWidth(i) => {
            let swaps: Vec<usize> = prog
                .ops
                .iter()
                .enumerate()
                .filter_map(|(j, op)| matches!(op, PlanOp::Swap { .. }).then_some(j))
                .collect();
            if swaps.is_empty() {
                return false;
            }
            let j = swaps[i % swaps.len()];
            if let PlanOp::Swap { width, .. } = &mut prog.ops[j] {
                *width = 3;
            }
            true
        }
        ConvertMutation::ShiftVarDst(i, delta) => {
            if prog.var_ops.is_empty() {
                return false;
            }
            let i = i % prog.var_ops.len();
            prog.var_ops[i].dst_off += delta.max(1);
            true
        }
        ConvertMutation::DropVar(i) => {
            if prog.var_ops.is_empty() {
                return false;
            }
            let i = i % prog.var_ops.len();
            prog.var_ops.remove(i);
            true
        }
        ConvertMutation::DropLenFix(i) => {
            if prog.len_fixes.is_empty() {
                return false;
            }
            let i = i % prog.len_fixes.len();
            prog.len_fixes.remove(i);
            true
        }
        ConvertMutation::ShiftLenFix(i, delta) => {
            if prog.len_fixes.is_empty() {
                return false;
            }
            let i = i % prog.len_fixes.len();
            prog.len_fixes[i].len_off += delta.max(1);
            true
        }
        ConvertMutation::ShrinkDstRecord => {
            if prog.dst_record_size == 0 {
                return false;
            }
            prog.dst_record_size -= 1;
            true
        }
    }
}

fn nth_op(prog: &mut ConvertProgram, i: usize) -> Option<&mut PlanOp> {
    if prog.ops.is_empty() {
        return None;
    }
    let i = i % prog.ops.len();
    prog.ops.get_mut(i)
}

fn mutation_from(selector: u8, i: usize, delta: u32) -> ConvertMutation {
    match selector % 10 {
        0 => ConvertMutation::ShiftDst(i, delta),
        1 => ConvertMutation::ShiftSrc(i, delta),
        2 => ConvertMutation::DropOp(i),
        3 => ConvertMutation::Inflate(i, delta),
        4 => ConvertMutation::BreakSwapWidth(i),
        5 => ConvertMutation::ShiftVarDst(i, delta as usize),
        6 => ConvertMutation::DropVar(i),
        7 => ConvertMutation::DropLenFix(i),
        8 => ConvertMutation::ShiftLenFix(i, delta as usize),
        _ => ConvertMutation::ShrinkDstRecord,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any single structured mutation of any corpus convert plan is
    /// rejected with at least one error.
    #[test]
    fn convert_mutants_rejected(case_idx in 0usize..7, selector in 0u8..250, i in 0usize..64, delta in 1u32..16) {
        let pairs = corpus_pairs();
        let (from, to) = &pairs[case_idx % pairs.len()];
        let clean = ConvertPlan::compile(from, to).expect("corpus compiles").program();
        let mut prog = clean.clone();
        let m = mutation_from(selector, i, delta);
        if apply_convert(&mut prog, m) {
            prop_assert!(prog != clean, "mutation {m:?} must change the program");
            let verdict = verify_convert_program(from, to, &prog);
            prop_assert!(
                verdict.has_errors(),
                "mutant survived: {m:?} on {}→{}",
                from.name,
                to.name
            );
        }
    }
}

/// Encode-program mutations: header corruption and slot-table damage.
#[derive(Debug, Clone, Copy)]
enum EncodeMutation {
    FlipHeaderByte(usize),
    DropSlot(usize),
    ShiftSlot(usize, usize),
    ShrinkRecord,
}

fn apply_encode(prog: &mut EncodeProgram, m: EncodeMutation) -> bool {
    match m {
        EncodeMutation::FlipHeaderByte(i) => {
            let i = i % prog.header.len();
            prog.header[i] ^= 0xff;
            true
        }
        EncodeMutation::DropSlot(i) => {
            if prog.slots.is_empty() {
                return false;
            }
            let i = i % prog.slots.len();
            prog.slots.remove(i);
            true
        }
        EncodeMutation::ShiftSlot(i, delta) => {
            if prog.slots.is_empty() {
                return false;
            }
            let i = i % prog.slots.len();
            prog.slots[i].off += delta.max(1);
            true
        }
        EncodeMutation::ShrinkRecord => {
            if prog.record_size == 0 {
                return false;
            }
            prog.record_size -= 1;
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_mutants_rejected(case_idx in 0usize..7, selector in 0u8..4, i in 0usize..64, delta in 1usize..16) {
        let pairs = corpus_pairs();
        let (desc, _) = &pairs[case_idx % pairs.len()];
        let clean = EncodePlan::compile(desc).expect("corpus compiles").program();
        let mut prog = clean.clone();
        let m = match selector {
            0 => EncodeMutation::FlipHeaderByte(i),
            1 => EncodeMutation::DropSlot(i),
            2 => EncodeMutation::ShiftSlot(i, delta),
            _ => EncodeMutation::ShrinkRecord,
        };
        if apply_encode(&mut prog, m) {
            prop_assert!(prog != clean);
            let verdict = verify_encode_program(desc, &prog);
            prop_assert!(verdict.has_errors(), "mutant survived: {m:?} on {}", desc.name);
        }
    }
}

/// A deterministic sweep: every op of every corpus convert plan, under
/// every offset/drop/inflate mutation, is rejected — 100% mutant kill,
/// not a sampled claim.
#[test]
fn exhaustive_per_op_mutants_rejected() {
    let mut mutants = 0usize;
    for (from, to) in corpus_pairs() {
        let clean = ConvertPlan::compile(&from, &to).expect("corpus compiles").program();
        let op_mutations = |i: usize| {
            [
                ConvertMutation::ShiftDst(i, 1),
                ConvertMutation::ShiftSrc(i, 1),
                ConvertMutation::DropOp(i),
                ConvertMutation::Inflate(i, 1),
            ]
        };
        for i in 0..clean.ops.len() {
            for m in op_mutations(i) {
                let mut prog = clean.clone();
                assert!(apply_convert(&mut prog, m));
                assert!(
                    verify_convert_program(&from, &to, &prog).has_errors(),
                    "mutant survived: {m:?} op {i} on {}→{}",
                    from.name,
                    to.name
                );
                mutants += 1;
            }
        }
        for i in 0..clean.var_ops.len() {
            for m in [ConvertMutation::ShiftVarDst(i, 1), ConvertMutation::DropVar(i)] {
                let mut prog = clean.clone();
                assert!(apply_convert(&mut prog, m));
                assert!(
                    verify_convert_program(&from, &to, &prog).has_errors(),
                    "mutant survived: {m:?} var {i} on {}→{}",
                    from.name,
                    to.name
                );
                mutants += 1;
            }
        }
        for i in 0..clean.len_fixes.len() {
            for m in [ConvertMutation::DropLenFix(i), ConvertMutation::ShiftLenFix(i, 1)] {
                let mut prog = clean.clone();
                assert!(apply_convert(&mut prog, m));
                assert!(
                    verify_convert_program(&from, &to, &prog).has_errors(),
                    "mutant survived: {m:?} fix {i} on {}→{}",
                    from.name,
                    to.name
                );
                mutants += 1;
            }
        }
    }
    // Coalescing keeps corpus programs short; the corpus still yields
    // dozens of distinct single mutations, every one of which must die.
    assert!(mutants >= 50, "corpus produced only {mutants} mutants");
}
