//! Wire-input taint lint: untrusted sizes must be bounded before they
//! size an allocation.
//!
//! A length prefix, header field, or chunk-size line is attacker data.
//! `Vec::with_capacity(len)` (or `resize`/`reserve`) with such a value
//! lets a peer pin near-arbitrary memory with a handful of header bytes
//! — the classic amplification this workspace closes with
//! [`openmeta_net::read_exact_capped`], which only grows the buffer as
//! payload bytes actually arrive.
//!
//! The lint is a per-function textual dataflow over the same
//! [`crate::source`] lines the lock-order engine uses:
//!
//! * **sources** taint a `let` binding whose initializer decodes an
//!   integer from wire bytes — `u32::from_be_bytes(..)`,
//!   `from_le_bytes`, `from_ne_bytes`, `usize::from_str_radix(..)`
//!   (chunked transfer encoding), `.parse::<usize>()`;
//! * **propagation** re-taints a binding whose initializer mentions a
//!   tainted one;
//! * **sanitizers** clear the taint: an explicit upper bound
//!   (`.min(..)`, `.clamp(..)`, or an ordering comparison ` < `/` > `/
//!   ` <= `/` >= ` against the value — equality tests like
//!   `if size == 0` deliberately do *not* count) or handing the value
//!   to `read_exact_capped`, whose growth discipline is audited once;
//! * **sinks** report: `with_capacity`, `.reserve(`, `.resize(`, or
//!   `vec![_; n]` sized by a still-tainted binding.
//!
//! Analysis is intra-procedural and line-oriented — deliberately so:
//! every real flow in this codebase decodes and allocates within one
//! function, and the narrow scope keeps the false-positive rate at
//! zero, which is what lets `cargo xtask analyze` hard-fail on any hit.

use openmeta_pbio::verify::{Severity, Violation};

use crate::diag::{ProtoReport, Stage};
use crate::source::{brace_delta, code_lines, SourceFile};

/// Initializer patterns that make an integer wire-controlled.
const SOURCES: &[&str] =
    &["from_be_bytes", "from_le_bytes", "from_ne_bytes", "from_str_radix", "parse::<usize>"];

/// Patterns that bound a tainted value on the line they appear.
const BOUNDS: &[&str] = &[".min(", ".clamp(", " < ", " > ", " <= ", " >= "];

/// The audited escape hatch: growth proportional to received bytes.
const SANCTIONED: &str = "read_exact_capped";

/// Allocation calls that take a size.
const SINKS: &[&str] = &["with_capacity(", ".reserve(", ".resize(", "vec!["];

/// Run the taint lint over the given sources.
pub fn analyze_taint(files: &[SourceFile]) -> ProtoReport {
    let mut report = ProtoReport::default();
    for file in files {
        lint_file(file, &mut report);
    }
    report
}

/// One tainted binding, live while brace depth stays at or above
/// `min_depth` (its enclosing block).
#[derive(Debug)]
struct Tainted {
    name: String,
    min_depth: i64,
    origin: String,
}

fn lint_file(file: &SourceFile, report: &mut ProtoReport) {
    let mut depth: i64 = 0;
    let mut tainted: Vec<Tainted> = Vec::new();
    // Reset at `fn` boundaries so taint never crosses functions.
    let mut fn_floor: i64 = 0;

    for (lineno, line) in code_lines(&file.text) {
        let at = format!("{}:{}", file.rel_path, lineno);
        let (opens, closes) = brace_delta(line);
        let depth_before = depth;
        depth += opens - closes;

        if line.contains("fn ") && line.contains('(') {
            tainted.clear();
            fn_floor = depth_before;
        }

        let names: Vec<String> = tainted.iter().map(|t| t.name.clone()).collect();
        let mentioned: Vec<&str> =
            names.iter().map(String::as_str).filter(|name| mentions_word(line, name)).collect();

        // Sinks first: `let n = u32::from_be_bytes(..); v.resize(n, 0)`
        // on one line must still report.
        if !mentioned.is_empty() && SINKS.iter().any(|s| line.contains(s)) {
            let bounded = BOUNDS.iter().any(|b| line.contains(b)) || line.contains(SANCTIONED);
            if !bounded {
                for name in &mentioned {
                    report.taint_flows_checked += 1;
                    let origin = tainted
                        .iter()
                        .find(|t| t.name == **name)
                        .map(|t| t.origin.clone())
                        .unwrap_or_default();
                    report.push(
                        Stage::Taint,
                        format!("{}::{name}", file.crate_name),
                        at.clone(),
                        Violation {
                            check: "unbounded-wire-alloc",
                            severity: Severity::Error,
                            detail: format!(
                                "allocation sized by `{name}` (wire-derived at {origin}) \
                                 without a bound: clamp it or use read_exact_capped"
                            ),
                        },
                    );
                }
            } else {
                report.taint_flows_checked += mentioned.len();
            }
        }

        // Sanitizers: a bound or the sanctioned reader clears every
        // binding they mention.
        if BOUNDS.iter().any(|b| line.contains(b)) || line.contains(SANCTIONED) {
            tainted.retain(|t| !mentions_word(line, &t.name));
        }

        // New bindings: source taints, tainted-mention propagates, and
        // a clean re-binding shadows the old taint away.
        if let Some(name) = let_binding_name(line) {
            let rhs = line.split_once('=').map(|(_, r)| r).unwrap_or("");
            let from_source = SOURCES.iter().any(|s| rhs.contains(s));
            let from_tainted =
                tainted.iter().any(|t| t.name != name && mentions_word(rhs, &t.name));
            tainted.retain(|t| t.name != name);
            if from_source || from_tainted {
                tainted.push(Tainted {
                    name,
                    min_depth: depth_before.max(fn_floor),
                    origin: at.clone(),
                });
            }
        }

        tainted.retain(|t| depth >= t.min_depth);
    }
}

/// `let [mut] NAME` on this line, if any.
fn let_binding_name(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if name.is_empty() || !line.contains('=') {
        None
    } else {
        Some(name)
    }
}

/// Does `text` contain `word` with identifier boundaries on both sides?
fn mentions_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut start = 0usize;
    while let Some(idx) = text[start..].find(word) {
        let abs = start + idx;
        let before_ok = abs == 0 || {
            let b = bytes[abs - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = abs + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = abs + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> ProtoReport {
        analyze_taint(&[SourceFile {
            crate_name: "demo".to_string(),
            rel_path: "crates/demo/src/lib.rs".to_string(),
            text: text.to_string(),
        }])
    }

    #[test]
    fn unbounded_wire_length_into_vec_is_flagged() {
        let report = run(
            "fn recv(&mut self) {\n    let len = u32::from_be_bytes(hdr) as usize;\n    let mut body = vec![0u8; len];\n}\n",
        );
        assert!(!report.passed());
        assert_eq!(report.diagnostics[0].violation.check, "unbounded-wire-alloc");
    }

    #[test]
    fn min_bound_on_the_sink_line_is_clean() {
        let report = run(
            "fn recv(&mut self) {\n    let n = u16::from_be_bytes(hdr) as usize;\n    let keep = Vec::with_capacity(n.min(256));\n}\n",
        );
        assert!(report.passed(), "{:?}", report.diagnostics);
        assert_eq!(report.taint_flows_checked, 1);
    }

    #[test]
    fn ordering_comparison_sanitizes_but_equality_does_not() {
        let checked = run(
            "fn recv(&mut self) {\n    let len = u32::from_be_bytes(hdr) as usize;\n    if len > MAX {\n        return;\n    }\n    let mut body = vec![0u8; len];\n}\n",
        );
        assert!(checked.passed(), "{:?}", checked.diagnostics);

        let eq_only = run(
            "fn recv(&mut self) {\n    let size = usize::from_str_radix(s, 16)?;\n    if size == 0 {\n        return;\n    }\n    body.resize(size, 0);\n}\n",
        );
        assert!(!eq_only.passed(), "== is not an upper bound");
    }

    #[test]
    fn read_exact_capped_is_the_sanctioned_path() {
        let report = run(
            "fn recv(&mut self) {\n    let len = u32::from_be_bytes(hdr) as usize;\n    let payload = read_exact_capped(&mut src, len)?;\n}\n",
        );
        assert!(report.passed(), "{:?}", report.diagnostics);
    }

    #[test]
    fn propagation_through_rebinding_is_tracked() {
        let report = run(
            "fn recv(&mut self) {\n    let raw = u32::from_be_bytes(hdr);\n    let total = raw as usize + 8;\n    out.reserve(total);\n}\n",
        );
        assert!(!report.passed(), "taint must flow raw → total");
    }

    #[test]
    fn taint_does_not_cross_functions() {
        let report = run(
            "fn decode(&mut self) {\n    let len = u32::from_be_bytes(hdr) as usize;\n}\nfn alloc(&mut self, len: usize) {\n    let v = vec![0u8; len];\n}\n",
        );
        assert!(report.passed(), "{:?}", report.diagnostics);
    }
}
