//! Lock-order (may-hold-while-acquiring) graph analysis.
//!
//! Every blocking lock acquisition in the workspace goes through the
//! shared helpers in `openmeta_obs::sync` — `sync::lock`, `sync::wait`,
//! `sync::wait_timeout` — which is a deliberate design decision: one
//! set of entry points means a source-level analyzer can see every
//! acquisition.  This engine extracts those sites from `crates/*/src`,
//! tracks guard liveness (let-bound guards die at `drop(g)` or at the
//! end of their block; `for x in sync::lock(..)` temporaries live for
//! the loop body; other inline uses are instantaneous), and builds a
//! **may-hold-while-acquiring graph**: an edge `A → B` means some code
//! path acquires lock class `B` while holding class `A`.  A cycle in
//! that graph is a potential deadlock and fails the analysis.
//!
//! Three approximations, all conservative in the directions that
//! matter:
//!
//! * lock *classes* are `crate::field` names — two instances of one
//!   field unify (may over-report, never under-report an ordering);
//! * **call edges**: while a guard is held, a call to a same-crate
//!   function that (transitively) acquires locks contributes edges to
//!   everything it acquires — this is what checks comments like
//!   `Seat::kill`'s "must not be called with the state lock held";
//! * `sync::wait`/`sync::wait_timeout` *re*-acquire the guard they are
//!   given, so they add no edge — but waiting while holding any *other*
//!   lock blocks that lock for the whole wait and is flagged directly
//!   (`wait-while-holding`).
//!
//! Audited edges can be allowlisted via [`LockOrderConfig]`; the
//! workspace currently needs none.

use std::collections::{BTreeMap, BTreeSet};

use openmeta_pbio::verify::{Severity, Violation};

use crate::diag::{ProtoReport, Stage};
use crate::source::{brace_delta, code_lines, SourceFile};

/// Configuration for the lock-order engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockOrderConfig {
    /// Audited `(held, acquired)` class pairs excluded from the graph.
    /// Empty for this workspace — prefer fixing the order to
    /// allowlisting it.
    pub allowed_edges: &'static [(&'static str, &'static str)],
}

/// One lock-acquisition site.
#[derive(Debug, Clone)]
struct Site {
    class: String,
    at: String,
}

/// A live guard while scanning a function body.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name; `"<temp>"` for `for`-loop temporaries.
    name: String,
    class: String,
    /// The guard dies when brace depth drops below this.
    min_depth: i64,
}

/// An edge observed directly or recorded for call-graph resolution.
#[derive(Debug, Clone)]
struct PendingCall {
    held: Vec<Site>,
    crate_name: String,
    callee: String,
    at: String,
}

#[derive(Debug, Default)]
struct Extraction {
    sites: usize,
    /// Direct `held → acquired` edges with provenance.
    edges: Vec<(String, String, String)>,
    /// Lock classes each function acquires directly.
    fn_direct: BTreeMap<(String, String), BTreeSet<String>>,
    /// Same-crate call tokens per function (for the transitive pass).
    fn_calls: BTreeMap<(String, String), BTreeSet<String>>,
    /// Calls made while holding locks, resolved after all files.
    pending_calls: Vec<PendingCall>,
    /// `wait-while-holding` violations, found inline.
    violations: Vec<(String, Violation)>,
}

/// Run the engine over the given sources.
pub fn analyze_lock_order(files: &[SourceFile], cfg: &LockOrderConfig) -> ProtoReport {
    let mut ex = Extraction::default();
    for file in files {
        extract_file(file, &mut ex);
    }
    resolve(ex, cfg)
}

fn resolve(ex: Extraction, cfg: &LockOrderConfig) -> ProtoReport {
    let mut report = ProtoReport { lock_sites: ex.sites, ..ProtoReport::default() };

    // Transitive closure: what does each function acquire, directly or
    // through same-crate calls?
    let mut effective = ex.fn_direct.clone();
    loop {
        let mut changed = false;
        for (key, calls) in &ex.fn_calls {
            let mut add = BTreeSet::new();
            for callee in calls {
                let callee_key = (key.0.clone(), callee.clone());
                if callee_key == *key {
                    continue;
                }
                if let Some(classes) = effective.get(&callee_key) {
                    add.extend(classes.iter().cloned());
                }
            }
            let entry = effective.entry(key.clone()).or_default();
            for class in add {
                changed |= entry.insert(class);
            }
        }
        if !changed {
            break;
        }
    }

    // Direct edges plus call edges.
    let mut edges = ex.edges;
    for call in &ex.pending_calls {
        let key = (call.crate_name.clone(), call.callee.clone());
        let Some(classes) = effective.get(&key) else { continue };
        for class in classes {
            for held in &call.held {
                edges.push((
                    held.class.clone(),
                    class.clone(),
                    format!(
                        "{} (call to `{}` acquiring {class}; held from {})",
                        call.at, call.callee, held.at
                    ),
                ));
            }
        }
    }

    // Graph assembly, minus the allowlist and self-free edges.
    let mut graph: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for (held, acquired, at) in edges {
        if held == acquired {
            report.push(
                Stage::LockOrder,
                held.clone(),
                at.clone(),
                Violation {
                    check: "self-deadlock",
                    severity: Severity::Error,
                    detail: format!("lock class `{held}` acquired while already held at {at}"),
                },
            );
            continue;
        }
        if cfg.allowed_edges.iter().any(|(h, a)| *h == held && *a == acquired) {
            continue;
        }
        graph.entry(held.clone()).or_default().entry(acquired).or_insert(at);
        graph.entry_or_node(&held);
    }

    for cycle in find_cycles(&graph) {
        let mut hops = Vec::new();
        for pair in cycle.windows(2) {
            let at = graph.get(&pair[0]).and_then(|m| m.get(&pair[1])).cloned().unwrap_or_default();
            hops.push(format!("{} → {} at {}", pair[0], pair[1], at));
        }
        report.push(
            Stage::LockOrder,
            cycle.join(" → "),
            hops.join("; "),
            Violation {
                check: "lock-cycle",
                severity: Severity::Error,
                detail: format!(
                    "lock classes form a may-hold-while-acquiring cycle: {}",
                    cycle.join(" → ")
                ),
            },
        );
    }

    for (at, violation) in ex.violations {
        report.push(Stage::LockOrder, at.clone(), at, violation);
    }
    report
}

/// Small helper so isolated nodes still appear in the graph.
trait EntryOrNode {
    fn entry_or_node(&mut self, node: &str);
}

impl EntryOrNode for BTreeMap<String, BTreeMap<String, String>> {
    fn entry_or_node(&mut self, node: &str) {
        if !self.contains_key(node) {
            self.insert(node.to_string(), BTreeMap::new());
        }
    }
}

/// Distinct cycles as closed paths (`[a, b, a]`), deduplicated by the
/// set of classes involved.
fn find_cycles(graph: &BTreeMap<String, BTreeMap<String, String>>) -> Vec<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&str, Color> =
        graph.keys().map(|k| (k.as_str(), Color::White)).collect();
    let mut cycles = Vec::new();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();

    fn dfs<'a>(
        node: &'a str,
        graph: &'a BTreeMap<String, BTreeMap<String, String>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
        cycles: &mut Vec<Vec<String>>,
        seen: &mut BTreeSet<Vec<String>>,
    ) {
        color.insert(node, Color::Gray);
        stack.push(node);
        if let Some(next) = graph.get(node) {
            for succ in next.keys() {
                match color.get(succ.as_str()).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = stack.iter().position(|n| *n == succ).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        cycle.push(succ.clone());
                        let mut key: Vec<String> = cycle[..cycle.len() - 1].to_vec();
                        key.sort();
                        if seen.insert(key) {
                            cycles.push(cycle);
                        }
                    }
                    Color::White => dfs(succ, graph, color, stack, cycles, seen),
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
    }

    let nodes: Vec<&str> = graph.keys().map(String::as_str).collect();
    for node in nodes {
        if color.get(node).copied() == Some(Color::White) {
            let mut stack = Vec::new();
            dfs(node, graph, &mut color, &mut stack, &mut cycles, &mut seen);
        }
    }
    cycles
}

// ---------------------------------------------------------- extraction

fn extract_file(file: &SourceFile, ex: &mut Extraction) {
    let mut depth: i64 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // Stack of (fn name, body depth); the innermost entry is the
    // current function.
    let mut fns: Vec<(String, i64)> = Vec::new();
    let mut pending_fn: Option<String> = None;

    for (lineno, line) in code_lines(&file.text) {
        let at = format!("{}:{}", file.rel_path, lineno);
        let (opens, closes) = brace_delta(line);
        let depth_before = depth;
        depth += opens - closes;

        // Function tracking.
        if let Some(name) = fn_decl_name(line) {
            if line.contains('{') {
                fns.push((name, depth_before + 1));
            } else if line.trim_end().ends_with(';') {
                // Trait method signature — no body.
            } else {
                pending_fn = Some(name);
            }
        } else if let Some(name) = pending_fn.take() {
            if opens > 0 {
                fns.push((name, depth_before + 1));
            } else if !line.trim_end().ends_with(';') {
                pending_fn = Some(name);
            }
        }
        let current_fn = fns.last().map(|(n, _)| n.clone()).unwrap_or_default();
        let fn_key = (file.crate_name.clone(), current_fn.clone());

        // Guard deaths: drop(name) and end-of-block.
        if let Some(dropped) = drop_target(line) {
            guards.retain(|g| g.name != dropped);
        }

        // Wait sites: re-acquisition of an existing guard's lock.
        if let Some(waited) = wait_guard_name(line) {
            ex.sites += 1;
            for g in &guards {
                if g.name != waited {
                    ex.violations.push((
                        at.clone(),
                        Violation {
                            check: "wait-while-holding",
                            severity: Severity::Error,
                            detail: format!(
                                "condvar wait on guard `{waited}` while also holding `{}` \
                                 ({}): the held lock is blocked for the whole wait",
                                g.name, g.class
                            ),
                        },
                    ));
                }
            }
        } else if let Some(arg) = call_arg(line, "sync::lock(") {
            ex.sites += 1;
            let class = format!("{}::{}", file.crate_name, last_segment(&arg));
            for g in &guards {
                ex.edges.push((g.class.clone(), class.clone(), at.clone()));
            }
            ex.fn_direct.entry(fn_key.clone()).or_default().insert(class.clone());
            // Guard liveness: let-bound, for-loop temporary, or
            // instantaneous.
            let trimmed = lstrip_label(line.trim_start());
            if let Some(name) = let_binding_of_bare_lock(trimmed) {
                guards.push(Guard { name, class, min_depth: depth_before });
            } else if trimmed.starts_with("for ") || trimmed.contains(" for ") {
                guards.push(Guard {
                    name: "<temp>".to_string(),
                    class,
                    min_depth: depth_before + 1,
                });
            }
        }

        // Calls made while holding a lock, for the call-edge pass.
        if !guards.is_empty() && !line.contains("sync::lock(") {
            for callee in call_tokens(line) {
                ex.pending_calls.push(PendingCall {
                    held: guards
                        .iter()
                        .map(|g| Site { class: g.class.clone(), at: at.clone() })
                        .collect(),
                    crate_name: file.crate_name.clone(),
                    callee,
                    at: at.clone(),
                });
            }
        }
        // Record all calls for the transitive-closure pass.
        if !current_fn.is_empty() {
            let entry = ex.fn_calls.entry(fn_key).or_default();
            for callee in call_tokens(line) {
                entry.insert(callee);
            }
        }

        // End-of-block deaths.
        guards.retain(|g| depth >= g.min_depth);
        while fns.last().is_some_and(|(_, d)| depth < *d) {
            fns.pop();
        }
    }
}

/// `fn name` on a declaration line, if any.
fn fn_decl_name(line: &str) -> Option<String> {
    let idx = line.find("fn ")?;
    // Require a word boundary before `fn` (start, space, or `(` for
    // higher-order types is fine to reject).
    if idx > 0 && !line.as_bytes()[idx - 1].is_ascii_whitespace() {
        return None;
    }
    let rest = &line[idx + 3..];
    let name: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `drop(name)` with a plain identifier argument.
fn drop_target(line: &str) -> Option<String> {
    let idx = line.find("drop(")?;
    let rest = &line[idx + 5..];
    let end = rest.find(')')?;
    let arg = rest[..end].trim();
    if !arg.is_empty() && arg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Some(arg.to_string())
    } else {
        None
    }
}

/// The guard identifier passed to `sync::wait(` / `sync::wait_timeout(`.
fn wait_guard_name(line: &str) -> Option<String> {
    let call = if line.contains("sync::wait_timeout(") {
        call_arg(line, "sync::wait_timeout(")
    } else if line.contains("sync::wait(") {
        call_arg(line, "sync::wait(")
    } else {
        None
    }?;
    let second = call.split(',').nth(1)?.trim().to_string();
    if second.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !second.is_empty() {
        Some(second)
    } else {
        None
    }
}

/// The argument text of `prefix(...)` on this line, up to the matching
/// close paren (line-local: every call site in this workspace fits).
fn call_arg(line: &str, prefix: &str) -> Option<String> {
    let idx = line.find(prefix)?;
    let rest = &line[idx + prefix.len()..];
    let mut depth = 1i32;
    let mut out = String::new();
    for c in rest.chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(out);
                }
            }
            _ => {}
        }
        out.push(c);
    }
    Some(out)
}

/// Normalize a lock argument to its lock-class field name:
/// `&self.shared.queue` → `queue`, `writers` → `writers`.
fn last_segment(arg: &str) -> String {
    let arg =
        arg.trim().trim_start_matches("&mut ").trim_start_matches('&').trim_start_matches('*');
    let arg = arg.split(',').next().unwrap_or(arg).trim();
    let last = arg.rsplit(['.', ':']).next().unwrap_or(arg);
    last.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect()
}

/// Strip a leading `'label:` (loop labels) so `for` detection works.
fn lstrip_label(trimmed: &str) -> &str {
    if let Some(rest) = trimmed.strip_prefix('\'') {
        if let Some(colon) = rest.find(':') {
            return rest[colon + 1..].trim_start();
        }
    }
    trimmed
}

/// `let [mut] NAME[: ty] = sync::lock(...);` where the RHS is the bare
/// lock call (a trailing method call like `.clone()` means the guard is
/// a temporary, not a binding).
fn let_binding_of_bare_lock(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        return None;
    }
    // Whatever follows the closing paren of sync::lock(...) decides:
    // `;` → guard binding; anything else → temporary.
    let lock_idx = trimmed.find("sync::lock(")?;
    let after = &trimmed[lock_idx + "sync::lock(".len()..];
    let mut depth = 1i32;
    for (i, c) in after.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return if after[i + 1..].trim_start().starts_with(';') {
                        Some(name)
                    } else {
                        None
                    };
                }
            }
            _ => {}
        }
    }
    None
}

/// Call tokens on a line that can plausibly resolve to a same-crate
/// function: bare calls (`helper(..)`), `self.method(..)`, and
/// `Self::method(..)`.  Method calls on arbitrary receivers are
/// excluded on purpose — name-based resolution cannot tell `Vec::push`
/// from a crate's own `fn push`, and those collisions were exactly the
/// false positives the calibration run produced.  Keywords and macro
/// invocations are skipped.
fn call_tokens(line: &str) -> Vec<String> {
    const KEYWORDS: &[&str] = &[
        "if", "while", "for", "match", "fn", "return", "loop", "let", "move", "drop", "Some", "Ok",
        "Err", "None",
    ];
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &line[start..i];
            let receiver_ok = if start > 0 && bytes[start - 1] == b'.' {
                line[..start - 1].ends_with("self") && !line[..start - 1].ends_with("_self")
            } else if start > 1 && &bytes[start - 2..start] == b"::" {
                line[..start - 2].ends_with("Self")
            } else {
                start == 0 || bytes[start - 1] != b':'
            };
            if i < bytes.len()
                && bytes[i] == b'('
                && receiver_ok
                && !KEYWORDS.contains(&word)
                && !word.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            {
                out.push(word.to_string());
            }
            // Skip macro bangs (`format!(`).
            if i < bytes.len() && bytes[i] == b'!' {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            text: text.to_string(),
        }
    }

    fn run(text: &str) -> ProtoReport {
        analyze_lock_order(&[file("demo", text)], &LockOrderConfig::default())
    }

    #[test]
    fn consistent_order_passes() {
        let report = run(
            "fn a(&self) {\n    let g = sync::lock(&self.alpha);\n    let h = sync::lock(&self.beta);\n}\n\
             fn b(&self) {\n    let g = sync::lock(&self.alpha);\n    let h = sync::lock(&self.beta);\n}\n",
        );
        assert!(report.passed(), "{:?}", report.diagnostics);
        assert_eq!(report.lock_sites, 4);
    }

    #[test]
    fn inverted_pair_is_a_cycle() {
        let report = run(
            "fn a(&self) {\n    let g = sync::lock(&self.alpha);\n    let h = sync::lock(&self.beta);\n}\n\
             fn b(&self) {\n    let g = sync::lock(&self.beta);\n    let h = sync::lock(&self.alpha);\n}\n",
        );
        assert!(!report.passed());
        assert!(report.diagnostics.iter().any(|d| d.violation.check == "lock-cycle"));
    }

    #[test]
    fn drop_releases_the_guard() {
        // Mirrors `Seat::kill`: state is dropped before stream is taken,
        // and kill is then called from a context holding neither.
        let report = run(
            "fn kill(&self) {\n    let mut st = sync::lock(&self.state);\n    st.clear();\n    drop(st);\n    let _ = sync::lock(&self.stream);\n}\n\
             fn other(&self) {\n    let s = sync::lock(&self.stream);\n    let t = sync::lock(&self.state);\n}\n",
        );
        // Without drop tracking this would be state→stream plus
        // stream→state — a cycle.
        assert!(report.passed(), "{:?}", report.diagnostics);
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let report = run(
            "fn f(&self) {\n    let x = {\n        let g = sync::lock(&self.alpha);\n        g.len()\n    };\n    let h = sync::lock(&self.beta);\n}\n\
             fn g(&self) {\n    let g = sync::lock(&self.beta);\n    let h = sync::lock(&self.alpha);\n}\n",
        );
        assert!(report.passed(), "{:?}", report.diagnostics);
    }

    #[test]
    fn for_loop_temporary_holds_for_the_body() {
        let report = run(
            "fn f(&self) {\n    for x in sync::lock(&self.alpha).iter() {\n        let g = sync::lock(&self.beta);\n    }\n}\n\
             fn g(&self) {\n    let g = sync::lock(&self.beta);\n    let h = sync::lock(&self.alpha);\n}\n",
        );
        assert!(!report.passed(), "for-loop guard must be held for the body");
    }

    #[test]
    fn call_edges_are_transitive() {
        let report = run(
            "fn outer(&self) {\n    let g = sync::lock(&self.alpha);\n    self.middle();\n}\n\
             fn middle(&self) {\n    self.inner();\n}\n\
             fn inner(&self) {\n    let g = sync::lock(&self.beta);\n}\n\
             fn elsewhere(&self) {\n    let g = sync::lock(&self.beta);\n    let h = sync::lock(&self.alpha);\n}\n",
        );
        assert!(!report.passed(), "alpha→beta via two call hops plus beta→alpha must cycle");
        assert!(report.diagnostics.iter().any(|d| d.violation.check == "lock-cycle"));
    }

    #[test]
    fn self_reacquisition_is_flagged() {
        let report = run("fn f(&self) {\n    let g = sync::lock(&self.alpha);\n    self.g();\n}\n\
             fn g(&self) {\n    let g = sync::lock(&self.alpha);\n}\n");
        assert!(report.diagnostics.iter().any(|d| d.violation.check == "self-deadlock"));
    }

    #[test]
    fn wait_while_holding_another_lock_is_flagged() {
        let report = run(
            "fn f(&self) {\n    let other = sync::lock(&self.alpha);\n    let mut st = sync::lock(&self.beta);\n    st = sync::wait(&self.cv, st);\n}\n",
        );
        assert!(report.diagnostics.iter().any(|d| d.violation.check == "wait-while-holding"));
    }

    #[test]
    fn wait_on_the_only_held_guard_is_fine() {
        let report = run(
            "fn f(&self) {\n    let mut st = sync::lock(&self.beta);\n    st = sync::wait(&self.cv, st);\n    let _ = sync::wait_timeout(&self.cv, st, timeout);\n}\n",
        );
        assert!(report.passed(), "{:?}", report.diagnostics);
    }

    #[test]
    fn allowlisted_edge_breaks_the_cycle() {
        static ALLOW: &[(&str, &str)] = &[("demo::beta", "demo::alpha")];
        let src = "fn a(&self) {\n    let g = sync::lock(&self.alpha);\n    let h = sync::lock(&self.beta);\n}\n\
                   fn b(&self) {\n    let g = sync::lock(&self.beta);\n    let h = sync::lock(&self.alpha);\n}\n";
        let report =
            analyze_lock_order(&[file("demo", src)], &LockOrderConfig { allowed_edges: ALLOW });
        assert!(report.passed(), "{:?}", report.diagnostics);
    }
}
