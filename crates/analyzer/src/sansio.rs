//! Exhaustive sans-io protocol exploration.
//!
//! The workspace's wire protocols are all built as *sans-io* state
//! machines — push bytes in whatever fragments arrive, poll for
//! complete messages — precisely so their behavior is a pure function
//! of the byte stream, not of delivery timing.  This module turns that
//! design decision into a checked property: a bounded-depth model
//! checker drives each machine through **every** chunking schedule of
//! each scenario stream (all `2^(n-1)` split points for streams up to
//! [`ExplorerConfig::exhaustive_len`] bytes, a structured reduced set
//! beyond) and asserts four invariants on every run:
//!
//! * **split-invariance** — the sequence of emitted messages and the
//!   terminal error (if any) are identical to the whole-stream
//!   reference run, for every schedule;
//! * **no-panic** — no schedule panics the machine;
//! * **bounded buffering** — while the machine is still parsing, its
//!   retained bytes never exceed the target's declared cap (truncation
//!   is covered implicitly: every step of every schedule *is* a
//!   truncated stream, and the invariants hold at each step);
//! * **progress** — a machine that is not finished and has no output
//!   or error pending never reports `bytes_needed() == 0` (no stuck
//!   states).
//!
//! Scenario streams carry expected outcomes where the builder knows
//! them (valid frames, known-garbage headers), so semantic breakage —
//! not just inconsistency — is caught.  The [`mutants`] corpus is the
//! engine's own regression suite: deliberately broken parser variants
//! (off-by-one length handling, unbounded accumulation, chunk-local
//! header scanning) that the explorer must reject at 100%.

use std::panic::{catch_unwind, AssertUnwindSafe};

use openmeta_echo::wire::{FRAME_RECORD, FRAME_SUBSCRIBE, FRAME_SUB_ERR, FRAME_SUB_OK};
use openmeta_echo::{HandshakeClient, HandshakeReply, HandshakeServer, SubscribeRequest};
use openmeta_net::LengthFramer;
use openmeta_ohttp::{Request, RequestParser};
use openmeta_pbio::verify::{Severity, Violation};
use openmeta_pbio::{FormatId, FormatRegistry, FormatSpec, IOField, MachineModel as PbioMachine};
use xmit::negotiate::{
    Accept, AcceptEntry, Hello, NegotiateInitiator, NegotiateReply, NegotiateResponder,
    PairVerdict, FRAME_ACCEPT, FRAME_HELLO, FRAME_REJECT,
};

use crate::diag::{ProtoReport, Stage};

/// Bounds for the schedule enumerator.
#[derive(Debug, Clone, Copy)]
pub struct ExplorerConfig {
    /// Streams up to this many bytes are explored under **all**
    /// `2^(len-1)` chunkings; longer streams get the reduced set
    /// (whole, byte-at-a-time, every 2-chunk and 3-chunk split).
    pub exhaustive_len: usize,
}

impl Default for ExplorerConfig {
    fn default() -> ExplorerConfig {
        ExplorerConfig { exhaustive_len: 12 }
    }
}

/// A sans-io protocol machine under test, adapted to a canonical
/// push/drain surface so one driver can explore every protocol core.
pub trait Machine {
    /// Append newly received bytes.
    fn push(&mut self, bytes: &[u8]);
    /// Drain every message currently decodable, as canonical display
    /// strings, plus the terminal error if one occurred.
    fn drain(&mut self) -> (Vec<String>, Option<String>);
    /// Bytes retained but not yet consumed by an emitted message.
    fn buffered(&self) -> usize;
    /// Bytes still needed before the next message can be emitted
    /// (0 must mean "a message or error is available right now").
    fn bytes_needed(&self) -> usize;
    /// The machine has completed its protocol role (retained bytes now
    /// belong to the next stage, e.g. delivery frames behind `SUB_OK`).
    fn finished(&self) -> bool {
        false
    }
}

/// Expected whole-stream outcome of a scenario, when the builder knows
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Canonical messages, in order.
    pub outputs: Vec<String>,
    /// The stream must end in a protocol error.
    pub error: bool,
}

/// One input stream to explore.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable label used in diagnostics.
    pub label: &'static str,
    /// The byte stream.
    pub bytes: Vec<u8>,
    /// Ground-truth outcome, if known.
    pub expect: Option<Expectation>,
}

/// One protocol core plus its scenario corpus.
pub struct Target {
    /// Stable name used in diagnostics (`subject` field).
    pub name: &'static str,
    /// Retained-byte bound enforced while the machine is parsing.
    pub cap: usize,
    /// Fresh-machine factory (one machine per schedule run).
    pub make: Box<dyn Fn() -> Box<dyn Machine>>,
    /// Streams to explore.
    pub scenarios: Vec<Scenario>,
}

// ------------------------------------------------------------ driver

#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    outputs: Vec<String>,
    error: Option<String>,
}

/// Run one schedule to completion, checking per-step invariants.
/// `Err` is an invariant violation; `Ok` is the observed outcome.
fn run_schedule(target: &Target, bytes: &[u8], schedule: &[usize]) -> Result<Outcome, Violation> {
    let run = || -> Result<Outcome, Violation> {
        let mut m = (target.make)();
        let mut outcome = Outcome { outputs: Vec::new(), error: None };
        let mut offset = 0usize;
        // Step 0 is the fresh machine; each subsequent step delivers one
        // chunk.  The checks after every step make truncation a free
        // byproduct: stopping the stream here must leave a sane machine.
        for step in 0..=schedule.len() {
            if step > 0 {
                let chunk = schedule[step - 1];
                m.push(&bytes[offset..offset + chunk]);
                offset += chunk;
            }
            let (outputs, error) = m.drain();
            outcome.outputs.extend(outputs);
            if let Some(e) = error {
                outcome.error = Some(e);
                return Ok(outcome);
            }
            if !m.finished() {
                if m.buffered() > target.cap {
                    return Err(Violation {
                        check: "bounded-buffer",
                        severity: Severity::Error,
                        detail: format!(
                            "step {step}: {} bytes retained exceeds cap {}",
                            m.buffered(),
                            target.cap
                        ),
                    });
                }
                if m.bytes_needed() == 0 {
                    return Err(Violation {
                        check: "progress",
                        severity: Severity::Error,
                        detail: format!(
                            "step {step}: bytes_needed()==0 with no output, no error, not finished"
                        ),
                    });
                }
            }
        }
        Ok(outcome)
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Violation { check: "no-panic", severity: Severity::Error, detail: msg })
        }
    }
}

/// Every chunking schedule for a stream of `len` bytes, within bounds.
fn schedules(len: usize, cfg: &ExplorerConfig) -> Vec<Vec<usize>> {
    if len == 0 {
        return vec![Vec::new()];
    }
    if len <= cfg.exhaustive_len {
        // Each bit of `mask` is a cut point between byte i and i+1.
        let mut out = Vec::with_capacity(1 << (len - 1));
        for mask in 0u64..(1u64 << (len - 1)) {
            let mut chunks = Vec::new();
            let mut run = 1usize;
            for bit in 0..len - 1 {
                if mask & (1 << bit) != 0 {
                    chunks.push(run);
                    run = 1;
                } else {
                    run += 1;
                }
            }
            chunks.push(run);
            out.push(chunks);
        }
        return out;
    }
    // Reduced set: whole, byte-at-a-time, every 2-chunk split, every
    // 3-chunk split.
    let mut out = vec![vec![len], vec![1; len]];
    for cut in 1..len {
        out.push(vec![cut, len - cut]);
    }
    for a in 1..len - 1 {
        for b in a + 1..len {
            out.push(vec![a, b - a, len - b]);
        }
    }
    out
}

/// Explore one target, appending diagnostics and counters to `report`.
pub fn explore_target(target: &Target, cfg: &ExplorerConfig, report: &mut ProtoReport) {
    report.machines_checked += 1;
    for scenario in &target.scenarios {
        let context = |sched: &str| format!("{}::{} {}", target.name, scenario.label, sched);
        let whole: Vec<usize> =
            if scenario.bytes.is_empty() { Vec::new() } else { vec![scenario.bytes.len()] };
        report.schedules_run += 1;
        let reference = match run_schedule(target, &scenario.bytes, &whole) {
            Ok(outcome) => outcome,
            Err(violation) => {
                report.push(Stage::SansIo, target.name, context("[whole]"), violation);
                continue;
            }
        };
        if let Some(expect) = &scenario.expect {
            if expect.outputs != reference.outputs || expect.error != reference.error.is_some() {
                report.push(
                    Stage::SansIo,
                    target.name,
                    context("[whole]"),
                    Violation {
                        check: "expected-outcome",
                        severity: Severity::Error,
                        detail: format!(
                            "expected outputs {:?} (error: {}), got {:?} (error: {:?})",
                            expect.outputs, expect.error, reference.outputs, reference.error
                        ),
                    },
                );
                continue;
            }
        }
        let mut caught = false;
        for schedule in schedules(scenario.bytes.len(), cfg) {
            report.schedules_run += 1;
            match run_schedule(target, &scenario.bytes, &schedule) {
                Err(violation) => {
                    report.push(
                        Stage::SansIo,
                        target.name,
                        context(&format!("{schedule:?}")),
                        violation,
                    );
                    caught = true;
                }
                Ok(outcome) if outcome != reference => {
                    report.push(
                        Stage::SansIo,
                        target.name,
                        context(&format!("{schedule:?}")),
                        Violation {
                            check: "split-invariance",
                            severity: Severity::Error,
                            detail: format!(
                                "whole-stream run produced {:?} (error: {:?}) but this schedule produced {:?} (error: {:?})",
                                reference.outputs,
                                reference.error,
                                outcome.outputs,
                                outcome.error
                            ),
                        },
                    );
                    caught = true;
                }
                Ok(_) => {}
            }
            // One diagnostic per scenario keeps a broken machine from
            // flooding the report with thousands of failing schedules.
            if caught {
                break;
            }
        }
    }
}

/// Explore every production protocol core.
pub fn check_protocols(cfg: &ExplorerConfig) -> ProtoReport {
    let mut report = ProtoReport::default();
    for target in builtin_targets() {
        explore_target(&target, cfg, &mut report);
    }
    report
}

/// Outcome of exploring one deliberately broken parser variant.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// Mutant name.
    pub name: &'static str,
    /// The explorer rejected it (required for the corpus to pass).
    pub caught: bool,
    /// Error diagnostics recorded against it.
    pub diagnostics: usize,
}

/// Explore the mutation corpus.  Every mutant must be caught; the
/// returned report carries the diagnostics that caught them.
pub fn check_mutants(cfg: &ExplorerConfig) -> (ProtoReport, Vec<MutantOutcome>) {
    let mut report = ProtoReport::default();
    let mut outcomes = Vec::new();
    for target in mutants::mutant_targets() {
        let before = report.error_count();
        explore_target(&target, cfg, &mut report);
        let diagnostics = report.error_count() - before;
        outcomes.push(MutantOutcome { name: target.name, caught: diagnostics > 0, diagnostics });
    }
    (report, outcomes)
}

// --------------------------------------------------- model parameters

/// Frame cap used by framer models (small, so oversized-length and
/// max-size scenarios fit in exhaustively explorable streams).
const MODEL_MAX_FRAME: usize = 8;
/// Head cap used by the request-parser model.
const MODEL_MAX_HEAD: usize = 32;
/// Frame cap used by the handshake models (a minimal `SUBSCRIBE`
/// payload is 9 bytes).
const MODEL_HS_MAX_FRAME: usize = 16;

// ------------------------------------------------------- real adapters

struct FramerMachine(LengthFramer);

impl Machine for FramerMachine {
    fn push(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
    fn drain(&mut self) -> (Vec<String>, Option<String>) {
        let mut out = Vec::new();
        loop {
            match self.0.next_frame() {
                Ok(Some((kind, payload))) => out.push(fmt_frame(kind, &payload)),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e.to_string())),
            }
        }
    }
    fn buffered(&self) -> usize {
        self.0.buffered()
    }
    fn bytes_needed(&self) -> usize {
        self.0.bytes_needed()
    }
}

struct RequestMachine(RequestParser);

impl Machine for RequestMachine {
    fn push(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
    fn drain(&mut self) -> (Vec<String>, Option<String>) {
        let mut out = Vec::new();
        loop {
            match self.0.next_request() {
                Ok(Some(req)) => out.push(fmt_request(&req)),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e.to_string())),
            }
        }
    }
    fn buffered(&self) -> usize {
        self.0.buffered()
    }
    fn bytes_needed(&self) -> usize {
        // An HTTP head has no length prefix; the parser can never know
        // how far the terminator is, only that it needs *something*.
        1
    }
}

struct ServerMachine(HandshakeServer);

impl Machine for ServerMachine {
    fn push(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
    fn drain(&mut self) -> (Vec<String>, Option<String>) {
        let mut out = Vec::new();
        loop {
            match self.0.poll() {
                Ok(Some(req)) => out.push(fmt_subscribe(&req)),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e.to_string())),
            }
        }
    }
    fn buffered(&self) -> usize {
        self.0.buffered()
    }
    fn bytes_needed(&self) -> usize {
        self.0.bytes_needed()
    }
    fn finished(&self) -> bool {
        self.0.is_done()
    }
}

struct ClientMachine(HandshakeClient);

impl Machine for ClientMachine {
    fn push(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
    fn drain(&mut self) -> (Vec<String>, Option<String>) {
        let mut out = Vec::new();
        loop {
            match self.0.poll() {
                Ok(Some(reply)) => out.push(fmt_reply(&reply)),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e.to_string())),
            }
        }
    }
    fn buffered(&self) -> usize {
        self.0.buffered()
    }
    fn bytes_needed(&self) -> usize {
        self.0.bytes_needed()
    }
    fn finished(&self) -> bool {
        self.0.is_done()
    }
}

struct ResponderMachine(NegotiateResponder);

impl Machine for ResponderMachine {
    fn push(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
    fn drain(&mut self) -> (Vec<String>, Option<String>) {
        let mut out = Vec::new();
        loop {
            match self.0.poll() {
                Ok(Some(hello)) => out.push(fmt_hello(&hello)),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e.to_string())),
            }
        }
    }
    fn buffered(&self) -> usize {
        self.0.buffered()
    }
    fn bytes_needed(&self) -> usize {
        self.0.bytes_needed()
    }
    fn finished(&self) -> bool {
        self.0.is_done()
    }
}

struct InitiatorMachine(NegotiateInitiator);

impl Machine for InitiatorMachine {
    fn push(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
    fn drain(&mut self) -> (Vec<String>, Option<String>) {
        let mut out = Vec::new();
        loop {
            match self.0.poll() {
                Ok(Some(reply)) => out.push(fmt_negotiate_reply(&reply)),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e.to_string())),
            }
        }
    }
    fn buffered(&self) -> usize {
        self.0.buffered()
    }
    fn bytes_needed(&self) -> usize {
        self.0.bytes_needed()
    }
    fn finished(&self) -> bool {
        self.0.is_done()
    }
}

// ------------------------------------------------ canonical formatting

fn fmt_frame(kind: u8, payload: &[u8]) -> String {
    format!("frame(kind={kind}, payload={payload:02x?})")
}

fn fmt_request(req: &Request) -> String {
    format!(
        "req({} {} inm={:?} close={})",
        req.method, req.path, req.if_none_match, req.close_requested
    )
}

fn fmt_subscribe(req: &SubscribeRequest) -> String {
    format!("subscribe({req:?})")
}

fn fmt_reply(reply: &HandshakeReply) -> String {
    format!("reply({reply:?})")
}

fn fmt_hello(hello: &Hello) -> String {
    // Content ids are a complete canonical summary (the id commits to
    // every byte of the descriptor).
    let ids: Vec<u64> = hello.offers.iter().map(|o| o.id.0).collect();
    format!("hello(ids={ids:?})")
}

fn fmt_negotiate_reply(reply: &NegotiateReply) -> String {
    format!("negotiate({reply:?})")
}

// ------------------------------------------------- scenario builders

fn frame4(payload: &[u8]) -> Vec<u8> {
    let mut v = (payload.len() as u32).to_be_bytes().to_vec();
    v.extend_from_slice(payload);
    v
}

fn frame5(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut v = (payload.len() as u32).to_be_bytes().to_vec();
    v.push(kind);
    v.extend_from_slice(payload);
    v
}

fn sc(label: &'static str, bytes: Vec<u8>, expect: Option<Expectation>) -> Scenario {
    Scenario { label, bytes, expect }
}

fn ok(outputs: Vec<String>) -> Option<Expectation> {
    Some(Expectation { outputs, error: false })
}

fn err_after(outputs: Vec<String>) -> Option<Expectation> {
    Some(Expectation { outputs, error: true })
}

fn plain_framer_scenarios() -> Vec<Scenario> {
    let mut oversized_tail = frame4(b"zz");
    oversized_tail[..4].copy_from_slice(&200u32.to_be_bytes());
    oversized_tail.extend_from_slice(&[0xAA; 18]);
    vec![
        sc("empty", Vec::new(), ok(vec![])),
        sc("one-frame", frame4(b"ab"), ok(vec![fmt_frame(0, b"ab")])),
        sc("empty-payload", frame4(b""), ok(vec![fmt_frame(0, b"")])),
        sc(
            "two-frames",
            [frame4(b"ab"), frame4(b"cd")].concat(),
            ok(vec![fmt_frame(0, b"ab"), fmt_frame(0, b"cd")]),
        ),
        sc("max-size-frame", frame4(b"12345678"), ok(vec![fmt_frame(0, b"12345678")])),
        sc("truncated-payload", frame4(b"abcd")[..6].to_vec(), ok(vec![])),
        sc("partial-header", vec![0, 0], ok(vec![])),
        sc("oversized-header", 9u32.to_be_bytes().to_vec(), err_after(vec![])),
        sc("huge-header", u32::MAX.to_be_bytes().to_vec(), err_after(vec![])),
        sc(
            "frame-then-oversized",
            [frame4(b"a"), 64u32.to_be_bytes().to_vec()].concat(),
            err_after(vec![fmt_frame(0, b"a")]),
        ),
        sc("oversized-with-tail", oversized_tail, err_after(vec![])),
    ]
}

fn kind_framer_scenarios() -> Vec<Scenario> {
    vec![
        sc("one-frame", frame5(7, b"ab"), ok(vec![fmt_frame(7, b"ab")])),
        sc("empty-payload-kind-255", frame5(255, b""), ok(vec![fmt_frame(255, b"")])),
        sc(
            "two-frames",
            [frame5(1, b"a"), frame5(2, b"b")].concat(),
            ok(vec![fmt_frame(1, b"a"), fmt_frame(2, b"b")]),
        ),
        sc("max-size-frame", frame5(3, b"12345678"), ok(vec![fmt_frame(3, b"12345678")])),
        sc("truncated-at-kind", frame5(9, b"x")[..4].to_vec(), ok(vec![])),
        sc("truncated-payload", frame5(9, b"abcd")[..7].to_vec(), ok(vec![])),
        sc("oversized-header", frame5(1, b"")[..5].to_vec().tap_set_len(9), err_after(vec![])),
    ]
}

fn request_parser_scenarios() -> Vec<Scenario> {
    let req = |method: &str, path: &str, inm: Option<&str>, close: bool| {
        fmt_request(&Request {
            method: method.to_string(),
            path: path.to_string(),
            if_none_match: inm.map(str::to_string),
            close_requested: close,
        })
    };
    vec![
        sc("simple-get", b"GET /a\n\n".to_vec(), ok(vec![req("GET", "/a", None, false)])),
        sc("crlf-get", b"GET /a\r\n\r\n".to_vec(), ok(vec![req("GET", "/a", None, false)])),
        sc("method-only", b"GET\n\n".to_vec(), ok(vec![req("GET", "/", None, false)])),
        sc(
            "connection-close",
            b"GET /a\nConnection: close\n\n".to_vec(),
            ok(vec![req("GET", "/a", None, true)]),
        ),
        sc(
            "if-none-match",
            b"GET /a\nIf-None-Match: \"x\"\n\n".to_vec(),
            ok(vec![req("GET", "/a", Some("\"x\""), false)]),
        ),
        sc(
            "pipelined",
            b"GET /a\n\nGET /b\n\n".to_vec(),
            ok(vec![req("GET", "/a", None, false), req("GET", "/b", None, false)]),
        ),
        sc("partial-head", b"GET /a".to_vec(), ok(vec![])),
        sc("blank-request-line", b"\nGET /a\n\n".to_vec(), err_after(vec![])),
        sc("whitespace-request-line", b" \t\n".to_vec(), err_after(vec![])),
        sc("unterminated-overflow", vec![b'a'; MODEL_MAX_HEAD + 8], err_after(vec![])),
        sc(
            "oversized-complete-head",
            [b"GET /".as_slice(), &[b'a'; MODEL_MAX_HEAD], b"\n\n"].concat(),
            err_after(vec![]),
        ),
    ]
}

fn subscribe_bytes(channel: u64) -> (Vec<u8>, String) {
    let req = SubscribeRequest { channel: FormatId(channel), projection: None, version: None };
    (req.encode(), fmt_subscribe(&req))
}

fn handshake_server_scenarios() -> Vec<Scenario> {
    let (payload, display) = subscribe_bytes(5);
    let frame = frame5(FRAME_SUBSCRIBE, &payload);
    let mut bad_flag = payload.clone();
    bad_flag[8] = 2;
    vec![
        sc("empty", Vec::new(), ok(vec![])),
        sc("subscribe", frame.clone(), ok(vec![display.clone()])),
        sc(
            "subscribe-then-trailing",
            [frame.clone(), vec![0xFF]].concat(),
            err_after(vec![display.clone()]),
        ),
        sc("wrong-kind", frame5(FRAME_RECORD, b"x"), err_after(vec![])),
        sc("truncated-frame", frame[..7].to_vec(), ok(vec![])),
        sc("truncated-request-payload", frame5(FRAME_SUBSCRIBE, &payload[..5]), err_after(vec![])),
        sc("bad-projection-flag", frame5(FRAME_SUBSCRIBE, &bad_flag), err_after(vec![])),
        sc(
            "oversized-header",
            frame5(FRAME_SUBSCRIBE, b"")[..5].to_vec().tap_set_len(17),
            err_after(vec![]),
        ),
    ]
}

fn handshake_client_scenarios() -> Vec<Scenario> {
    let accepted = fmt_reply(&HandshakeReply::Accepted(FormatId(7)));
    let rejected = fmt_reply(&HandshakeReply::Rejected("nope".to_string()));
    let sub_ok = frame5(FRAME_SUB_OK, &7u64.to_be_bytes());
    vec![
        sc("empty", Vec::new(), ok(vec![])),
        sc("sub-ok", sub_ok.clone(), ok(vec![accepted.clone()])),
        sc(
            "sub-ok-then-delivery-bytes",
            [sub_ok.clone(), frame5(1, b"desc")[..7].to_vec()].concat(),
            ok(vec![accepted.clone()]),
        ),
        sc("sub-err", frame5(FRAME_SUB_ERR, b"nope"), ok(vec![rejected])),
        sc("short-sub-ok", frame5(FRAME_SUB_OK, b"abc"), err_after(vec![])),
        sc("wrong-kind", frame5(FRAME_RECORD, b"x"), err_after(vec![])),
        sc("truncated", sub_ok[..6].to_vec(), ok(vec![])),
        sc(
            "oversized-header",
            frame5(FRAME_SUB_OK, b"")[..5].to_vec().tap_set_len(17),
            err_after(vec![]),
        ),
    ]
}

/// A minimal real descriptor for negotiation scenarios — deterministic
/// (explicit machine model), so the model-checker streams are stable.
fn model_hello() -> Hello {
    let reg = FormatRegistry::new(PbioMachine::X86_64);
    let desc = reg
        .register(FormatSpec::new("T", vec![IOField::auto("x", "integer", 4)]))
        .expect("model format registers");
    Hello::from_formats(&[&desc])
}

fn negotiate_responder_scenarios() -> Vec<Scenario> {
    let hello = model_hello();
    let payload = hello.encode();
    let display = fmt_hello(&hello);
    let frame = frame5(FRAME_HELLO, &payload);
    // Corrupt the offered id: decode cross-checks it against the
    // descriptor's recomputed content id.
    let mut lying_id = payload.clone();
    lying_id[5] ^= 1;
    vec![
        sc("empty", Vec::new(), ok(vec![])),
        sc("hello", frame.clone(), ok(vec![display.clone()])),
        sc(
            // Unlike SUBSCRIBE, bytes behind HELLO are legal: a
            // pipelining sender pushes RECORD frames without waiting.
            "hello-then-delivery-bytes",
            [frame.clone(), frame5(FRAME_RECORD, b"x")[..6].to_vec()].concat(),
            ok(vec![display.clone()]),
        ),
        sc("wrong-kind", frame5(FRAME_RECORD, b"x"), err_after(vec![])),
        sc("truncated-frame", frame[..9].to_vec(), ok(vec![])),
        sc("lying-offer-id", frame5(FRAME_HELLO, &lying_id), err_after(vec![])),
        sc("truncated-offer", frame5(FRAME_HELLO, &payload[..7]), err_after(vec![])),
        sc(
            "oversized-header",
            frame5(FRAME_HELLO, b"")[..5].to_vec().tap_set_len(1 << 30),
            err_after(vec![]),
        ),
    ]
}

fn model_accept() -> Accept {
    Accept {
        entries: vec![AcceptEntry {
            sender: FormatId(0x1122_3344_5566_7788),
            verdict: PairVerdict::Projectable,
            receiver: FormatId(0x99AA_BBCC_DDEE_FF00),
        }],
    }
}

fn negotiate_initiator_scenarios() -> Vec<Scenario> {
    let accept = model_accept();
    let payload = accept.encode();
    let accepted = fmt_negotiate_reply(&NegotiateReply::Accepted(accept));
    let rejected = fmt_negotiate_reply(&NegotiateReply::Rejected("nope".to_string()));
    let frame = frame5(FRAME_ACCEPT, &payload);
    let mut bad_verdict = payload.clone();
    bad_verdict[10] = 9;
    vec![
        sc("empty", Vec::new(), ok(vec![])),
        sc("accept", frame.clone(), ok(vec![accepted.clone()])),
        sc(
            "accept-then-trailing-bytes",
            [frame.clone(), frame5(FRAME_RECORD, b"x")[..6].to_vec()].concat(),
            ok(vec![accepted.clone()]),
        ),
        sc("reject", frame5(FRAME_REJECT, b"nope"), ok(vec![rejected])),
        sc("wrong-kind", frame5(FRAME_RECORD, b"x"), err_after(vec![])),
        sc("truncated", frame[..9].to_vec(), ok(vec![])),
        sc("bad-verdict-byte", frame5(FRAME_ACCEPT, &bad_verdict), err_after(vec![])),
        sc("truncated-entries", frame5(FRAME_ACCEPT, &payload[..10]), err_after(vec![])),
        sc(
            "oversized-header",
            frame5(FRAME_ACCEPT, b"")[..5].to_vec().tap_set_len(1 << 30),
            err_after(vec![]),
        ),
    ]
}

/// Rewrite the length prefix of a header-only frame (test helper for
/// "lying header" scenarios).
trait TapSetLen {
    fn tap_set_len(self, len: u32) -> Vec<u8>;
}

impl TapSetLen for Vec<u8> {
    fn tap_set_len(mut self, len: u32) -> Vec<u8> {
        self[..4].copy_from_slice(&len.to_be_bytes());
        self
    }
}

/// The production protocol cores, each with its scenario corpus.
pub fn builtin_targets() -> Vec<Target> {
    vec![
        Target {
            name: "net::LengthFramer",
            cap: 4 + MODEL_MAX_FRAME,
            make: Box::new(|| Box::new(FramerMachine(LengthFramer::new(MODEL_MAX_FRAME)))),
            scenarios: plain_framer_scenarios(),
        },
        Target {
            name: "net::LengthFramer(kind)",
            cap: 5 + MODEL_MAX_FRAME,
            make: Box::new(|| {
                Box::new(FramerMachine(LengthFramer::with_kind_byte(MODEL_MAX_FRAME)))
            }),
            scenarios: kind_framer_scenarios(),
        },
        Target {
            name: "ohttp::RequestParser",
            cap: MODEL_MAX_HEAD,
            make: Box::new(|| {
                Box::new(RequestMachine(RequestParser::with_max_head(MODEL_MAX_HEAD)))
            }),
            scenarios: request_parser_scenarios(),
        },
        Target {
            name: "echo::HandshakeServer",
            cap: 5 + MODEL_HS_MAX_FRAME,
            make: Box::new(|| {
                Box::new(ServerMachine(HandshakeServer::with_max_frame(MODEL_HS_MAX_FRAME)))
            }),
            scenarios: handshake_server_scenarios(),
        },
        Target {
            name: "echo::HandshakeClient",
            cap: 5 + MODEL_HS_MAX_FRAME,
            make: Box::new(|| {
                Box::new(ClientMachine(HandshakeClient::with_max_frame(MODEL_HS_MAX_FRAME)))
            }),
            scenarios: handshake_client_scenarios(),
        },
        {
            // The valid HELLO carries a real encoded descriptor, so the
            // model cap is sized from the actual stream.
            let max = model_hello().encode().len();
            Target {
                name: "xmit::NegotiateResponder",
                cap: 5 + max,
                make: Box::new(move || {
                    Box::new(ResponderMachine(NegotiateResponder::with_max_frame(max)))
                }),
                scenarios: negotiate_responder_scenarios(),
            }
        },
        {
            let max = model_accept().encode().len();
            Target {
                name: "xmit::NegotiateInitiator",
                cap: 5 + max,
                make: Box::new(move || {
                    Box::new(InitiatorMachine(NegotiateInitiator::with_max_frame(max)))
                }),
                scenarios: negotiate_initiator_scenarios(),
            }
        },
    ]
}

/// Deliberately broken parser variants the explorer must reject — the
/// engine's own regression corpus, mirroring classic framing bugs.
pub mod mutants {
    use super::*;

    /// Big-endian length prefix of a buffered mutant frame (the caller
    /// has already checked `buf.len() >= 4`).
    fn peek_len(buf: &[u8]) -> usize {
        u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize
    }

    /// Waits for one byte more than the frame it emits (off-by-one in
    /// the completeness test): with exactly one complete frame buffered
    /// it reports `bytes_needed() == 0` yet emits nothing — a stuck
    /// state the progress invariant must flag.
    #[derive(Default)]
    struct OffByOneNeed {
        buf: Vec<u8>,
    }

    impl Machine for OffByOneNeed {
        fn push(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }
        fn drain(&mut self) -> (Vec<String>, Option<String>) {
            let mut out = Vec::new();
            loop {
                if self.buf.len() < 4 {
                    return (out, None);
                }
                let len = peek_len(&self.buf);
                if len > MODEL_MAX_FRAME {
                    return (out, Some(format!("frame of {len} bytes exceeds limit")));
                }
                if self.buf.len() < 4 + len + 1 {
                    return (out, None);
                }
                out.push(fmt_frame(0, &self.buf[4..4 + len]));
                self.buf.drain(..4 + len);
            }
        }
        fn buffered(&self) -> usize {
            self.buf.len()
        }
        fn bytes_needed(&self) -> usize {
            if self.buf.len() < 4 {
                return 4 - self.buf.len();
            }
            let len = peek_len(&self.buf);
            (4 + len).saturating_sub(self.buf.len())
        }
    }

    /// Emits one byte too few of each payload and leaves the last
    /// payload byte in the buffer, desynchronizing every subsequent
    /// frame — caught against the scenario expectations.
    #[derive(Default)]
    struct ShortRead {
        buf: Vec<u8>,
    }

    impl Machine for ShortRead {
        fn push(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }
        fn drain(&mut self) -> (Vec<String>, Option<String>) {
            let mut out = Vec::new();
            loop {
                if self.buf.len() < 4 {
                    return (out, None);
                }
                let len = peek_len(&self.buf);
                if len > MODEL_MAX_FRAME {
                    return (out, Some(format!("frame of {len} bytes exceeds limit")));
                }
                if self.buf.len() < 4 + len {
                    return (out, None);
                }
                let emitted = len.saturating_sub(1);
                out.push(fmt_frame(0, &self.buf[4..4 + emitted]));
                self.buf.drain(..4 + emitted);
            }
        }
        fn buffered(&self) -> usize {
            self.buf.len()
        }
        fn bytes_needed(&self) -> usize {
            if self.buf.len() < 4 {
                return 4 - self.buf.len();
            }
            let len = peek_len(&self.buf);
            (4 + len).saturating_sub(self.buf.len()).max(1)
        }
    }

    /// Accepts any length prefix and accumulates forever — the missing
    /// `max_frame` check.  Caught by the bounded-buffer invariant (and
    /// by the scenarios that expect an oversized-header error).
    #[derive(Default)]
    struct Unbounded {
        buf: Vec<u8>,
    }

    impl Machine for Unbounded {
        fn push(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }
        fn drain(&mut self) -> (Vec<String>, Option<String>) {
            let mut out = Vec::new();
            loop {
                if self.buf.len() < 4 {
                    return (out, None);
                }
                let len = peek_len(&self.buf);
                if self.buf.len() < 4 + len {
                    return (out, None);
                }
                out.push(fmt_frame(0, &self.buf[4..4 + len]));
                self.buf.drain(..4 + len);
            }
        }
        fn buffered(&self) -> usize {
            self.buf.len()
        }
        fn bytes_needed(&self) -> usize {
            if self.buf.len() < 4 {
                return 4 - self.buf.len();
            }
            let len = peek_len(&self.buf);
            (4 + len).saturating_sub(self.buf.len()).max(1)
        }
    }

    /// Scans for the `\n\n` head terminator only inside the chunk just
    /// pushed (the classic "works on my netcat" parser): a terminator
    /// split across reads is never seen.  Caught by split-invariance —
    /// the whole-stream run emits a head, byte-at-a-time never does.
    #[derive(Default)]
    struct ChunkLocalScan {
        buf: Vec<u8>,
        ready: Vec<String>,
    }

    impl Machine for ChunkLocalScan {
        fn push(&mut self, bytes: &[u8]) {
            let base = self.buf.len();
            self.buf.extend_from_slice(bytes);
            if let Some(idx) = bytes.windows(2).position(|w| w == b"\n\n") {
                let end = base + idx + 2;
                let head = String::from_utf8_lossy(&self.buf[..end]).into_owned();
                self.ready.push(format!("head({head:?})"));
                self.buf.drain(..end);
            }
        }
        fn drain(&mut self) -> (Vec<String>, Option<String>) {
            (std::mem::take(&mut self.ready), None)
        }
        fn buffered(&self) -> usize {
            self.buf.len()
        }
        fn bytes_needed(&self) -> usize {
            1
        }
    }

    /// Reassembles `ACCEPT` frames correctly but reads the sender's
    /// content id from the *most recently pushed chunk* at the frame's
    /// absolute offset — right only when the whole frame arrives in one
    /// read.  The whole-stream reference run emits the true id; split
    /// schedules emit a zero or misaligned id, so split-invariance must
    /// flag it.
    #[derive(Default)]
    struct ChunkLocalIdScan {
        buf: Vec<u8>,
        last_chunk: Vec<u8>,
        done: bool,
    }

    impl Machine for ChunkLocalIdScan {
        fn push(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
            self.last_chunk = bytes.to_vec();
        }
        fn drain(&mut self) -> (Vec<String>, Option<String>) {
            if self.done || self.buf.len() < 5 {
                return (Vec::new(), None);
            }
            let len = peek_len(&self.buf);
            if 5 + len > 5 + model_accept().encode().len() {
                return (Vec::new(), Some(format!("frame of {len} bytes exceeds limit")));
            }
            if self.buf.len() < 5 + len {
                return (Vec::new(), None);
            }
            self.done = true;
            let kind = self.buf[4];
            if kind != FRAME_ACCEPT {
                return (Vec::new(), Some(format!("unexpected frame kind {kind}")));
            }
            match Accept::decode(&self.buf[5..5 + len]) {
                Ok(mut accept) => {
                    // BUG: the id comes from the last chunk, not the
                    // reassembled frame.
                    let sender = if self.last_chunk.len() >= 15 {
                        u64::from_be_bytes(self.last_chunk[7..15].try_into().expect("8-byte slice"))
                    } else {
                        0
                    };
                    if let Some(e) = accept.entries.first_mut() {
                        e.sender = FormatId(sender);
                    }
                    (vec![fmt_negotiate_reply(&NegotiateReply::Accepted(accept))], None)
                }
                Err(e) => (Vec::new(), Some(e.to_string())),
            }
        }
        fn buffered(&self) -> usize {
            self.buf.len()
        }
        fn bytes_needed(&self) -> usize {
            if self.done {
                return 0;
            }
            if self.buf.len() < 5 {
                return 5 - self.buf.len();
            }
            (5 + peek_len(&self.buf)).saturating_sub(self.buf.len()).max(1)
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    /// The mutation corpus: every target here must produce at least one
    /// error diagnostic under [`check_mutants`].
    pub fn mutant_targets() -> Vec<Target> {
        vec![
            Target {
                name: "mutant::off-by-one-need",
                cap: 4 + MODEL_MAX_FRAME,
                make: Box::new(|| Box::<OffByOneNeed>::default()),
                scenarios: plain_framer_scenarios(),
            },
            Target {
                name: "mutant::short-read",
                cap: 4 + MODEL_MAX_FRAME,
                make: Box::new(|| Box::<ShortRead>::default()),
                scenarios: plain_framer_scenarios(),
            },
            Target {
                name: "mutant::unbounded-buffer",
                cap: 4 + MODEL_MAX_FRAME,
                make: Box::new(|| Box::<Unbounded>::default()),
                scenarios: plain_framer_scenarios(),
            },
            Target {
                name: "mutant::chunk-local-scan",
                cap: MODEL_MAX_HEAD,
                make: Box::new(|| Box::<ChunkLocalScan>::default()),
                scenarios: vec![Scenario {
                    label: "simple-get",
                    bytes: b"GET /a\n\n".to_vec(),
                    expect: None,
                }],
            },
            Target {
                name: "mutant::chunk-local-id-scan",
                cap: 5 + model_accept().encode().len(),
                make: Box::new(|| Box::<ChunkLocalIdScan>::default()),
                scenarios: vec![sc(
                    "accept",
                    frame5(FRAME_ACCEPT, &model_accept().encode()),
                    ok(vec![fmt_negotiate_reply(&NegotiateReply::Accepted(model_accept()))]),
                )],
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_exhaustive_for_short_streams() {
        let cfg = ExplorerConfig::default();
        let all = schedules(4, &cfg);
        assert_eq!(all.len(), 8, "2^(4-1) chunkings");
        for s in &all {
            assert_eq!(s.iter().sum::<usize>(), 4);
        }
        assert!(all.contains(&vec![4]));
        assert!(all.contains(&vec![1, 1, 1, 1]));
        assert!(all.contains(&vec![2, 2]));
    }

    #[test]
    fn schedules_reduce_for_long_streams() {
        let cfg = ExplorerConfig::default();
        let all = schedules(20, &cfg);
        assert!(all.len() < 1 << 19);
        assert!(all.contains(&vec![20]));
        assert!(all.contains(&vec![1; 20]));
        assert!(all.contains(&vec![7, 13]));
        assert!(all.contains(&vec![3, 9, 8]));
        for s in &all {
            assert_eq!(s.iter().sum::<usize>(), 20);
        }
    }

    #[test]
    fn production_protocol_cores_pass_exhaustive_exploration() {
        let report = check_protocols(&ExplorerConfig::default());
        assert!(
            report.passed(),
            "production cores must explore clean:\n{}",
            report.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
        assert_eq!(report.machines_checked, 7);
        assert!(report.schedules_run > 1000, "ran {} schedules", report.schedules_run);
    }

    #[test]
    fn every_mutant_is_caught() {
        let (report, outcomes) = check_mutants(&ExplorerConfig::default());
        assert_eq!(outcomes.len(), 5);
        for outcome in &outcomes {
            assert!(outcome.caught, "mutant {} escaped the explorer", outcome.name);
        }
        assert!(!report.passed());
    }

    #[test]
    fn mutants_are_caught_by_the_expected_invariant() {
        let (report, _) = check_mutants(&ExplorerConfig::default());
        let checks_for = |name: &str| -> Vec<&'static str> {
            report
                .diagnostics
                .iter()
                .filter(|d| d.subject == name)
                .map(|d| d.violation.check)
                .collect()
        };
        assert!(
            checks_for("mutant::off-by-one-need").contains(&"progress"),
            "off-by-one completeness test must surface as a stuck state"
        );
        assert!(
            checks_for("mutant::unbounded-buffer").contains(&"bounded-buffer"),
            "missing frame cap must surface as unbounded retention"
        );
        assert!(
            checks_for("mutant::chunk-local-scan").contains(&"split-invariance"),
            "chunk-local terminator scan must surface as split sensitivity"
        );
        assert!(
            checks_for("mutant::chunk-local-id-scan").contains(&"split-invariance"),
            "chunk-local sender-id scan must surface as split sensitivity"
        );
        assert!(!checks_for("mutant::short-read").is_empty());
    }
}
