//! Machine-readable diagnostics for the analysis pipeline.
//!
//! The verifier core ([`openmeta_pbio::verify`]) reports [`Violation`]s
//! against one plan; the pipeline runs many plans (every format, every
//! machine pair) and needs to say *which* artifact each violation belongs
//! to.  A [`Diagnostic`] is a violation plus that provenance; a [`Report`]
//! aggregates them and renders to the stable JSON shape `planlint --json`
//! emits (hand-rolled like the bench reports — the workspace carries no
//! serde).

use std::fmt;

use openmeta_pbio::verify::{Severity, Violation};

/// Which analysis stage produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Parsing or mapping the schema document.
    Schema,
    /// Descriptor layout self-consistency.
    Layout,
    /// Encode-plan verification.
    EncodePlan,
    /// Convert-plan verification for a machine pair.
    ConvertPlan,
    /// Exhaustive sans-io protocol exploration.
    SansIo,
    /// Lock-order (may-hold-while-acquiring) graph analysis.
    LockOrder,
    /// Wire-input taint lint.
    Taint,
}

impl Stage {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Schema => "schema",
            Stage::Layout => "layout",
            Stage::EncodePlan => "encode-plan",
            Stage::ConvertPlan => "convert-plan",
            Stage::SansIo => "sans-io",
            Stage::LockOrder => "lock-order",
            Stage::Taint => "taint",
        }
    }
}

/// One violation with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Analysis stage.
    pub stage: Stage,
    /// Format name, or `"Sender→Receiver"` style pair label.
    pub subject: String,
    /// Machine model(s) the artifact was compiled for (display form).
    pub machines: String,
    /// The underlying violation.
    pub violation: Violation,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {} on {}] {}",
            self.violation.severity,
            self.stage.name(),
            self.subject,
            self.machines,
            self.violation.detail
        )
    }
}

/// The aggregated outcome of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every diagnostic, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Formats analyzed (per machine model).
    pub formats_checked: usize,
    /// Encode plans verified.
    pub encode_plans_checked: usize,
    /// Convert plans verified (machine pairs × formats).
    pub convert_plans_checked: usize,
}

impl Report {
    /// True when no error-severity diagnostic was recorded.
    pub fn passed(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.violation.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.violation.severity == Severity::Error).count()
    }

    /// Count of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.violation.severity == Severity::Warning).count()
    }

    /// Fold `verdict` violations into the report under one provenance.
    pub fn absorb(
        &mut self,
        stage: Stage,
        subject: impl Into<String>,
        machines: impl Into<String>,
        verdict: openmeta_pbio::verify::Verdict,
    ) {
        let subject = subject.into();
        let machines = machines.into();
        for violation in verdict.into_violations() {
            self.diagnostics.push(Diagnostic {
                stage,
                subject: subject.clone(),
                machines: machines.clone(),
                violation,
            });
        }
    }

    /// Render the stable machine-readable JSON shape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"passed\": {},\n  \"formats_checked\": {},\n  \"encode_plans_checked\": {},\n  \"convert_plans_checked\": {},\n  \"errors\": {},\n  \"warnings\": {},\n  \"diagnostics\": [",
            self.passed(),
            self.formats_checked,
            self.encode_plans_checked,
            self.convert_plans_checked,
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"severity\": \"{}\", \"stage\": \"{}\", \"check\": \"{}\", \"subject\": \"{}\", \"machines\": \"{}\", \"detail\": \"{}\"}}",
                d.violation.severity,
                d.stage.name(),
                json_escape(d.violation.check),
                json_escape(&d.subject),
                json_escape(&d.machines),
                json_escape(&d.violation.detail)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// The aggregated outcome of one protocol-analysis run (`protolint`).
///
/// Kept separate from [`Report`] so `planlint --json`'s shape stays
/// byte-stable while the protocol engines report their own counters.
#[derive(Debug, Clone, Default)]
pub struct ProtoReport {
    /// Every diagnostic, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Sans-io machines explored.
    pub machines_checked: usize,
    /// Delivery schedules (chunkings × scenarios) executed.
    pub schedules_run: usize,
    /// Lock-acquisition sites extracted from source.
    pub lock_sites: usize,
    /// Wire-integer flows traced by the taint lint.
    pub taint_flows_checked: usize,
}

impl ProtoReport {
    /// True when no error-severity diagnostic was recorded.
    pub fn passed(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.violation.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.violation.severity == Severity::Error).count()
    }

    /// Count of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.violation.severity == Severity::Warning).count()
    }

    /// Record one violation under its provenance.
    pub fn push(
        &mut self,
        stage: Stage,
        subject: impl Into<String>,
        context: impl Into<String>,
        violation: Violation,
    ) {
        self.diagnostics.push(Diagnostic {
            stage,
            subject: subject.into(),
            machines: context.into(),
            violation,
        });
    }

    /// Merge another report (diagnostics and counters) into this one.
    pub fn merge(&mut self, other: ProtoReport) {
        self.diagnostics.extend(other.diagnostics);
        self.machines_checked += other.machines_checked;
        self.schedules_run += other.schedules_run;
        self.lock_sites += other.lock_sites;
        self.taint_flows_checked += other.taint_flows_checked;
    }

    /// Render the stable machine-readable JSON shape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"passed\": {},\n  \"machines_checked\": {},\n  \"schedules_run\": {},\n  \"lock_sites\": {},\n  \"taint_flows_checked\": {},\n  \"errors\": {},\n  \"warnings\": {},\n  \"diagnostics\": [",
            self.passed(),
            self.machines_checked,
            self.schedules_run,
            self.lock_sites,
            self.taint_flows_checked,
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"severity\": \"{}\", \"stage\": \"{}\", \"check\": \"{}\", \"subject\": \"{}\", \"context\": \"{}\", \"detail\": \"{}\"}}",
                d.violation.severity,
                d.stage.name(),
                json_escape(d.violation.check),
                json_escape(&d.subject),
                json_escape(&d.machines),
                json_escape(&d.violation.detail)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(severity: Severity) -> Violation {
        Violation { check: "op-bounds", severity, detail: "a \"quoted\" detail".to_string() }
    }

    #[test]
    fn report_counts_and_passed() {
        let mut r = Report::default();
        assert!(r.passed());
        r.diagnostics.push(Diagnostic {
            stage: Stage::ConvertPlan,
            subject: "A→B".into(),
            machines: "SPARC32→X86_64".into(),
            violation: violation(Severity::Warning),
        });
        assert!(r.passed());
        r.diagnostics.push(Diagnostic {
            stage: Stage::Layout,
            subject: "A".into(),
            machines: "X86".into(),
            violation: violation(Severity::Error),
        });
        assert!(!r.passed());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn json_is_escaped_and_shaped() {
        let mut r = Report { formats_checked: 2, ..Report::default() };
        r.diagnostics.push(Diagnostic {
            stage: Stage::EncodePlan,
            subject: "F".into(),
            machines: "SPARC32".into(),
            violation: violation(Severity::Error),
        });
        let j = r.to_json();
        assert!(j.contains("\"passed\": false"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"stage\": \"encode-plan\""));
        assert!(j.contains("\"formats_checked\": 2"));
    }
}
