//! Workspace source collection for the source-level engines.
//!
//! The lock-order and taint engines analyze the repo's own `.rs` files
//! (the sans-io explorer runs the compiled machines instead).  Both
//! need the same inputs — every library source file under
//! `crates/*/src`, tagged with its crate name — and the same two
//! text-level services: skipping `#[cfg(test)]` modules (test code may
//! lock and allocate however it likes) and counting brace depth without
//! being fooled by braces inside string literals (`format!("{e}")` is
//! everywhere in this codebase).

use std::io;
use std::path::{Path, PathBuf};

/// One source file, tagged with the crate it belongs to.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate directory name (`net`, `echo`, …).
    pub crate_name: String,
    /// Path relative to the repo root, for diagnostics.
    pub rel_path: String,
    /// File contents.
    pub text: String,
}

/// Collect every `crates/*/src/**/*.rs` under `root`, sorted for
/// deterministic reports.
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for dir in &crate_dirs {
        let crate_name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        let mut files = Vec::new();
        collect_rs(&dir.join("src"), &mut files);
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel_path = file.strip_prefix(root).unwrap_or(&file).display().to_string();
            out.push(SourceFile { crate_name: crate_name.clone(), rel_path, text });
        }
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// The lines of `text` outside `#[cfg(test)]` / `#[cfg(all(test, ...))]`
/// modules, as `(1-based line number, line)` pairs.  Test modules are
/// brace-balanced, so depth tracking over the returned lines stays
/// consistent.
pub fn code_lines(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut in_test = false;
    let mut depth: i64 = 0;
    let mut entered_body = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if in_test {
            let (opens, closes) = brace_delta(line);
            depth += opens - closes;
            if opens > 0 {
                entered_body = true;
            }
            if entered_body && depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            in_test = true;
            depth = 0;
            entered_body = false;
            continue;
        }
        out.push((idx + 1, line));
    }
    out
}

/// Count `{` and `}` outside string/char literals and `//` comments.
pub fn brace_delta(line: &str) -> (i64, i64) {
    let mut opens = 0i64;
    let mut closes = 0i64;
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        if in_char {
            match c {
                '\\' => {
                    chars.next();
                }
                '\'' => in_char = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            // A lone quote opens a char literal only when it closes
            // within a couple of chars ('a', '\n'); lifetimes ('a) do
            // not.  Checking for a closing quote nearby is enough here.
            '\'' => {
                let rest: String = chars.clone().take(3).collect();
                if rest.len() >= 2 && (rest.as_bytes()[1] == b'\'' || rest.starts_with('\\')) {
                    in_char = true;
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            '{' => opens += 1,
            '}' => closes += 1,
            _ => {}
        }
    }
    (opens, closes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brace_counting_ignores_strings_and_comments() {
        assert_eq!(brace_delta("fn f() {"), (1, 0));
        assert_eq!(brace_delta("let s = format!(\"{e} {{literal}}\");"), (0, 0));
        assert_eq!(brace_delta("} // closes { the fn"), (0, 1));
        assert_eq!(brace_delta("let c = '{';"), (0, 0));
        assert_eq!(brace_delta("let lt: &'a str = s; {"), (1, 0));
    }

    #[test]
    fn test_modules_are_excluded() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
        let lines: Vec<usize> = code_lines(src).into_iter().map(|(n, _)| n).collect();
        assert_eq!(lines, vec![1, 6]);
    }
}
