//! Static analysis for XMIT metadata: prove format layouts and compiled
//! marshal plans safe *before* they run.
//!
//! The paper's architecture trusts metadata to drive raw binary
//! marshaling — XMIT binding tokens lower XML Schema definitions into
//! PBIO wire programs ([`openmeta_pbio::plan`]).  Since those programs
//! execute with no per-record checks, this crate closes the loop the way
//! binding-schema systems (BSML) and ahead-of-time XML binding analyses
//! do: every plan the toolkit can produce is verified statically.
//!
//! Three layers:
//!
//! * the verifier core lives in [`openmeta_pbio::verify`] (so the
//!   registry's plan cache can gate insertions without a dependency
//!   cycle) — re-exported here as [`verify`];
//! * [`pipeline`] runs it end to end: schema text → mapped descriptors →
//!   compiled plans → verdicts, across a 4-model machine matrix and all
//!   ordered machine pairs;
//! * [`diag`] aggregates results into machine-readable reports (the
//!   `planlint` CLI in `openmeta-tools` prints them as text or JSON).
//!
//! ```
//! let report = openmeta_analyzer::analyze_xml(
//!     r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
//!          <xsd:complexType name="Point">
//!            <xsd:element name="x" type="xsd:double" />
//!            <xsd:element name="y" type="xsd:double" />
//!          </xsd:complexType>
//!        </xsd:schema>"#,
//! );
//! assert!(report.passed());
//! ```

#![deny(unsafe_code)]

pub mod diag;
pub mod lockorder;
pub mod pipeline;
pub mod sansio;
pub mod source;
pub mod taint;

pub use diag::{Diagnostic, ProtoReport, Report, Stage};
pub use lockorder::{analyze_lock_order, LockOrderConfig};
pub use openmeta_pbio::verify;
pub use pipeline::{analyze_registry, analyze_xmit, analyze_xml, machine_name, MACHINE_MATRIX};
pub use sansio::{ExplorerConfig, MutantOutcome};
pub use source::{collect_workspace_sources, SourceFile};
pub use taint::analyze_taint;
