//! The end-to-end analysis pipeline: schema → descriptor → plan → verdict.
//!
//! [`analyze_xml`] takes schema text and proves every format it defines
//! safe across the full machine matrix: each format's layout and encode
//! plan are verified per machine model, and a convert plan is compiled
//! and verified for every ordered machine pair — exactly the plans a
//! heterogeneous deployment of that schema would execute.  [`analyze_xmit`]
//! does the same through the XMIT toolkit's bind path (the descriptors a
//! real application would use), and [`analyze_registry`] covers formats
//! already registered from compiled-in metadata.

use std::sync::Arc;

use openmeta_pbio::verify::{self, Severity, Violation};
use openmeta_pbio::{ConvertPlan, EncodePlan, FormatDescriptor, FormatRegistry, MachineModel};
use xmit::{map_document, Xmit};

use crate::diag::{Diagnostic, Report, Stage};

/// The machine models a schema is analyzed against: both byte orders,
/// both pointer widths, both long sizes.
pub const MACHINE_MATRIX: [MachineModel; 4] =
    [MachineModel::SPARC32, MachineModel::X86, MachineModel::X86_64, MachineModel::SPARC64];

/// Display name of a matrix machine model.
pub fn machine_name(m: &MachineModel) -> &'static str {
    if *m == MachineModel::SPARC32 {
        "SPARC32"
    } else if *m == MachineModel::X86 {
        "X86"
    } else if *m == MachineModel::X86_64 {
        "X86_64"
    } else if *m == MachineModel::SPARC64 {
        "SPARC64"
    } else {
        "custom"
    }
}

fn schema_diag(report: &mut Report, subject: &str, machines: &str, detail: String) {
    report.diagnostics.push(Diagnostic {
        stage: Stage::Schema,
        subject: subject.to_string(),
        machines: machines.to_string(),
        violation: Violation { check: "schema", severity: Severity::Error, detail },
    });
}

/// Verify one descriptor's layout and encode plan into `report`.
fn analyze_descriptor(report: &mut Report, desc: &FormatDescriptor, machines: &str) {
    report.formats_checked += 1;
    report.absorb(Stage::Layout, desc.name.clone(), machines, verify::verify_layout(desc));
    match EncodePlan::compile(desc) {
        Ok(plan) => {
            report.encode_plans_checked += 1;
            // verify_encode_plan re-runs the layout pass internally; keep
            // only the plan-specific findings to avoid duplicates.
            let layout = verify::verify_layout(desc);
            let verdict = verify::verify_encode_plan(desc, &plan);
            let fresh: Vec<_> = verdict
                .into_violations()
                .into_iter()
                .filter(|v| !layout.violations().contains(v))
                .collect();
            for violation in fresh {
                report.diagnostics.push(Diagnostic {
                    stage: Stage::EncodePlan,
                    subject: desc.name.clone(),
                    machines: machines.to_string(),
                    violation,
                });
            }
        }
        Err(e) => {
            schema_diag(report, &desc.name, machines, format!("encode plan failed to compile: {e}"))
        }
    }
}

/// Verify the convert plan for one (sender, receiver) descriptor pair.
fn analyze_pair(
    report: &mut Report,
    from: &FormatDescriptor,
    to: &FormatDescriptor,
    machines: &str,
) {
    let subject = format!("{}\u{2192}{}", from.name, to.name);
    match ConvertPlan::compile(from, to) {
        Ok(plan) => {
            report.convert_plans_checked += 1;
            let mut layout = verify::verify_layout(from);
            layout.merge(verify::verify_layout(to));
            let verdict = verify::verify_convert_plan(from, to, &plan);
            let fresh: Vec<_> = verdict
                .into_violations()
                .into_iter()
                .filter(|v| !layout.violations().contains(v))
                .collect();
            for violation in fresh {
                report.diagnostics.push(Diagnostic {
                    stage: Stage::ConvertPlan,
                    subject: subject.clone(),
                    machines: machines.to_string(),
                    violation,
                });
            }
        }
        Err(e) => {
            schema_diag(report, &subject, machines, format!("convert plan failed to compile: {e}"))
        }
    }
}

/// Analyze schema text end to end across [`MACHINE_MATRIX`].
///
/// Every `complexType` is mapped and registered per machine model, its
/// layout and encode plan verified, and a convert plan verified for every
/// ordered machine pair (the plans a heterogeneous deployment would run).
pub fn analyze_xml(xml: &str) -> Report {
    let mut report = Report::default();
    let doc = match openmeta_schema::parse_str(xml) {
        Ok(doc) => doc,
        Err(e) => {
            schema_diag(&mut report, "<document>", "-", format!("schema failed to parse: {e}"));
            return report;
        }
    };

    // Per-machine registration: name → descriptor, document order kept.
    let mut per_machine: Vec<(MachineModel, Vec<Arc<FormatDescriptor>>)> = Vec::new();
    for machine in MACHINE_MATRIX {
        let mname = machine_name(&machine);
        let specs = match map_document(&doc, &machine) {
            Ok(specs) => specs,
            Err(e) => {
                schema_diag(&mut report, "<document>", mname, format!("schema failed to map: {e}"));
                continue;
            }
        };
        let registry = FormatRegistry::new(machine);
        let mut descs = Vec::new();
        for spec in specs {
            let name = spec.name.clone();
            match registry.register(spec) {
                Ok(desc) => descs.push(desc),
                Err(e) => {
                    schema_diag(&mut report, &name, mname, format!("failed to register: {e}"))
                }
            }
        }
        for desc in &descs {
            analyze_descriptor(&mut report, desc, mname);
        }
        per_machine.push((machine, descs));
    }

    // Cross-machine conversion: every ordered pair, every format.
    for (from_machine, from_descs) in &per_machine {
        for (to_machine, to_descs) in &per_machine {
            if from_machine == to_machine {
                continue;
            }
            let machines =
                format!("{}\u{2192}{}", machine_name(from_machine), machine_name(to_machine));
            for from in from_descs {
                if let Some(to) = to_descs.iter().find(|d| d.name == from.name) {
                    analyze_pair(&mut report, from, to, &machines);
                }
            }
        }
    }
    report
}

/// Analyze every format a toolkit instance has loaded, through the same
/// bind path an application uses (`Xmit::bind` → registry descriptor).
pub fn analyze_xmit(toolkit: &Xmit) -> Report {
    let mut report = Report::default();
    let machine = toolkit.registry().machine();
    let mname = machine_name(&machine);
    for name in toolkit.loaded_types() {
        match toolkit.bind(&name) {
            Ok(_) => {
                if let Some(desc) = toolkit.registry().lookup_name(&name) {
                    analyze_descriptor(&mut report, &desc, mname);
                }
            }
            Err(e) => schema_diag(&mut report, &name, mname, format!("bind failed: {e}")),
        }
    }
    report
}

/// Analyze every format registered in `registry` (compiled-in metadata,
/// descriptors fetched from format servers, …).
pub fn analyze_registry(registry: &FormatRegistry) -> Report {
    let mut report = Report::default();
    let mname = machine_name(&registry.machine());
    for name in registry.names() {
        if let Some(desc) = registry.lookup_name(&name) {
            analyze_descriptor(&mut report, &desc, mname);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:complexType name="SimpleData">
        <xsd:element name="timestep" type="xsd:integer" />
        <xsd:element name="data" type="xsd:float" maxOccurs="*"
            dimensionPlacement="before" dimensionName="size" />
      </xsd:complexType>
    </xsd:schema>"#;

    #[test]
    fn simple_schema_passes_across_matrix() {
        let report = analyze_xml(SCHEMA);
        assert!(report.passed(), "{:#?}", report.diagnostics);
        assert_eq!(report.formats_checked, MACHINE_MATRIX.len());
        assert_eq!(report.encode_plans_checked, MACHINE_MATRIX.len());
        // Ordered pairs of distinct machines.
        let pairs = MACHINE_MATRIX.len() * (MACHINE_MATRIX.len() - 1);
        assert_eq!(report.convert_plans_checked, pairs);
    }

    #[test]
    fn parse_failure_is_reported_not_panicked() {
        let report = analyze_xml("<not-xml");
        assert!(!report.passed());
        assert_eq!(report.diagnostics[0].stage, Stage::Schema);
    }

    #[test]
    fn xmit_bind_path_analyzes_clean() {
        let toolkit = Xmit::new(MachineModel::native());
        toolkit.load_str(SCHEMA).unwrap();
        let report = analyze_xmit(&toolkit);
        assert!(report.passed(), "{:#?}", report.diagnostics);
        assert_eq!(report.formats_checked, 1);
    }

    #[test]
    fn registry_path_analyzes_clean() {
        use openmeta_pbio::{FormatSpec, IOField};
        let registry = FormatRegistry::new(MachineModel::X86_64);
        registry
            .register(FormatSpec::new(
                "Point",
                vec![IOField::auto("x", "float", 8), IOField::auto("y", "float", 8)],
            ))
            .unwrap();
        let report = analyze_registry(&registry);
        assert!(report.passed(), "{:#?}", report.diagnostics);
    }
}
