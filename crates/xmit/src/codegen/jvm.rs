//! Java **bytecode** generation — the second, "more interesting" Java
//! integration of §3.2:
//!
//! > "More interestingly from our point of view, XMIT can generate Java
//! > bytecode corresponding to these classes through the use of a
//! > third-party bytecode generator.  These bytecodes are automatically
//! > loaded into the Java VM, so that the classes are immediately
//! > available to the running system."
//!
//! The third-party generator is replaced by a from-scratch JVM class-file
//! emitter (JVMS §4, major version 49 / Java 5 — no stack-map frames
//! required).  Each `complexType` becomes a public class with public
//! fields mirroring the elements, `implements java.io.Serializable`, and
//! a default constructor whose bytecode is the canonical
//! `aload_0; invokespecial Object.<init>; return`.
//!
//! A minimal class-file *reader* is included so generated classes can be
//! verified structurally (and so tests don't need a JVM).

use std::collections::HashMap;

use openmeta_schema::xsd::XsdPrimitive;
use openmeta_schema::{ComplexType, Occurs, TypeRef};

use crate::error::XmitError;

const MAGIC: u32 = 0xCAFE_BABE;
/// Class-file version 49.0 (Java 5): modern enough for any JVM, old
/// enough to need no StackMapTable.
const MAJOR: u16 = 49;
const MINOR: u16 = 0;

const ACC_PUBLIC: u16 = 0x0001;
const ACC_SUPER: u16 = 0x0020;

/// JVM field descriptor for a schema element type.
fn descriptor(t: &TypeRef) -> String {
    match t {
        TypeRef::Primitive(p) => match p {
            XsdPrimitive::String => "Ljava/lang/String;".to_string(),
            XsdPrimitive::Boolean => "Z".to_string(),
            XsdPrimitive::Float => "F".to_string(),
            XsdPrimitive::Double => "D".to_string(),
            XsdPrimitive::Integer | XsdPrimitive::Int => "I".to_string(),
            XsdPrimitive::Short => "S".to_string(),
            XsdPrimitive::Byte => "B".to_string(),
            XsdPrimitive::Long
            | XsdPrimitive::UnsignedLong
            | XsdPrimitive::NonNegativeInteger
            | XsdPrimitive::UnsignedInt => "J".to_string(),
            XsdPrimitive::UnsignedShort => "I".to_string(),
            XsdPrimitive::UnsignedByte => "S".to_string(),
        },
        TypeRef::Named(n) => format!("L{n};"),
    }
}

/// Constant-pool builder with deduplication.
#[derive(Default)]
struct ConstPool {
    entries: Vec<CpEntry>,
    utf8_index: HashMap<String, u16>,
}

enum CpEntry {
    Utf8(String),
    Class(u16),
    NameAndType(u16, u16),
    MethodRef(u16, u16),
}

impl ConstPool {
    fn utf8(&mut self, s: &str) -> u16 {
        if let Some(&i) = self.utf8_index.get(s) {
            return i;
        }
        self.entries.push(CpEntry::Utf8(s.to_string()));
        let i = self.entries.len() as u16; // constant pool is 1-based
        self.utf8_index.insert(s.to_string(), i);
        i
    }

    fn class(&mut self, name: &str) -> u16 {
        let n = self.utf8(name);
        self.entries.push(CpEntry::Class(n));
        self.entries.len() as u16
    }

    fn name_and_type(&mut self, name: &str, descriptor: &str) -> u16 {
        let n = self.utf8(name);
        let d = self.utf8(descriptor);
        self.entries.push(CpEntry::NameAndType(n, d));
        self.entries.len() as u16
    }

    fn method_ref(&mut self, class: u16, nat: u16) -> u16 {
        self.entries.push(CpEntry::MethodRef(class, nat));
        self.entries.len() as u16
    }

    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&((self.entries.len() as u16 + 1).to_be_bytes()));
        for e in &self.entries {
            match e {
                CpEntry::Utf8(s) => {
                    out.push(1);
                    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                CpEntry::Class(n) => {
                    out.push(7);
                    out.extend_from_slice(&n.to_be_bytes());
                }
                CpEntry::NameAndType(n, d) => {
                    out.push(12);
                    out.extend_from_slice(&n.to_be_bytes());
                    out.extend_from_slice(&d.to_be_bytes());
                }
                CpEntry::MethodRef(c, nat) => {
                    out.push(10);
                    out.extend_from_slice(&c.to_be_bytes());
                    out.extend_from_slice(&nat.to_be_bytes());
                }
            }
        }
    }
}

/// Generate a `.class` file for `ct`.  `package` (dot-separated) prefixes
/// the internal class name when given.
pub fn generate_classfile(ct: &ComplexType, package: Option<&str>) -> Result<Vec<u8>, XmitError> {
    let internal_name = match package {
        Some(p) => format!("{}/{}", p.replace('.', "/"), ct.name),
        None => ct.name.clone(),
    };
    let mut cp = ConstPool::default();
    let this_class = cp.class(&internal_name);
    let super_class = cp.class("java/lang/Object");
    let serializable = cp.class("java/io/Serializable");
    let init_nat = cp.name_and_type("<init>", "()V");
    let object_init = cp.method_ref(super_class, init_nat);
    let code_attr = cp.utf8("Code");
    let init_name = cp.utf8("<init>");
    let init_desc = cp.utf8("()V");

    // Fields: one per element; dynamic/bounded arrays become [T.
    let mut fields: Vec<(u16, u16)> = Vec::new();
    for e in &ct.elements {
        let base = descriptor(&e.type_ref);
        let desc = match e.occurs {
            Occurs::One => base,
            Occurs::Bounded(_) | Occurs::Unbounded => format!("[{base}"),
        };
        if !is_java_identifier(&e.name) {
            return Err(XmitError::Binding(format!(
                "element '{}' is not a legal Java field name",
                e.name
            )));
        }
        fields.push((cp.utf8(&e.name), cp.utf8(&desc)));
    }

    let mut out = Vec::with_capacity(512);
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&MINOR.to_be_bytes());
    out.extend_from_slice(&MAJOR.to_be_bytes());
    cp.write(&mut out);
    out.extend_from_slice(&(ACC_PUBLIC | ACC_SUPER).to_be_bytes());
    out.extend_from_slice(&this_class.to_be_bytes());
    out.extend_from_slice(&super_class.to_be_bytes());
    // interfaces: Serializable
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&serializable.to_be_bytes());
    // fields
    out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
    for (name, desc) in &fields {
        out.extend_from_slice(&ACC_PUBLIC.to_be_bytes());
        out.extend_from_slice(&name.to_be_bytes());
        out.extend_from_slice(&desc.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // no attributes
    }
    // methods: the default constructor
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&ACC_PUBLIC.to_be_bytes());
    out.extend_from_slice(&init_name.to_be_bytes());
    out.extend_from_slice(&init_desc.to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // one attribute: Code
    out.extend_from_slice(&code_attr.to_be_bytes());
    // Code attribute body
    let bytecode: [u8; 5] = [
        0x2a, // aload_0
        0xb7, // invokespecial
        (object_init >> 8) as u8,
        object_init as u8,
        0xb1, // return
    ];
    let code_len = 2 + 2 + 4 + bytecode.len() + 2 + 2; // stack+locals+len+code+exc+attrs
    out.extend_from_slice(&(code_len as u32).to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // max_stack
    out.extend_from_slice(&1u16.to_be_bytes()); // max_locals (this)
    out.extend_from_slice(&(bytecode.len() as u32).to_be_bytes());
    out.extend_from_slice(&bytecode);
    out.extend_from_slice(&0u16.to_be_bytes()); // exception table
    out.extend_from_slice(&0u16.to_be_bytes()); // code attributes
                                                // class attributes
    out.extend_from_slice(&0u16.to_be_bytes());
    Ok(out)
}

fn is_java_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !matches!(
            s,
            "class"
                | "int"
                | "long"
                | "float"
                | "double"
                | "boolean"
                | "byte"
                | "short"
                | "char"
                | "void"
                | "public"
                | "private"
                | "static"
                | "final"
                | "new"
                | "this"
                | "super"
                | "return"
                | "if"
                | "else"
                | "while"
                | "for"
        )
}

// ---------------------------------------------------------------------------
// Structural reader, for verification without a JVM.
// ---------------------------------------------------------------------------

/// A structurally parsed class file (the parts XMIT generates).
#[derive(Debug, PartialEq, Eq)]
pub struct ParsedClass {
    /// Internal class name (`pkg/Name`).
    pub name: String,
    /// Internal super-class name.
    pub super_name: String,
    /// Implemented interfaces.
    pub interfaces: Vec<String>,
    /// `(field name, descriptor)` pairs in order.
    pub fields: Vec<(String, String)>,
    /// Method `(name, descriptor)` pairs.
    pub methods: Vec<(String, String)>,
}

/// Parse a class file produced by [`generate_classfile`] (or any class
/// file restricted to the constant-pool kinds XMIT emits).
pub fn parse_classfile(bytes: &[u8]) -> Result<ParsedClass, XmitError> {
    let bad = |m: &str| XmitError::Binding(format!("class file: {m}"));
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], XmitError> {
        if pos + n > bytes.len() {
            return Err(bad("truncated"));
        }
        let s = &bytes[pos..pos + n];
        pos += n;
        Ok(s)
    };
    macro_rules! r_u16 {
        () => {
            u16::from_be_bytes(take(2)?.try_into().expect("2 bytes"))
        };
    }
    macro_rules! r_u32 {
        () => {
            u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"))
        };
    }

    if r_u32!() != MAGIC {
        return Err(bad("bad magic"));
    }
    let _minor = r_u16!();
    let _major = r_u16!();
    let cp_count = r_u16!() as usize;
    let mut utf8: HashMap<u16, String> = HashMap::new();
    let mut classes: HashMap<u16, u16> = HashMap::new();
    let mut i = 1u16;
    while (i as usize) < cp_count {
        let tag = take(1)?[0];
        match tag {
            1 => {
                let len = r_u16!() as usize;
                let s = String::from_utf8(take(len)?.to_vec())
                    .map_err(|_| bad("utf8 entry not UTF-8"))?;
                utf8.insert(i, s);
            }
            7 => {
                let n = r_u16!();
                classes.insert(i, n);
            }
            9..=12 => {
                let _ = r_u16!();
                let _ = r_u16!();
            }
            3 | 4 => {
                let _ = r_u32!();
            }
            5 | 6 => {
                let _ = r_u32!();
                let _ = r_u32!();
                i += 1; // longs/doubles take two slots
            }
            8 => {
                let _ = r_u16!();
            }
            other => return Err(bad(&format!("unsupported constant tag {other}"))),
        }
        i += 1;
    }
    let class_name = |idx: u16| -> Result<String, XmitError> {
        let n = classes.get(&idx).ok_or_else(|| bad("bad class index"))?;
        utf8.get(n).cloned().ok_or_else(|| bad("bad class name index"))
    };

    let _access = r_u16!();
    let this_class = r_u16!();
    let super_class = r_u16!();
    let iface_count = r_u16!() as usize;
    let mut interfaces = Vec::with_capacity(iface_count);
    for _ in 0..iface_count {
        let idx = r_u16!();
        interfaces.push(class_name(idx)?);
    }
    let field_count = r_u16!() as usize;
    let mut fields = Vec::with_capacity(field_count);
    for _ in 0..field_count {
        let _acc = r_u16!();
        let name = r_u16!();
        let desc = r_u16!();
        let attrs = r_u16!() as usize;
        for _ in 0..attrs {
            let _name = r_u16!();
            let len = r_u32!() as usize;
            take(len)?;
        }
        fields.push((
            utf8.get(&name).cloned().ok_or_else(|| bad("bad field name"))?,
            utf8.get(&desc).cloned().ok_or_else(|| bad("bad field descriptor"))?,
        ));
    }
    let method_count = r_u16!() as usize;
    let mut methods = Vec::with_capacity(method_count);
    for _ in 0..method_count {
        let _acc = r_u16!();
        let name = r_u16!();
        let desc = r_u16!();
        let attrs = r_u16!() as usize;
        for _ in 0..attrs {
            let _name = r_u16!();
            let len = r_u32!() as usize;
            take(len)?;
        }
        methods.push((
            utf8.get(&name).cloned().ok_or_else(|| bad("bad method name"))?,
            utf8.get(&desc).cloned().ok_or_else(|| bad("bad method descriptor"))?,
        ));
    }
    Ok(ParsedClass {
        name: class_name(this_class)?,
        super_name: class_name(super_class)?,
        interfaces,
        fields,
        methods,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_schema::parse_str;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn simple_data() -> ComplexType {
        parse_str(&format!(
            r#"<xsd:complexType name="SimpleData" xmlns:xsd="{XSD}">
                 <xsd:element name="timestep" type="xsd:integer" />
                 <xsd:element name="size" type="xsd:integer" />
                 <xsd:element name="data" type="xsd:float" maxOccurs="*"
                     dimensionName="size" />
               </xsd:complexType>"#
        ))
        .unwrap()
        .types
        .remove(0)
    }

    #[test]
    fn classfile_round_trips_through_reader() {
        let bytes = generate_classfile(&simple_data(), None).unwrap();
        let parsed = parse_classfile(&bytes).unwrap();
        assert_eq!(parsed.name, "SimpleData");
        assert_eq!(parsed.super_name, "java/lang/Object");
        assert_eq!(parsed.interfaces, vec!["java/io/Serializable".to_string()]);
        assert_eq!(
            parsed.fields,
            vec![
                ("timestep".to_string(), "I".to_string()),
                ("size".to_string(), "I".to_string()),
                ("data".to_string(), "[F".to_string()),
            ]
        );
        assert_eq!(parsed.methods, vec![("<init>".to_string(), "()V".to_string())]);
    }

    #[test]
    fn magic_and_version_are_correct() {
        let bytes = generate_classfile(&simple_data(), None).unwrap();
        assert_eq!(&bytes[0..4], &[0xCA, 0xFE, 0xBA, 0xBE]);
        assert_eq!(&bytes[4..8], &[0, 0, 0, 49]);
    }

    #[test]
    fn package_becomes_internal_prefix() {
        let bytes = generate_classfile(&simple_data(), Some("edu.gatech.xmit")).unwrap();
        let parsed = parse_classfile(&bytes).unwrap();
        assert_eq!(parsed.name, "edu/gatech/xmit/SimpleData");
    }

    #[test]
    fn descriptors_cover_every_primitive() {
        let mut elements = String::new();
        for (i, p) in XsdPrimitive::all().iter().enumerate() {
            elements.push_str(&format!(
                "<xsd:element name=\"f{i}\" type=\"xsd:{}\" />",
                p.local_name()
            ));
        }
        let ct = parse_str(&format!(
            "<xsd:complexType name=\"All\" xmlns:xsd=\"{XSD}\">{elements}</xsd:complexType>"
        ))
        .unwrap()
        .types
        .remove(0);
        let parsed = parse_classfile(&generate_classfile(&ct, None).unwrap()).unwrap();
        assert_eq!(parsed.fields.len(), XsdPrimitive::all().len());
        let descs: Vec<&str> = parsed.fields.iter().map(|(_, d)| d.as_str()).collect();
        assert!(descs.contains(&"Ljava/lang/String;"));
        assert!(descs.contains(&"D"));
        assert!(descs.contains(&"J"));
        assert!(descs.contains(&"Z"));
    }

    #[test]
    fn composition_references_the_other_class() {
        let doc = parse_str(&format!(
            r#"<xsd:schema xmlns:xsd="{XSD}">
                 <xsd:complexType name="Hdr">
                   <xsd:element name="seq" type="xsd:int" /></xsd:complexType>
                 <xsd:complexType name="Msg">
                   <xsd:element name="hdr" type="Hdr" /></xsd:complexType>
               </xsd:schema>"#
        ))
        .unwrap();
        let msg = doc.get("Msg").unwrap();
        let parsed = parse_classfile(&generate_classfile(msg, None).unwrap()).unwrap();
        assert_eq!(parsed.fields, vec![("hdr".to_string(), "LHdr;".to_string())]);
    }

    #[test]
    fn illegal_field_names_rejected() {
        let mut ct = simple_data();
        ct.elements[0].name = "class".to_string();
        assert!(generate_classfile(&ct, None).is_err());
    }

    #[test]
    fn constructor_bytecode_is_canonical() {
        let bytes = generate_classfile(&simple_data(), None).unwrap();
        // The 5-byte constructor body must appear verbatim: aload_0,
        // invokespecial #k, return.
        let found = bytes.windows(5).any(|w| w[0] == 0x2a && w[1] == 0xb7 && w[4] == 0xb1);
        assert!(found, "canonical <init> bytecode missing");
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(parse_classfile(&[]).is_err());
        assert!(parse_classfile(&[0xCA, 0xFE]).is_err());
        assert!(parse_classfile(&[0u8; 64]).is_err());
        let mut bytes = generate_classfile(&simple_data(), None).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(parse_classfile(&bytes).is_err());
    }
}
