//! Language-level code generation from schema metadata (§3.2).
//!
//! XMIT "can generate Java source code from a set of XML Schema
//! descriptions, with the individual elements of each complexType
//! represented as fields of a class"; this module implements that path
//! ([`java`]), plus the inverse of Figure 2: C struct and `IOField`
//! declarations for programs that still want compiled-in metadata ([`c`]).
//!
//! The paper's second Java path — direct **bytecode** generation, "so
//! that the classes are immediately available to the running system" —
//! is implemented in [`jvm`]: a from-scratch JVM class-file emitter (and
//! structural reader, used for verification without a JVM).  The
//! conclusion's plan to generate "message object representations in both
//! C++ and Java" is completed by [`cpp`].

pub mod c;
pub mod cpp;
pub mod java;
pub mod jvm;
