//! Propagation of centralized format changes.
//!
//! §3: "changes to the message formats used by distributed programs can
//! be centralized, and XMIT ensures that they are propagated to all
//! program components using these formats."  The toolkit's `refresh` is
//! the pull half; this module supplies the push half: a [`FormatWatcher`]
//! polls a metadata URL and re-binds through a shared [`Xmit`] whenever
//! the document changes, notifying subscribers with the fresh tokens.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::XmitError;
use crate::toolkit::{BindingToken, LoadOutcome, Xmit};

/// A format-change notification.
#[derive(Debug, Clone)]
pub struct FormatChange {
    /// The URL that changed.
    pub url: String,
    /// Freshly bound tokens for every type the document now defines.
    pub tokens: Vec<BindingToken>,
}

/// Watches one metadata URL for changes.
///
/// Dropping the watcher stops the polling thread promptly: the poll wait
/// is a channel receive with a timeout, so a stop signal wakes it
/// immediately instead of letting drop block for up to a full interval.
pub struct FormatWatcher {
    stop_tx: Sender<()>,
    versions_seen: Arc<AtomicU64>,
    poll_errors: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
    receiver: Receiver<FormatChange>,
}

impl FormatWatcher {
    /// Start watching `url` through `toolkit`, polling every `interval`.
    ///
    /// The document is fetched and bound once immediately (so the first
    /// notification is the initial state), then revalidated on the
    /// interval with a conditional GET; a notification fires only when
    /// the content actually changes.
    pub fn start(
        toolkit: Arc<Xmit>,
        url: impl Into<String>,
        interval: Duration,
    ) -> Result<FormatWatcher, XmitError> {
        let url = url.into();
        let versions_seen = Arc::new(AtomicU64::new(0));
        let poll_errors = Arc::new(AtomicU64::new(0));
        let (tx, rx): (Sender<FormatChange>, Receiver<FormatChange>) = unbounded();
        let (stop_tx, stop_rx): (Sender<()>, Receiver<()>) = unbounded();

        // Initial load happens on the caller's thread so errors surface.
        let initial = toolkit.load_url_cached(&url)?;
        publish(&toolkit, &url, initial.into_names(), &tx)?;
        versions_seen.store(1, Ordering::Release);

        let (seen2, errors2) = (versions_seen.clone(), poll_errors.clone());
        let thread = std::thread::spawn(move || loop {
            // The interval wait doubles as the stop signal: a message (or
            // the watcher's sender going away) wakes the thread at once.
            match stop_rx.recv_timeout(interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            // A conditional GET (or a content-hash match) classifies
            // unchanged documents without re-parsing; only a genuine
            // change comes back as `Loaded`.
            match toolkit.revalidate(&url) {
                Ok(LoadOutcome::Loaded(names)) => {
                    if publish(&toolkit, &url, names, &tx).is_ok() {
                        seen2.fetch_add(1, Ordering::AcqRel);
                    } else {
                        errors2.fetch_add(1, Ordering::AcqRel);
                    }
                }
                Ok(_) => {}
                // A failed poll (server down, document withdrawn, parse
                // error) is not silent: the component keeps its last good
                // binding and the failure is visible on the counter.
                Err(_) => {
                    errors2.fetch_add(1, Ordering::AcqRel);
                }
            }
        });
        Ok(FormatWatcher {
            stop_tx,
            versions_seen,
            poll_errors,
            thread: Some(thread),
            receiver: rx,
        })
    }

    /// The channel change notifications arrive on.
    pub fn changes(&self) -> &Receiver<FormatChange> {
        &self.receiver
    }

    /// How many document versions (including the initial one) have been
    /// seen and bound.
    pub fn versions_seen(&self) -> u64 {
        self.versions_seen.load(Ordering::Acquire)
    }

    /// How many polls failed (fetch error, withdrawn document, bad
    /// content).  The watcher keeps polling — and keeps the last good
    /// binding — but failures are counted, not discarded.
    pub fn poll_errors(&self) -> u64 {
        self.poll_errors.load(Ordering::Acquire)
    }
}

impl Drop for FormatWatcher {
    fn drop(&mut self) {
        // Wake the poll thread out of its interval wait immediately;
        // drop must not block for up to a full poll interval.
        let _ = self.stop_tx.send(());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn publish(
    toolkit: &Xmit,
    url: &str,
    names: Vec<String>,
    tx: &Sender<FormatChange>,
) -> Result<(), XmitError> {
    let tokens: Result<Vec<BindingToken>, XmitError> =
        names.iter().map(|n| toolkit.bind(n)).collect();
    let _ = tx.send(FormatChange { url: url.to_string(), tokens: tokens? });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_ohttp::HttpServer;
    use openmeta_pbio::MachineModel;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn doc(fields: &str) -> String {
        format!(
            r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
                 <xsd:element name="a" type="xsd:int" />{fields}
               </xsd:complexType>"#
        )
    }

    #[test]
    fn initial_state_delivered_immediately() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher =
            FormatWatcher::start(toolkit, http.url_for("/evt.xsd"), Duration::from_millis(5))
                .unwrap();
        let change = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(change.tokens.len(), 1);
        assert_eq!(change.tokens[0].type_name, "Evt");
        assert_eq!(watcher.versions_seen(), 1);
    }

    #[test]
    fn central_change_propagates() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher = FormatWatcher::start(
            toolkit.clone(),
            http.url_for("/evt.xsd"),
            Duration::from_millis(5),
        )
        .unwrap();
        let v1 = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();

        // The format evolves centrally …
        http.put_xml("/evt.xsd", doc(r#"<xsd:element name="b" type="xsd:double" />"#));
        // … and the component hears about it without doing anything.
        let v2 = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_ne!(v1.tokens[0].id(), v2.tokens[0].id());
        assert_eq!(v2.tokens[0].format.fields.len(), 2);
        // The toolkit's binding now reflects v2 for everyone sharing it.
        assert_eq!(toolkit.bind("Evt").unwrap().id(), v2.tokens[0].id());
        // And v1 remains addressable for in-flight messages.
        assert!(toolkit.registry().lookup_id(v1.tokens[0].id()).is_some());
    }

    #[test]
    fn unchanged_documents_do_not_spam() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher =
            FormatWatcher::start(toolkit, http.url_for("/evt.xsd"), Duration::from_millis(2))
                .unwrap();
        let _initial = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(watcher.versions_seen(), 1, "no change, no notification");
        assert!(watcher.changes().try_recv().is_err());
    }

    #[test]
    fn drop_is_prompt_even_with_long_poll_interval() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher =
            FormatWatcher::start(toolkit, http.url_for("/evt.xsd"), Duration::from_secs(60))
                .unwrap();
        let _ = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        let start = std::time::Instant::now();
        drop(watcher);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must wake the poll thread, not wait out the interval"
        );
    }

    #[test]
    fn failed_polls_are_counted_not_discarded() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher = FormatWatcher::start(
            toolkit.clone(),
            http.url_for("/evt.xsd"),
            Duration::from_millis(5),
        )
        .unwrap();
        let _ = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(watcher.poll_errors(), 0);

        // The metadata host goes away; subsequent polls fail.
        drop(http);
        let start = std::time::Instant::now();
        while watcher.poll_errors() == 0 && start.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(watcher.poll_errors() > 0, "poll failures must surface on the counter");
        // The last good binding survives the outage.
        assert!(toolkit.bind("Evt").is_ok());
    }

    #[test]
    fn start_fails_fast_on_bad_url() {
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        assert!(FormatWatcher::start(toolkit, "mem://absent", Duration::from_millis(5)).is_err());
    }
}
