//! Propagation of centralized format changes.
//!
//! §3: "changes to the message formats used by distributed programs can
//! be centralized, and XMIT ensures that they are propagated to all
//! program components using these formats."  The toolkit's `refresh` is
//! the pull half; this module supplies the push half: a [`FormatWatcher`]
//! polls a metadata URL and re-binds through a shared [`Xmit`] whenever
//! the document changes, notifying subscribers with the fresh tokens.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::XmitError;
use crate::toolkit::{BindingToken, LoadOutcome, Xmit};

/// A format-change notification.
#[derive(Debug, Clone)]
pub struct FormatChange {
    /// The URL that changed.
    pub url: String,
    /// Freshly bound tokens for every type the document now defines.
    pub tokens: Vec<BindingToken>,
}

/// Watches one metadata URL for changes.
///
/// Dropping the watcher stops the polling thread.
pub struct FormatWatcher {
    stop: Arc<AtomicBool>,
    versions_seen: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
    receiver: Receiver<FormatChange>,
}

impl FormatWatcher {
    /// Start watching `url` through `toolkit`, polling every `interval`.
    ///
    /// The document is fetched and bound once immediately (so the first
    /// notification is the initial state), then revalidated on the
    /// interval with a conditional GET; a notification fires only when
    /// the content actually changes.
    pub fn start(
        toolkit: Arc<Xmit>,
        url: impl Into<String>,
        interval: Duration,
    ) -> Result<FormatWatcher, XmitError> {
        let url = url.into();
        let stop = Arc::new(AtomicBool::new(false));
        let versions_seen = Arc::new(AtomicU64::new(0));
        let (tx, rx): (Sender<FormatChange>, Receiver<FormatChange>) = unbounded();

        // Initial load happens on the caller's thread so errors surface.
        let initial = toolkit.load_url_cached(&url)?;
        publish(&toolkit, &url, initial.into_names(), &tx)?;
        versions_seen.store(1, Ordering::Release);

        let (stop2, seen2) = (stop.clone(), versions_seen.clone());
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                // A conditional GET (or a content-hash match) classifies
                // unchanged documents without re-parsing; only a genuine
                // change comes back as `Loaded`.
                if let Ok(LoadOutcome::Loaded(names)) = toolkit.revalidate(&url) {
                    if publish(&toolkit, &url, names, &tx).is_ok() {
                        seen2.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
        });
        Ok(FormatWatcher { stop, versions_seen, thread: Some(thread), receiver: rx })
    }

    /// The channel change notifications arrive on.
    pub fn changes(&self) -> &Receiver<FormatChange> {
        &self.receiver
    }

    /// How many document versions (including the initial one) have been
    /// seen and bound.
    pub fn versions_seen(&self) -> u64 {
        self.versions_seen.load(Ordering::Acquire)
    }
}

impl Drop for FormatWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn publish(
    toolkit: &Xmit,
    url: &str,
    names: Vec<String>,
    tx: &Sender<FormatChange>,
) -> Result<(), XmitError> {
    let tokens: Result<Vec<BindingToken>, XmitError> =
        names.iter().map(|n| toolkit.bind(n)).collect();
    let _ = tx.send(FormatChange { url: url.to_string(), tokens: tokens? });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_ohttp::HttpServer;
    use openmeta_pbio::MachineModel;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn doc(fields: &str) -> String {
        format!(
            r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
                 <xsd:element name="a" type="xsd:int" />{fields}
               </xsd:complexType>"#
        )
    }

    #[test]
    fn initial_state_delivered_immediately() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher =
            FormatWatcher::start(toolkit, http.url_for("/evt.xsd"), Duration::from_millis(5))
                .unwrap();
        let change = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(change.tokens.len(), 1);
        assert_eq!(change.tokens[0].type_name, "Evt");
        assert_eq!(watcher.versions_seen(), 1);
    }

    #[test]
    fn central_change_propagates() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher = FormatWatcher::start(
            toolkit.clone(),
            http.url_for("/evt.xsd"),
            Duration::from_millis(5),
        )
        .unwrap();
        let v1 = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();

        // The format evolves centrally …
        http.put_xml("/evt.xsd", doc(r#"<xsd:element name="b" type="xsd:double" />"#));
        // … and the component hears about it without doing anything.
        let v2 = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_ne!(v1.tokens[0].id(), v2.tokens[0].id());
        assert_eq!(v2.tokens[0].format.fields.len(), 2);
        // The toolkit's binding now reflects v2 for everyone sharing it.
        assert_eq!(toolkit.bind("Evt").unwrap().id(), v2.tokens[0].id());
        // And v1 remains addressable for in-flight messages.
        assert!(toolkit.registry().lookup_id(v1.tokens[0].id()).is_some());
    }

    #[test]
    fn unchanged_documents_do_not_spam() {
        let http = HttpServer::start().unwrap();
        http.put_xml("/evt.xsd", doc(""));
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        let watcher =
            FormatWatcher::start(toolkit, http.url_for("/evt.xsd"), Duration::from_millis(2))
                .unwrap();
        let _initial = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(watcher.versions_seen(), 1, "no change, no notification");
        assert!(watcher.changes().try_recv().is_err());
    }

    #[test]
    fn start_fails_fast_on_bad_url() {
        let toolkit = Arc::new(Xmit::new(MachineModel::native()));
        assert!(FormatWatcher::start(toolkit, "mem://absent", Duration::from_millis(5)).is_err());
    }
}
