//! Run-time type customization for less capable clients.
//!
//! §1's future-work scenario: "less capable visualization engines such as
//! handhelds can customize remote metadata for their own needs."  A
//! *projection* derives a narrowed `complexType` from a loaded one — a
//! subset of its elements, optionally with doubles narrowed to floats —
//! which then binds and decodes like any other format.  Because PBIO
//! conversion matches fields **by name**, a full-fat message from the
//! server decodes straight into the projected format: unselected fields
//! are skipped, doubles are narrowed at the receiver, and the sender
//! never knows.

use openmeta_schema::xsd::XsdPrimitive;
use openmeta_schema::{ComplexType, Occurs, TypeRef};

use crate::error::XmitError;

/// Options for deriving a client-side view of a format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Projection {
    /// Elements to keep, in the original order.  Dimension elements of
    /// kept dynamic arrays are retained automatically.
    pub keep: Vec<String>,
    /// Narrow `xsd:double` to `xsd:float` (half the memory and wire cost
    /// after re-encoding — the handheld case).
    pub narrow_doubles: bool,
    /// Suffix appended to the projected type's name; defaults to
    /// `"Projected"` when empty so ids never collide with the original.
    pub rename_suffix: String,
}

impl Projection {
    /// Keep the given fields, nothing else changed.
    pub fn keeping<S: Into<String>>(fields: impl IntoIterator<Item = S>) -> Projection {
        Projection { keep: fields.into_iter().map(Into::into).collect(), ..Projection::default() }
    }

    /// Also narrow doubles to floats.
    pub fn with_narrowing(mut self) -> Projection {
        self.narrow_doubles = true;
        self
    }
}

/// Derive a projected `complexType`.
pub fn project_type(ct: &ComplexType, projection: &Projection) -> Result<ComplexType, XmitError> {
    if projection.keep.is_empty() {
        return Err(XmitError::Binding("projection keeps no fields".to_string()));
    }
    for want in &projection.keep {
        if ct.element(want).is_none() {
            // Implicit dimension names are not projectable by themselves.
            return Err(XmitError::Binding(format!(
                "projection keeps '{want}', which '{}' does not declare",
                ct.name
            )));
        }
    }
    let mut keep: Vec<&str> = projection.keep.iter().map(String::as_str).collect();
    // Retain dimensions governing kept dynamic arrays.
    for e in &ct.elements {
        if keep.contains(&e.name.as_str()) && e.occurs == Occurs::Unbounded {
            if let Some(dim) = &e.dimension_name {
                if ct.element(dim).is_some() && !keep.contains(&dim.as_str()) {
                    keep.push(dim);
                }
            }
        }
    }
    let mut elements = Vec::new();
    for e in &ct.elements {
        if !keep.contains(&e.name.as_str()) {
            continue;
        }
        let mut out = e.clone();
        if projection.narrow_doubles {
            if let TypeRef::Primitive(XsdPrimitive::Double) = out.type_ref {
                out.type_ref = TypeRef::Primitive(XsdPrimitive::Float);
            }
        }
        if matches!(out.type_ref, TypeRef::Named(_)) {
            return Err(XmitError::Binding(format!(
                "projection of composed element '{}' is not supported; project the \
                 nested type instead",
                e.name
            )));
        }
        elements.push(out);
    }
    let suffix =
        if projection.rename_suffix.is_empty() { "Projected" } else { &projection.rename_suffix };
    Ok(ComplexType::new(format!("{}{suffix}", ct.name), elements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolkit::Xmit;
    use openmeta_pbio::MachineModel;
    use openmeta_schema::parse_str;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn flow_type() -> ComplexType {
        parse_str(&format!(
            r#"<xsd:complexType name="Flow" xmlns:xsd="{XSD}">
                 <xsd:element name="timestep" type="xsd:integer" />
                 <xsd:element name="station" type="xsd:string" />
                 <xsd:element name="ncells" type="xsd:integer" />
                 <xsd:element name="depth" type="xsd:double" maxOccurs="*"
                     dimensionName="ncells" />
                 <xsd:element name="velocity" type="xsd:double" maxOccurs="*"
                     dimensionName="nvel" />
                 <xsd:element name="quality" type="xsd:double" />
               </xsd:complexType>"#
        ))
        .unwrap()
        .types
        .remove(0)
    }

    #[test]
    fn keeps_fields_and_their_dimensions() {
        let p = project_type(&flow_type(), &Projection::keeping(["timestep", "depth"])).unwrap();
        assert_eq!(p.name, "FlowProjected");
        let names: Vec<&str> = p.elements.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["timestep", "ncells", "depth"]);
    }

    #[test]
    fn narrows_doubles() {
        let p =
            project_type(&flow_type(), &Projection::keeping(["quality"]).with_narrowing()).unwrap();
        assert_eq!(p.element("quality").unwrap().type_ref, TypeRef::Primitive(XsdPrimitive::Float));
    }

    #[test]
    fn unknown_and_empty_projections_rejected() {
        assert!(project_type(&flow_type(), &Projection::keeping(["nope"])).is_err());
        assert!(project_type(&flow_type(), &Projection::default()).is_err());
    }

    /// The §1 scenario, end to end: the server sends full-fat doubles;
    /// the handheld binds a narrowed projection and decodes the same
    /// wire bytes.
    #[test]
    fn handheld_decodes_full_message_through_projection() {
        let server = Xmit::new(MachineModel::native());
        server
            .load_str(&openmeta_schema::to_xml(&openmeta_schema::SchemaDocument {
                types: vec![flow_type()],
                enums: vec![],
            }))
            .unwrap();
        let full = server.bind("Flow").unwrap();
        let mut rec = full.new_record();
        rec.set_i64("timestep", 12).unwrap();
        rec.set_string("station", "upstream").unwrap();
        rec.set_f64_array("depth", &[1.25, 2.5, 3.75]).unwrap();
        rec.set_f64_array("velocity", &[0.125; 8]).unwrap();
        rec.set_f64("quality", 0.5).unwrap();
        let wire = crate::encode(&rec).unwrap();

        // The handheld: projected view, floats instead of doubles, no
        // velocity array at all.
        let handheld = Xmit::new(MachineModel::native());
        let projected = project_type(
            &flow_type(),
            &Projection::keeping(["timestep", "depth", "quality"]).with_narrowing(),
        )
        .unwrap();
        handheld
            .load_str(&openmeta_schema::to_xml(&openmeta_schema::SchemaDocument {
                types: vec![projected],
                enums: vec![],
            }))
            .unwrap();
        let small = handheld.bind("FlowProjected").unwrap();
        assert!(small.format.record_size < full.format.record_size);

        handheld.registry().register_descriptor((*full.format).clone());
        let got = crate::decode_with(&wire, handheld.registry(), &small.format).unwrap();
        assert_eq!(got.get_i64("timestep").unwrap(), 12);
        assert_eq!(got.get_f64("quality").unwrap(), 0.5);
        assert_eq!(got.get_f64_array("depth").unwrap(), vec![1.25, 2.5, 3.75]);
        assert!(got.get_string("station").is_err(), "dropped by projection");
        assert!(got.get_f64_array("velocity").is_err(), "dropped by projection");
    }

    /// Narrowing is lossy exactly like a C cast — values come back at f32
    /// precision.
    #[test]
    fn narrowing_quantizes_at_the_receiver() {
        let server = Xmit::new(MachineModel::native());
        server
            .load_str(&format!(
                r#"<xsd:complexType name="D" xmlns:xsd="{XSD}">
                     <xsd:element name="x" type="xsd:double" />
                   </xsd:complexType>"#
            ))
            .unwrap();
        let full = server.bind("D").unwrap();
        let mut rec = full.new_record();
        rec.set_f64("x", std::f64::consts::PI).unwrap();
        let wire = crate::encode(&rec).unwrap();

        let ct = server.definition("D").unwrap();
        let projected = project_type(&ct, &Projection::keeping(["x"]).with_narrowing()).unwrap();
        let handheld = Xmit::new(MachineModel::native());
        handheld
            .load_str(&openmeta_schema::to_xml(&openmeta_schema::SchemaDocument {
                types: vec![projected],
                enums: vec![],
            }))
            .unwrap();
        let small = handheld.bind("DProjected").unwrap();
        handheld.registry().register_descriptor((*full.format).clone());
        let got = crate::decode_with(&wire, handheld.registry(), &small.format).unwrap();
        assert_eq!(got.get_f64("x").unwrap(), std::f64::consts::PI as f32 as f64);
    }
}
