//! **XMIT** — the XML Metadata Integration Toolkit of Widener, Eisenhauer
//! & Schwan, *Open Metadata Formats: Efficient XML-Based Communication for
//! High Performance Computing* (HPDC 2001).
//!
//! XMIT separates the three uses of metadata the paper identifies:
//!
//! 1. **Discovery** — message formats are described as XML Schema
//!    `complexType`s and fetched from URLs at run time
//!    ([`Xmit::load_url`]).  Formats live *outside* programs; changing a
//!    format is changing a document on a server, not recompiling.
//! 2. **Binding** — loaded definitions are translated into native BCM
//!    metadata — PBIO format descriptors — and registered, yielding a
//!    [`BindingToken`] ([`Xmit::bind`]).
//! 3. **Marshaling** — records built against a token are encoded by PBIO's
//!    binary marshaler, identical in cost to compiled-in metadata (the
//!    paper's Figure 7).
//!
//! # Quickstart
//!
//! ```
//! use xmit::Xmit;
//! use openmeta_pbio::MachineModel;
//!
//! let toolkit = Xmit::new(MachineModel::native());
//! toolkit.source().put_mem("formats", r#"
//!   <xsd:complexType name="SimpleData"
//!       xmlns:xsd="http://www.w3.org/2001/XMLSchema">
//!     <xsd:element name="timestep" type="xsd:integer" />
//!     <xsd:element name="data" type="xsd:float" minOccurs="0"
//!         maxOccurs="*" dimensionPlacement="before" dimensionName="size" />
//!   </xsd:complexType>"#);
//! toolkit.load_url("mem://formats").unwrap();
//! let token = toolkit.bind("SimpleData").unwrap();
//!
//! let mut rec = token.new_record();
//! rec.set_i64("timestep", 9999).unwrap();
//! rec.set_f64_array("data", &[12.345, 12.345]).unwrap();
//! let wire = xmit::encode(&rec).unwrap();
//! let back = xmit::decode(&wire, toolkit.registry()).unwrap();
//! assert_eq!(back.get_i64("timestep").unwrap(), 9999);
//! ```

#![deny(unsafe_code)]

pub mod codegen;
pub mod error;
pub mod evolution;
pub mod mapping;
pub mod matching;
pub mod messaging;
pub mod negotiate;
pub mod projection;
pub mod toolkit;
pub mod watcher;

pub use error::XmitError;
pub use evolution::{diff_descriptors, diff_types, Compatibility, EvolutionReport, FieldChange};
pub use mapping::{map_document, map_type};
pub use matching::{best_match, match_message, MatchReport};
pub use messaging::{XmitReceiver, XmitSender};
pub use negotiate::{
    classify, Accept, AcceptEntry, Hello, NegotiateInitiator, NegotiateReply, NegotiateResponder,
    NegotiationCache, NegotiationStats, PairVerdict, VersionOffer,
};
pub use projection::{project_type, Projection};
pub use toolkit::{BindingToken, LoadOutcome, SchemaCacheStats, Xmit};
pub use watcher::{FormatChange, FormatWatcher};

// Re-exports so applications only need the `xmit` crate.
pub use openmeta_ohttp::{DocumentSource, HttpServer, StandardSource, Url};
pub use openmeta_pbio::{
    decode, decode_borrowed, decode_with, encode, encode_into, Decoded, Encoder, FormatDescriptor,
    FormatId, FormatRegistry, FormatSpec, IOField, MachineModel, MarshalStats, RawRecord,
    RecordView, Value,
};
pub use openmeta_schema::{ComplexType, SchemaDocument};
