//! Point-to-point messaging with self-announcing formats.
//!
//! A sender transmits a format's descriptor once, before the first record
//! of that format, so receivers can decode with no prior agreement — the
//! transport-level realization of "format identifiers are generated which
//! allow component programs to retrieve the metadata on demand".  Records
//! themselves carry only the id.
//!
//! ```text
//! frame := len:u32be kind:u8 payload
//!          kind 1: payload = format descriptor (pbio::codec)
//!          kind 2: payload = one encoded record (pbio::marshal)
//! ```

use std::collections::HashSet;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use openmeta_net::{
    connect_retrying, harden_stream, read_frame_blocking, write_all_vectored, LengthFramer,
    TransportConfig, READ_CHUNK,
};
use openmeta_pbio::codec::{decode_descriptor, encode_descriptor};
use openmeta_pbio::{
    decode, Encoder, FormatDescriptor, FormatId, FormatRegistry, PbioError, RawRecord,
};

use crate::error::XmitError;
use crate::negotiate::{
    Accept, Hello, NegotiateInitiator, NegotiateReply, NegotiationCache, FRAME_ACCEPT, FRAME_HELLO,
    FRAME_REJECT,
};

pub(crate) const FRAME_FORMAT: u8 = 1;
pub(crate) const FRAME_RECORD: u8 = 2;
pub(crate) const MAX_FRAME: usize = 64 << 20;

/// Frame header: `len:u32be kind:u8`, built on the stack.
fn frame_header(kind: u8, payload: &[u8]) -> Result<[u8; 5], XmitError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| XmitError::Bcm(PbioError::Io("frame too large".to_string())))?;
    let mut hdr = [0u8; 5];
    hdr[0..4].copy_from_slice(&len.to_be_bytes());
    hdr[4] = kind;
    Ok(hdr)
}

fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<(), XmitError> {
    // One gather-write per frame: pushing the header and payload in
    // separate syscalls hands Nagle + delayed ACK a ~40 ms stall per
    // message on a keep-alive connection.  The vectored write keeps the
    // single-syscall property without coalescing into a scratch buffer,
    // so a burst of large records never pins a peak-sized allocation.
    let hdr = frame_header(kind, payload)?;
    write_all_vectored(stream, &[&hdr, payload]).map_err(PbioError::from)?;
    Ok(())
}

/// Sends records over a TCP stream, announcing formats on first use.
pub struct XmitSender {
    stream: TcpStream,
    announced: HashSet<FormatId>,
    /// Cached encode plans + pooled wire buffer: steady-state sends do
    /// no per-message descriptor walking and no allocation.  Frames go
    /// out as header+payload gather-writes, so no second copy of the
    /// encoded record is ever held.
    enc: Encoder,
}

impl XmitSender {
    /// Connect to a receiver with default deadlines and retry backoff.
    pub fn connect(addr: impl ToSocketAddrs + Copy) -> Result<XmitSender, XmitError> {
        XmitSender::connect_with(addr, &TransportConfig::default())
    }

    /// Connect with explicit connect/read/write deadlines and a
    /// retry-with-backoff schedule for the connect itself, so a receiver
    /// that is still starting up (or restarting) does not fail the sender.
    pub fn connect_with(
        addr: impl ToSocketAddrs + Copy,
        cfg: &TransportConfig,
    ) -> Result<XmitSender, XmitError> {
        let stream = connect_retrying(addr, cfg).map_err(PbioError::from)?;
        Ok(XmitSender::from_stream(stream))
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> XmitSender {
        // Frames are written whole; Nagle would park small records behind
        // delayed ACKs.  Best effort: a stream that cannot take options
        // still transmits.
        let _ = stream.set_nodelay(true);
        XmitSender { stream, announced: HashSet::new(), enc: Encoder::new() }
    }

    /// Send one record.  The format descriptor precedes the first record
    /// of each format on this connection.
    pub fn send(&mut self, rec: &RawRecord) -> Result<(), XmitError> {
        let _span = openmeta_obs::span!("transport.send");
        let id = rec.format().id();
        if self.announced.insert(id) {
            // First record of this format: the descriptor frame and the
            // record frame leave in one gather-write, so the announcement
            // never rides a separate (Nagle-delayed) segment.
            let desc = encode_descriptor(rec.format());
            let desc_hdr = frame_header(FRAME_FORMAT, &desc)?;
            let wire = self.enc.encode(rec)?;
            let rec_hdr = frame_header(FRAME_RECORD, wire)?;
            write_all_vectored(&mut self.stream, &[&desc_hdr, &desc, &rec_hdr, wire])
                .map_err(PbioError::from)?;
        } else {
            let wire = self.enc.encode(rec)?;
            write_frame(&mut self.stream, FRAME_RECORD, wire)?;
        }
        self.stream.flush().map_err(PbioError::from)?;
        Ok(())
    }

    /// Marshal counters for this sender's encoder (allocations observed
    /// and bytes copied), for steady-state zero-allocation assertions.
    pub fn marshal_stats(&self) -> openmeta_pbio::MarshalStats {
        self.enc.marshal_stats()
    }

    /// Negotiate versions for `formats` before any record flows: one
    /// `HELLO` frame carries every descriptor, and the receiver's
    /// `ACCEPT` names the verdict and target version per format — or
    /// `REJECT` refuses the connection outright
    /// ([`XmitError::Negotiation`]), so incompatible versions fail at
    /// setup instead of mid-stream.
    ///
    /// Accepted formats are marked announced: the receiver registered
    /// their descriptors from the `HELLO`, so [`XmitSender::send`] never
    /// emits a separate FORMAT frame for them.
    pub fn negotiate(&mut self, formats: &[&Arc<FormatDescriptor>]) -> Result<Accept, XmitError> {
        use std::io::Read;
        let _span = openmeta_obs::span!("negotiate.handshake");
        let hello = Hello::from_formats(formats);
        write_frame(&mut self.stream, FRAME_HELLO, &hello.encode())?;
        self.stream.flush().map_err(PbioError::from)?;

        let mut m = NegotiateInitiator::new();
        let reply = loop {
            if let Some(reply) = m.poll()? {
                break reply;
            }
            let need = m.bytes_needed().clamp(1, READ_CHUNK);
            let mut chunk = vec![0u8; need];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(XmitError::Negotiation(
                        "connection closed during handshake".to_string(),
                    ))
                }
                Ok(n) => m.push(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(XmitError::Bcm(PbioError::from(e))),
            }
        };
        match reply {
            NegotiateReply::Accepted(accept) => {
                for entry in &accept.entries {
                    self.announced.insert(entry.sender);
                }
                Ok(accept)
            }
            NegotiateReply::Rejected(reason) => Err(XmitError::Negotiation(reason)),
        }
    }
}

/// Receives records from a TCP stream, learning formats as they arrive
/// and converting to the local registry's machine model.
pub struct XmitReceiver {
    stream: TcpStream,
    registry: Arc<FormatRegistry>,
    framer: LengthFramer,
    negotiation: Arc<NegotiationCache>,
}

impl XmitReceiver {
    /// Wrap an accepted stream; decoded records are converted to
    /// `registry`'s formats when it holds a same-named registration.
    /// Handshakes are answered from the process-wide
    /// [`NegotiationCache`].
    pub fn new(stream: TcpStream, registry: Arc<FormatRegistry>) -> XmitReceiver {
        XmitReceiver {
            stream,
            registry,
            framer: LengthFramer::with_kind_byte(MAX_FRAME),
            negotiation: NegotiationCache::global().clone(),
        }
    }

    /// Answer handshakes from `cache` instead of the process-wide one
    /// (isolated caches keep tests and benchmarks honest).
    pub fn set_negotiation_cache(&mut self, cache: Arc<NegotiationCache>) {
        self.negotiation = cache;
    }

    /// Wrap an accepted stream with `cfg`'s read/write deadlines applied,
    /// so a stalled sender surfaces as a timeout error from `recv` rather
    /// than blocking forever.
    pub fn new_with(
        stream: TcpStream,
        registry: Arc<FormatRegistry>,
        cfg: &TransportConfig,
    ) -> Result<XmitReceiver, XmitError> {
        harden_stream(&stream, cfg).map_err(PbioError::from)?;
        Ok(XmitReceiver::new(stream, registry))
    }

    /// The registry formats are resolved against.
    pub fn registry(&self) -> &Arc<FormatRegistry> {
        &self.registry
    }

    /// Read one frame through the sans-io [`LengthFramer`] — the same
    /// decoder the event-loop backend feeds from its readiness sweep.
    /// The untrusted-length discipline carries over: the framer only
    /// buffers bytes that actually arrived, and an oversized length
    /// prefix is rejected as soon as the header is complete.
    fn read_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, XmitError> {
        match read_frame_blocking(&mut self.stream, &mut self.framer) {
            Ok(frame) => Ok(frame),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                Err(XmitError::Bcm(PbioError::BadWireData(e.to_string())))
            }
            Err(e) => Err(XmitError::Bcm(PbioError::from(e))),
        }
    }

    /// Receive the next record; `Ok(None)` when the sender hung up
    /// cleanly.
    pub fn recv(&mut self) -> Result<Option<RawRecord>, XmitError> {
        loop {
            let Some((kind, payload)) = self.read_frame()? else { return Ok(None) };
            // Scoped to frame *processing*: the blocking wait for the
            // peer's next frame would otherwise dominate the histogram.
            let _span = openmeta_obs::span!("transport.recv");
            match kind {
                FRAME_FORMAT => {
                    let desc = decode_descriptor(&payload)?;
                    self.registry.register_descriptor(desc);
                }
                FRAME_RECORD => return Ok(Some(decode(&payload, &self.registry)?)),
                FRAME_HELLO => {
                    // A negotiating sender: classify its offers against
                    // our registry, answer ACCEPT (and keep receiving)
                    // or REJECT (and fail the connection here, before
                    // any record rides an incompatible version).
                    let _span = openmeta_obs::span!("negotiate.respond");
                    let hello = Hello::decode(&payload)?;
                    match self.negotiation.respond(&hello, &self.registry) {
                        Ok(accept) => {
                            write_frame(&mut self.stream, FRAME_ACCEPT, &accept.encode())?;
                            self.stream.flush().map_err(PbioError::from)?;
                        }
                        Err(e) => {
                            let reason = match &e {
                                XmitError::Negotiation(r) => r.clone(),
                                other => other.to_string(),
                            };
                            write_frame(&mut self.stream, FRAME_REJECT, reason.as_bytes())?;
                            self.stream.flush().map_err(PbioError::from)?;
                            return Err(e);
                        }
                    }
                }
                other => {
                    return Err(XmitError::Bcm(PbioError::BadWireData(format!(
                        "unknown frame kind {other}"
                    ))))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolkit::Xmit;
    use openmeta_pbio::MachineModel;
    use std::io::Read;
    use std::net::TcpListener;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn simple_data_xml() -> String {
        format!(
            r#"<xsd:complexType name="SimpleData" xmlns:xsd="{XSD}">
                 <xsd:element name="timestep" type="xsd:integer" />
                 <xsd:element name="data" type="xsd:float" minOccurs="0"
                     maxOccurs="*" dimensionPlacement="before" dimensionName="size" />
               </xsd:complexType>"#
        )
    }

    #[test]
    fn records_flow_with_no_prior_agreement() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();

        let receiver_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // The receiver registry starts empty: all metadata arrives
            // through the connection.
            let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
            let mut rx = XmitReceiver::new(stream, registry);
            let mut seen = Vec::new();
            while let Some(rec) = rx.recv().unwrap() {
                seen.push((rec.get_i64("timestep").unwrap(), rec.get_f64_array("data").unwrap()));
            }
            seen
        });

        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&simple_data_xml()).unwrap();
        let token = xmit.bind("SimpleData").unwrap();
        let mut tx = XmitSender::connect(addr).unwrap();
        for t in 0..5 {
            let mut rec = token.new_record();
            rec.set_i64("timestep", t).unwrap();
            rec.set_f64_array("data", &[t as f64 * 0.5; 3]).unwrap();
            tx.send(&rec).unwrap();
        }
        drop(tx);

        let seen = receiver_thread.join().unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4].0, 4);
        assert_eq!(seen[4].1, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn descriptor_sent_once_per_format() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let counter = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut formats = 0usize;
            let mut records = 0usize;
            loop {
                let mut len_buf = [0u8; 4];
                if stream.read_exact(&mut len_buf).is_err() {
                    break;
                }
                let len = u32::from_be_bytes(len_buf) as usize;
                let mut kind = [0u8; 1];
                stream.read_exact(&mut kind).unwrap();
                let mut payload = vec![0u8; len];
                stream.read_exact(&mut payload).unwrap();
                match kind[0] {
                    FRAME_FORMAT => formats += 1,
                    FRAME_RECORD => records += 1,
                    _ => unreachable!(),
                }
            }
            (formats, records)
        });

        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&simple_data_xml()).unwrap();
        let token = xmit.bind("SimpleData").unwrap();
        let mut tx = XmitSender::connect(addr).unwrap();
        for _ in 0..10 {
            tx.send(&token.new_record()).unwrap();
        }
        drop(tx);
        assert_eq!(counter.join().unwrap(), (1, 10));
    }

    #[test]
    fn steady_state_send_does_not_allocate() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let drain = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
            let mut rx = XmitReceiver::new(stream, registry);
            let mut n = 0usize;
            while rx.recv().unwrap().is_some() {
                n += 1;
            }
            n
        });

        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&simple_data_xml()).unwrap();
        let token = xmit.bind("SimpleData").unwrap();
        let mut rec = token.new_record();
        rec.set_i64("timestep", 1).unwrap();
        rec.set_f64_array("data", &[0.25; 64]).unwrap();

        let mut tx = XmitSender::connect(addr).unwrap();
        // Warm-up: the encode buffer grows to the working-set size.
        for _ in 0..4 {
            tx.send(&rec).unwrap();
        }
        let warm = tx.marshal_stats().allocs;
        for _ in 0..64 {
            tx.send(&rec).unwrap();
        }
        assert_eq!(
            tx.marshal_stats().allocs,
            warm,
            "steady-state sends must not grow the encode buffer"
        );
        drop(tx);
        assert_eq!(drain.join().unwrap(), 68);
    }

    #[test]
    fn receiver_rejects_garbage_frames_without_panicking() {
        use std::io::Write as _;
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
            let mut rx = XmitReceiver::new(stream, registry);
            rx.recv()
        });
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        // A frame with an unknown kind byte.
        s.write_all(&4u32.to_be_bytes()).unwrap();
        s.write_all(&[9u8]).unwrap();
        s.write_all(b"junk").unwrap();
        drop(s);
        assert!(rx_thread.join().unwrap().is_err());
    }

    #[test]
    fn receiver_rejects_oversized_frames() {
        use std::io::Write as _;
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
            let mut rx = XmitReceiver::new(stream, registry);
            rx.recv()
        });
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        drop(s);
        assert!(rx_thread.join().unwrap().is_err());
    }

    #[test]
    fn receiver_handles_truncated_stream() {
        use std::io::Write as _;
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
            let mut rx = XmitReceiver::new(stream, registry);
            rx.recv()
        });
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        // Length promises 100 bytes; connection dies after 3.
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(&[FRAME_RECORD, 1, 2]).unwrap();
        drop(s);
        assert!(rx_thread.join().unwrap().is_err());
    }

    #[test]
    fn record_for_a_format_the_receiver_never_learned_errors() {
        // A RECORD frame arriving before its FORMAT frame (out-of-order
        // sender bug) must produce UnknownFormatId, not a panic.
        use std::io::Write as _;
        let xm = Xmit::new(MachineModel::native());
        xm.load_str(&simple_data_xml()).unwrap();
        let token = xm.bind("SimpleData").unwrap();
        let wire = crate::encode(&token.new_record()).unwrap();

        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
            let mut rx = XmitReceiver::new(stream, registry);
            rx.recv()
        });
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(&(wire.len() as u32).to_be_bytes()).unwrap();
        s.write_all(&[FRAME_RECORD]).unwrap();
        s.write_all(&wire).unwrap();
        drop(s);
        let err = rx_thread.join().unwrap().unwrap_err();
        assert!(matches!(err, crate::XmitError::Bcm(openmeta_pbio::PbioError::UnknownFormatId(_))));
    }

    #[test]
    fn negotiated_link_skips_format_frames_and_converts() {
        use crate::negotiate::PairVerdict;
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Receiver holds a *grown* version of the format.
            let rx_xmit = Xmit::new(MachineModel::native());
            rx_xmit
                .load_str(&format!(
                    r#"<xsd:complexType name="SimpleData" xmlns:xsd="{XSD}">
                         <xsd:element name="timestep" type="xsd:integer" />
                         <xsd:element name="data" type="xsd:float" minOccurs="0"
                             maxOccurs="*" dimensionPlacement="before" dimensionName="size" />
                         <xsd:element name="tag" type="xsd:long" />
                       </xsd:complexType>"#
                ))
                .unwrap();
            rx_xmit.bind("SimpleData").unwrap();
            let mut rx = XmitReceiver::new(stream, rx_xmit.registry().clone());
            rx.set_negotiation_cache(Arc::new(NegotiationCache::new()));
            let mut seen = Vec::new();
            while let Some(rec) = rx.recv().unwrap() {
                seen.push(rec.get_i64("timestep").unwrap());
            }
            seen
        });

        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&simple_data_xml()).unwrap();
        let token = xmit.bind("SimpleData").unwrap();
        let mut tx = XmitSender::connect(addr).unwrap();
        let accept = tx.negotiate(&[&token.format]).unwrap();
        assert_eq!(accept.verdict_for(token.format.id()), Some(PairVerdict::Projectable));
        for t in 0..3 {
            let mut rec = token.new_record();
            rec.set_i64("timestep", t).unwrap();
            tx.send(&rec).unwrap();
        }
        drop(tx);
        assert_eq!(rx_thread.join().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn incompatible_negotiation_is_rejected_at_handshake() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Receiver retyped `timestep` to a string: incompatible.
            let rx_xmit = Xmit::new(MachineModel::native());
            rx_xmit
                .load_str(&format!(
                    r#"<xsd:complexType name="SimpleData" xmlns:xsd="{XSD}">
                         <xsd:element name="timestep" type="xsd:string" />
                       </xsd:complexType>"#
                ))
                .unwrap();
            rx_xmit.bind("SimpleData").unwrap();
            let mut rx = XmitReceiver::new(stream, rx_xmit.registry().clone());
            rx.set_negotiation_cache(Arc::new(NegotiationCache::new()));
            rx.recv()
        });

        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&simple_data_xml()).unwrap();
        let token = xmit.bind("SimpleData").unwrap();
        let mut tx = XmitSender::connect(addr).unwrap();
        let err = tx.negotiate(&[&token.format]).unwrap_err();
        assert!(matches!(err, XmitError::Negotiation(_)), "{err:?}");
        assert!(err.to_string().contains("incompatible versions"), "{err}");
        // The receiver failed the same way, before any record existed.
        assert!(matches!(rx_thread.join().unwrap(), Err(XmitError::Negotiation(_))));
    }

    #[test]
    fn cross_model_link_converts_at_receiver() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Receiver is a little-endian LP64 machine with its own
            // registration of the format.
            let rx_xmit = Xmit::new(MachineModel::X86_64);
            rx_xmit.load_str(&simple_data_xml()).unwrap();
            rx_xmit.bind("SimpleData").unwrap();
            let mut rx = XmitReceiver::new(stream, rx_xmit.registry().clone());
            let rec = rx.recv().unwrap().unwrap();
            assert_eq!(rec.format().machine, MachineModel::X86_64);
            (rec.get_i64("timestep").unwrap(), rec.get_f64_array("data").unwrap())
        });

        // Sender pretends to be the paper's big-endian SPARC32.
        let tx_xmit = Xmit::new(MachineModel::SPARC32);
        tx_xmit.load_str(&simple_data_xml()).unwrap();
        let token = tx_xmit.bind("SimpleData").unwrap();
        let mut rec = token.new_record();
        rec.set_i64("timestep", 77).unwrap();
        rec.set_f64_array("data", &[1.5, -2.5]).unwrap();
        let mut tx = XmitSender::connect(addr).unwrap();
        tx.send(&rec).unwrap();
        drop(tx);

        let (ts, data) = rx_thread.join().unwrap();
        assert_eq!(ts, 77);
        assert_eq!(data, vec![1.5, -2.5]);
    }
}
