//! XMIT's error type: a union of the substrate failures plus its own
//! binding diagnostics.

use std::fmt;

use openmeta_ohttp::HttpError;
use openmeta_pbio::PbioError;
use openmeta_schema::SchemaError;

/// Any failure in discovery, binding or marshaling.
#[derive(Debug, Clone, PartialEq)]
pub enum XmitError {
    /// Fetching a metadata document failed.
    Discovery(HttpError),
    /// A fetched document is not valid XMIT schema metadata.
    Schema(SchemaError),
    /// The underlying BCM rejected the generated metadata or a record.
    Bcm(PbioError),
    /// A type name is not present in any loaded document.
    UnknownType(String),
    /// Binding-level problem (e.g. circular composition).
    Binding(String),
    /// Version negotiation refused the connection (incompatible
    /// versions, or a convert plan that failed certification).
    Negotiation(String),
}

impl fmt::Display for XmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmitError::Discovery(e) => write!(f, "metadata discovery failed: {e}"),
            XmitError::Schema(e) => write!(f, "metadata document invalid: {e}"),
            XmitError::Bcm(e) => write!(f, "BCM error: {e}"),
            XmitError::UnknownType(n) => {
                write!(f, "no loaded document defines complexType '{n}'")
            }
            XmitError::Binding(m) => write!(f, "binding failed: {m}"),
            XmitError::Negotiation(m) => write!(f, "version negotiation failed: {m}"),
        }
    }
}

impl std::error::Error for XmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmitError::Discovery(e) => Some(e),
            XmitError::Schema(e) => Some(e),
            XmitError::Bcm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HttpError> for XmitError {
    fn from(e: HttpError) -> Self {
        XmitError::Discovery(e)
    }
}

impl From<SchemaError> for XmitError {
    fn from(e: SchemaError) -> Self {
        XmitError::Schema(e)
    }
}

impl From<PbioError> for XmitError {
    fn from(e: PbioError) -> Self {
        XmitError::Bcm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: XmitError = HttpError::NotFound("mem://x".to_string()).into();
        assert!(e.to_string().contains("discovery failed"));
        let e: XmitError = PbioError::UnknownFormat("F".to_string()).into();
        assert!(e.to_string().contains("BCM error"));
        assert_eq!(
            XmitError::UnknownType("T".to_string()).to_string(),
            "no loaded document defines complexType 'T'"
        );
    }
}
