//! Version negotiation: a HELLO/ACCEPT/REJECT handshake at connection
//! setup.
//!
//! Receivers already "make right" against whatever arrives, but nothing
//! told a *sender* which version flows on the wire, and the first
//! cross-version message paid plan compilation inline.  This module
//! moves that exchange to connection setup:
//!
//! ```text
//! frame := len:u32be kind:u8 payload        (xmit::messaging framing)
//!          kind 6 HELLO   sender's format offers, sender → receiver
//!          kind 7 ACCEPT  per-offer verdicts,     receiver → sender
//!          kind 8 REJECT  utf-8 reason,           receiver → sender
//!
//! HELLO  := count:u16be, count × (id:u64be desc_len:u32be descriptor)
//! ACCEPT := count:u16be, count × (sender_id:u64be verdict:u8 receiver_id:u64be)
//! ```
//!
//! The sender offers each format's content id plus its full descriptor
//! (`pbio::codec`).  The receiver classifies every offer against its
//! own same-named binding ([`classify`], built on
//! [`evolution::diff_descriptors`](crate::evolution::diff_descriptors)),
//! compiles the cross-version convert plan **once per (sender-id,
//! receiver-id) pair**, certifies it with [`pbio::verify`] *before it
//! ever runs* (in release builds too — the registry alone only verifies
//! in debug / `verify-plans`), and answers ACCEPT with a
//! [`PairVerdict`] per offer — or REJECT if any offer is incompatible,
//! so a doomed connection dies at setup instead of mid-stream.
//!
//! Outcomes are cached in a [`NegotiationCache`] keyed by the id pair:
//! reconnects and sibling connections between the same two versions
//! cost one map lookup (counted in
//! `openmeta_negotiate_pair_cache_hits_total`), zero diffs and zero
//! plan compiles.  Both handshake ends are sans-io machines
//! ([`NegotiateInitiator`], [`NegotiateResponder`]) driven by
//! `xmit::messaging` and explored by the analyzer's split-schedule
//! checker.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use openmeta_net::LengthFramer;
use openmeta_obs::{Counter, MetricsRegistry};
use openmeta_pbio::codec::{decode_descriptor, encode_descriptor};
use openmeta_pbio::verify::verify_convert_plan;
use openmeta_pbio::{FormatDescriptor, FormatId, FormatRegistry, PbioError};
use parking_lot::RwLock;

use crate::error::XmitError;
use crate::evolution::{diff_descriptors, Compatibility, EvolutionReport, FieldChange};
use crate::messaging::MAX_FRAME;

/// Frame kind: sender's format offers (`HELLO`).
pub const FRAME_HELLO: u8 = 6;
/// Frame kind: receiver's per-offer verdicts (`ACCEPT`).
pub const FRAME_ACCEPT: u8 = 7;
/// Frame kind: receiver refuses the connection (`REJECT`, utf-8 reason).
pub const FRAME_REJECT: u8 = 8;

fn bad(msg: impl Into<String>) -> XmitError {
    XmitError::Bcm(PbioError::BadWireData(msg.into()))
}

/// One format a sender proposes to transmit: its content id plus the
/// full descriptor, so the receiver can register and diff it without a
/// round trip to a format server.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionOffer {
    /// Content id the sender will stamp on records.
    pub id: FormatId,
    /// The sender's resolved descriptor (its machine's layout).
    pub descriptor: FormatDescriptor,
}

/// A `HELLO` payload: every format the sender intends to use on this
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// The offered formats, in sender-preference order.
    pub offers: Vec<VersionOffer>,
}

impl Hello {
    /// Offer each of `formats`.
    pub fn from_formats(formats: &[&Arc<FormatDescriptor>]) -> Hello {
        Hello {
            offers: formats
                .iter()
                .map(|f| VersionOffer { id: f.id(), descriptor: (***f).clone() })
                .collect(),
        }
    }

    /// Serialize into a `HELLO` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(self.offers.len().min(u16::MAX as usize) as u16).to_be_bytes());
        for offer in &self.offers {
            out.extend_from_slice(&offer.id.0.to_be_bytes());
            let desc = encode_descriptor(&offer.descriptor);
            out.extend_from_slice(&(desc.len() as u32).to_be_bytes());
            out.extend_from_slice(&desc);
        }
        out
    }

    /// Parse a `HELLO` frame payload.  The wire id of every offer must
    /// match the descriptor's recomputed content id: a sender that lies
    /// about identity would poison the receiver's pair cache.
    pub fn decode(payload: &[u8]) -> Result<Hello, XmitError> {
        let mut cur = Cursor { buf: payload, pos: 0 };
        let count = u16::from_be_bytes(cur.take::<2>()?) as usize;
        let mut offers = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let id = FormatId(u64::from_be_bytes(cur.take::<8>()?));
            let len = u32::from_be_bytes(cur.take::<4>()?) as usize;
            let bytes = cur.slice(len)?;
            let descriptor = decode_descriptor(bytes)?;
            if descriptor.id() != id {
                return Err(bad(format!(
                    "HELLO offer id {} does not match descriptor content id {} for '{}'",
                    id.0,
                    descriptor.id().0,
                    descriptor.name
                )));
            }
            offers.push(VersionOffer { id, descriptor });
        }
        if cur.pos != payload.len() {
            return Err(bad("trailing bytes after HELLO offers"));
        }
        Ok(Hello { offers })
    }
}

/// The receiver's verdict for one (sender version, receiver version)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairVerdict {
    /// Same content id: records decode on the fast path, no conversion.
    Identical,
    /// Same field set, different widths or byte order — a certified
    /// convert plan runs per record; values may truncate where a width
    /// shrank.
    Widening,
    /// The field sets differ (grown/shrunk/reordered versions); the
    /// receiver sees its own projection of the sender's records.
    Projectable,
    /// A shared field changed category; the connection is refused at
    /// handshake.
    Incompatible,
}

impl PairVerdict {
    /// Wire encoding of the verdict.
    pub fn wire(self) -> u8 {
        match self {
            PairVerdict::Identical => 0,
            PairVerdict::Widening => 1,
            PairVerdict::Projectable => 2,
            PairVerdict::Incompatible => 3,
        }
    }

    /// Decode a wire verdict byte.
    pub fn from_wire(byte: u8) -> Option<PairVerdict> {
        match byte {
            0 => Some(PairVerdict::Identical),
            1 => Some(PairVerdict::Widening),
            2 => Some(PairVerdict::Projectable),
            3 => Some(PairVerdict::Incompatible),
            _ => None,
        }
    }

    /// Can records flow under this verdict?
    pub fn is_compatible(self) -> bool {
        !matches!(self, PairVerdict::Incompatible)
    }
}

/// One line of an `ACCEPT`: the agreed wire version for one offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptEntry {
    /// The offered (sender-side) content id — what records will carry.
    pub sender: FormatId,
    /// How the receiver will treat records of this format.
    pub verdict: PairVerdict,
    /// Content id of the receiver-side format records resolve to.
    pub receiver: FormatId,
}

/// An `ACCEPT` payload: one entry per offer, in offer order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Accept {
    /// Per-offer verdicts.
    pub entries: Vec<AcceptEntry>,
}

impl Accept {
    /// Serialize into an `ACCEPT` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 17 * self.entries.len());
        out.extend_from_slice(&(self.entries.len().min(u16::MAX as usize) as u16).to_be_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.sender.0.to_be_bytes());
            out.push(e.verdict.wire());
            out.extend_from_slice(&e.receiver.0.to_be_bytes());
        }
        out
    }

    /// Parse an `ACCEPT` frame payload.
    pub fn decode(payload: &[u8]) -> Result<Accept, XmitError> {
        let mut cur = Cursor { buf: payload, pos: 0 };
        let count = u16::from_be_bytes(cur.take::<2>()?) as usize;
        let mut entries = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let sender = FormatId(u64::from_be_bytes(cur.take::<8>()?));
            let verdict_byte = cur.take::<1>()?[0];
            let verdict = PairVerdict::from_wire(verdict_byte)
                .ok_or_else(|| bad(format!("unknown ACCEPT verdict byte {verdict_byte}")))?;
            let receiver = FormatId(u64::from_be_bytes(cur.take::<8>()?));
            entries.push(AcceptEntry { sender, verdict, receiver });
        }
        if cur.pos != payload.len() {
            return Err(bad("trailing bytes after ACCEPT entries"));
        }
        Ok(Accept { entries })
    }

    /// The verdict for an offered format, if it was answered.
    pub fn verdict_for(&self, sender: FormatId) -> Option<PairVerdict> {
        self.entries.iter().find(|e| e.sender == sender).map(|e| e.verdict)
    }
}

/// The receiver's answer, as seen by the sender's machine.
#[derive(Debug, Clone, PartialEq)]
pub enum NegotiateReply {
    /// `ACCEPT`: every offer has a verdict; records may flow.
    Accepted(Accept),
    /// `REJECT`: the receiver's reason; the connection is unusable.
    Rejected(String),
}

/// Bounds-checked reader over an untrusted payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], XmitError> {
        let end = self
            .pos
            .checked_add(N)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated negotiation payload"))?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(out)
    }

    fn slice(&mut self, len: usize) -> Result<&'a [u8], XmitError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated negotiation payload"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
}

// ------------------------------------------------- handshake machines

/// Sans-io receiver side of the negotiation: awaits exactly one `HELLO`
/// frame.
///
/// Bytes beyond the `HELLO` are *not* an error — a pipelining sender
/// may push RECORD frames behind its offers — they stay buffered, and
/// [`NegotiateResponder::into_framer`] hands the framer (delivery bytes
/// intact) to the receive loop, exactly like echo's `HandshakeClient`.
#[derive(Debug)]
pub struct NegotiateResponder {
    framer: LengthFramer,
    done: bool,
}

impl NegotiateResponder {
    /// A machine with the production frame cap.
    pub fn new() -> NegotiateResponder {
        NegotiateResponder::with_max_frame(MAX_FRAME)
    }

    /// A machine with an explicit frame cap (for the model checker).
    pub fn with_max_frame(max_frame: usize) -> NegotiateResponder {
        NegotiateResponder { framer: LengthFramer::with_kind_byte(max_frame), done: false }
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.framer.push(bytes);
    }

    /// Bytes buffered but not yet consumed by a decision.
    pub fn buffered(&self) -> usize {
        self.framer.buffered()
    }

    /// How many more bytes are needed before [`NegotiateResponder::poll`]
    /// can decide; 0 once the `HELLO` is in (or the machine is done).
    pub fn bytes_needed(&self) -> usize {
        if self.done {
            0
        } else {
            self.framer.bytes_needed()
        }
    }

    /// The `HELLO` has been consumed; retained bytes belong to delivery.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Poll for the sender's offers.  `Ok(None)` means more bytes are
    /// needed.
    pub fn poll(&mut self) -> Result<Option<Hello>, XmitError> {
        if self.done {
            return Ok(None);
        }
        let frame = self.framer.next_frame().map_err(|e| bad(e.to_string()))?;
        match frame {
            None => Ok(None),
            Some((FRAME_HELLO, payload)) => {
                self.done = true;
                Hello::decode(&payload).map(Some)
            }
            Some((kind, _)) => {
                self.done = true;
                Err(XmitError::Negotiation(format!("expected HELLO frame, got kind {kind}")))
            }
        }
    }

    /// Hand the framer — including any delivery bytes pipelined behind
    /// the `HELLO` — to the receive loop.
    pub fn into_framer(self) -> LengthFramer {
        self.framer
    }
}

impl Default for NegotiateResponder {
    fn default() -> NegotiateResponder {
        NegotiateResponder::new()
    }
}

/// Sans-io sender side of the negotiation: awaits exactly one
/// `ACCEPT`/`REJECT` frame after its `HELLO` went out.
#[derive(Debug)]
pub struct NegotiateInitiator {
    framer: LengthFramer,
    done: bool,
}

impl NegotiateInitiator {
    /// A machine with the production frame cap.
    pub fn new() -> NegotiateInitiator {
        NegotiateInitiator::with_max_frame(MAX_FRAME)
    }

    /// A machine with an explicit frame cap (for the model checker).
    pub fn with_max_frame(max_frame: usize) -> NegotiateInitiator {
        NegotiateInitiator { framer: LengthFramer::with_kind_byte(max_frame), done: false }
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.framer.push(bytes);
    }

    /// Bytes buffered but not yet consumed by a reply.
    pub fn buffered(&self) -> usize {
        self.framer.buffered()
    }

    /// How many more bytes are needed before [`NegotiateInitiator::poll`]
    /// can decide; 0 once the reply is in (or the machine is done).
    pub fn bytes_needed(&self) -> usize {
        if self.done {
            0
        } else {
            self.framer.bytes_needed()
        }
    }

    /// The reply has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Poll for the receiver's reply.  `Ok(None)` means more bytes are
    /// needed.
    pub fn poll(&mut self) -> Result<Option<NegotiateReply>, XmitError> {
        if self.done {
            return Ok(None);
        }
        let frame = self.framer.next_frame().map_err(|e| bad(e.to_string()))?;
        match frame {
            None => Ok(None),
            Some((FRAME_ACCEPT, payload)) => {
                self.done = true;
                Accept::decode(&payload).map(|a| Some(NegotiateReply::Accepted(a)))
            }
            Some((FRAME_REJECT, payload)) => {
                self.done = true;
                Ok(Some(NegotiateReply::Rejected(String::from_utf8_lossy(&payload).into_owned())))
            }
            Some((kind, _)) => {
                self.done = true;
                Err(XmitError::Negotiation(format!(
                    "expected ACCEPT or REJECT frame, got kind {kind}"
                )))
            }
        }
    }

    /// Hand the framer to whatever follows (nothing, today — the
    /// receiver speaks only during the handshake — but symmetry keeps
    /// the machines interchangeable under the model checker).
    pub fn into_framer(self) -> LengthFramer {
        self.framer
    }
}

impl Default for NegotiateInitiator {
    fn default() -> NegotiateInitiator {
        NegotiateInitiator::new()
    }
}

// ------------------------------------------------------ classification

/// Classify a (sender version, receiver version) pair.
///
/// Same content id is [`PairVerdict::Identical`] without a diff.
/// Otherwise [`diff_descriptors`] decides: a category change anywhere is
/// [`PairVerdict::Incompatible`]; width-only drift (including pure
/// byte-order differences) is [`PairVerdict::Widening`]; everything else
/// — grown, shrunk, reordered field sets — is
/// [`PairVerdict::Projectable`].
pub fn classify(
    sender: &FormatDescriptor,
    receiver: &FormatDescriptor,
) -> (PairVerdict, EvolutionReport) {
    if sender.id() == receiver.id() {
        return (
            PairVerdict::Identical,
            EvolutionReport { compatibility: Compatibility::Identical, changes: Vec::new() },
        );
    }
    let report = diff_descriptors(sender, receiver);
    let verdict = match report.compatibility {
        Compatibility::Breaking => PairVerdict::Incompatible,
        Compatibility::Lossy => PairVerdict::Widening,
        // Identical can't occur here (ids differ ⇒ descriptors differ);
        // Compatible covers field-set changes and layout-only drift.
        _ => PairVerdict::Projectable,
    };
    (verdict, report)
}

fn reject_reason(name: &str, report: &EvolutionReport) -> String {
    let retyped: Vec<String> = report
        .changes
        .iter()
        .filter_map(|c| match c {
            FieldChange::Retyped { name, old_kind, new_kind } => {
                Some(format!("{name}: {old_kind} -> {new_kind}"))
            }
            _ => None,
        })
        .collect();
    format!("incompatible versions of '{name}' ({})", retyped.join(", "))
}

// -------------------------------------------------------- pair cache

#[derive(Debug, Clone)]
struct CachedPair {
    verdict: PairVerdict,
    /// `Some` when the pair was refused: the reason is replayed on every
    /// reconnect without re-diffing.
    reject: Option<String>,
}

/// Point-in-time counters of a [`NegotiationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NegotiationStats {
    /// Handshake offers answered straight from the pair cache.
    pub hits: u64,
    /// Offers that paid the diff (and, when converting, the plan compile
    /// + certification).
    pub misses: u64,
    /// Offers refused as incompatible (first encounters only; cached
    /// rejections count as hits).
    pub rejected: u64,
}

/// Memoized negotiation outcomes, keyed by (sender-id, receiver-id).
///
/// The cache makes steady-state negotiation free: the first contact
/// between two versions pays one descriptor diff, one convert-plan
/// compile and one `pbio::verify` certification; every later handshake
/// between the same pair — reconnects, sibling connections, other
/// channels — is a read-locked map probe.  Counters are registered in
/// the global metrics registry (`openmeta_negotiate_pair_cache_*`,
/// `openmeta_negotiate_rejected_total`).
pub struct NegotiationCache {
    pairs: RwLock<HashMap<(FormatId, FormatId), CachedPair>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    rejected: Arc<Counter>,
}

impl NegotiationCache {
    /// An empty cache with its own counter instances (the process-global
    /// metrics see every instance summed).
    pub fn new() -> NegotiationCache {
        let m = MetricsRegistry::global();
        NegotiationCache {
            pairs: RwLock::new(HashMap::new()),
            hits: m.counter("openmeta_negotiate_pair_cache_hits_total"),
            misses: m.counter("openmeta_negotiate_pair_cache_misses_total"),
            rejected: m.counter("openmeta_negotiate_rejected_total"),
        }
    }

    /// The process-wide cache, shared by every receiver that does not
    /// install its own: one fleet of connections amortizes together.
    pub fn global() -> &'static Arc<NegotiationCache> {
        static GLOBAL: OnceLock<Arc<NegotiationCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(NegotiationCache::new()))
    }

    /// This cache's counters (not the global sums).
    pub fn stats(&self) -> NegotiationStats {
        NegotiationStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            rejected: self.rejected.get(),
        }
    }

    /// Distinct (sender, receiver) pairs decided so far.
    pub fn len(&self) -> usize {
        self.pairs.read().len()
    }

    /// `true` when no pair has been decided yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.read().is_empty()
    }

    /// Decide (or replay) the verdict for one pair.  On first contact
    /// this diffs the descriptors, and — when a conversion is needed —
    /// compiles the convert plan through `registry`'s cache and
    /// certifies it with [`pbio::verify`] unconditionally (release
    /// builds included).  `Err(XmitError::Negotiation)` means the pair
    /// is refused: incompatible categories, or a plan that failed
    /// certification.
    pub fn negotiate_pair(
        &self,
        registry: &FormatRegistry,
        sender: &Arc<FormatDescriptor>,
        receiver: &Arc<FormatDescriptor>,
    ) -> Result<PairVerdict, XmitError> {
        let key = (sender.id(), receiver.id());
        if let Some(cached) = self.pairs.read().get(&key) {
            self.hits.inc();
            return match &cached.reject {
                None => Ok(cached.verdict),
                Some(reason) => Err(XmitError::Negotiation(reason.clone())),
            };
        }
        self.misses.inc();
        let (verdict, report) = classify(sender, receiver);
        let reject = if verdict == PairVerdict::Incompatible {
            Some(reject_reason(&sender.name, &report))
        } else if verdict != PairVerdict::Identical {
            // The cross-version plan is compiled once per pair, here, and
            // certified before any record rides it.  The registry caches
            // it under the same (sender, receiver) key, so the decode
            // path's `convert_plan` lookup is a guaranteed cache hit.
            match registry.convert_plan(sender, receiver) {
                Ok(plan) => {
                    verify_convert_plan(sender, receiver, &plan).first_error().map(|violation| {
                        format!(
                            "convert plan '{}' -> '{}' failed certification: {violation}",
                            sender.name, receiver.name
                        )
                    })
                }
                Err(e) => Some(format!(
                    "convert plan '{}' -> '{}' did not compile: {e}",
                    sender.name, receiver.name
                )),
            }
        } else {
            None
        };
        if reject.is_some() {
            self.rejected.inc();
        }
        let outcome = match &reject {
            None => Ok(verdict),
            Some(reason) => Err(XmitError::Negotiation(reason.clone())),
        };
        self.pairs.write().entry(key).or_insert(CachedPair { verdict, reject });
        outcome
    }

    /// Answer a `HELLO` against `registry`: register every offered
    /// descriptor (id-addressable only — the receiver's own bindings are
    /// never displaced), resolve each offer to the receiver's same-named
    /// binding (or adopt the sender's version verbatim when none
    /// exists), and decide every pair.  `Err(XmitError::Negotiation)`
    /// rejects the whole connection — one incompatible format must not
    /// half-work.
    pub fn respond(&self, hello: &Hello, registry: &FormatRegistry) -> Result<Accept, XmitError> {
        let mut entries = Vec::with_capacity(hello.offers.len());
        for offer in &hello.offers {
            let sender = registry.register_descriptor(offer.descriptor.clone());
            let receiver = registry.lookup_name(&sender.name).unwrap_or_else(|| sender.clone());
            let verdict = self.negotiate_pair(registry, &sender, &receiver)?;
            entries.push(AcceptEntry { sender: offer.id, verdict, receiver: receiver.id() });
        }
        Ok(Accept { entries })
    }
}

impl Default for NegotiationCache {
    fn default() -> NegotiationCache {
        NegotiationCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::{FormatSpec, IOField, MachineModel};

    fn desc(fields: Vec<IOField>) -> Arc<FormatDescriptor> {
        let reg = FormatRegistry::new(MachineModel::native());
        reg.register(FormatSpec::new("T", fields)).unwrap()
    }

    fn v1() -> Arc<FormatDescriptor> {
        desc(vec![IOField::auto("x", "integer", 4), IOField::auto("y", "float", 8)])
    }

    fn v2() -> Arc<FormatDescriptor> {
        desc(vec![
            IOField::auto("x", "integer", 4),
            IOField::auto("y", "float", 8),
            IOField::auto("z", "integer", 8),
        ])
    }

    fn retyped() -> Arc<FormatDescriptor> {
        desc(vec![IOField::auto("x", "string", 8), IOField::auto("y", "float", 8)])
    }

    #[test]
    fn hello_roundtrips() {
        let hello = Hello::from_formats(&[&v1(), &v2()]);
        let back = Hello::decode(&hello.encode()).unwrap();
        assert_eq!(back, hello);
        assert_eq!(back.offers[0].id, v1().id());
    }

    #[test]
    fn hello_rejects_lying_ids_truncation_and_trailing_bytes() {
        let mut wire = Hello::from_formats(&[&v1()]).encode();
        // Flip a bit in the offered id: the recomputed descriptor id no
        // longer matches.
        wire[5] ^= 1;
        assert!(Hello::decode(&wire).is_err());

        let good = Hello::from_formats(&[&v1()]).encode();
        for cut in 1..good.len() {
            assert!(Hello::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = good;
        trailing.push(0);
        assert!(Hello::decode(&trailing).is_err());
    }

    #[test]
    fn accept_roundtrips_and_rejects_bad_verdicts() {
        let accept = Accept {
            entries: vec![
                AcceptEntry {
                    sender: FormatId(7),
                    verdict: PairVerdict::Projectable,
                    receiver: FormatId(9),
                },
                AcceptEntry {
                    sender: FormatId(8),
                    verdict: PairVerdict::Identical,
                    receiver: FormatId(8),
                },
            ],
        };
        let back = Accept::decode(&accept.encode()).unwrap();
        assert_eq!(back, accept);
        assert_eq!(back.verdict_for(FormatId(7)), Some(PairVerdict::Projectable));
        assert_eq!(back.verdict_for(FormatId(99)), None);

        let mut wire = accept.encode();
        wire[10] = 9; // first entry's verdict byte
        assert!(Accept::decode(&wire).is_err());
    }

    #[test]
    fn classify_maps_report_verdicts() {
        let (verdict, _) = classify(&v1(), &v1());
        assert_eq!(verdict, PairVerdict::Identical);
        let (verdict, _) = classify(&v1(), &v2());
        assert_eq!(verdict, PairVerdict::Projectable);
        let (verdict, _) = classify(&v1(), &retyped());
        assert_eq!(verdict, PairVerdict::Incompatible);
        let widened = desc(vec![IOField::auto("x", "integer", 8), IOField::auto("y", "float", 8)]);
        let (verdict, _) = classify(&v1(), &widened);
        assert_eq!(verdict, PairVerdict::Widening);
    }

    #[test]
    fn responder_machine_handles_split_hello_and_keeps_delivery_bytes() {
        let hello = Hello::from_formats(&[&v1()]);
        let payload = hello.encode();
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.push(FRAME_HELLO);
        frame.extend_from_slice(&payload);
        // Delivery bytes pipelined behind the HELLO.
        frame.extend_from_slice(&[0, 0, 0, 1, 2, 0xAB]);

        let mut m = NegotiateResponder::new();
        let mut got = None;
        for b in frame {
            if got.is_none() {
                assert!(m.bytes_needed() > 0);
            }
            m.push(&[b]);
            if let Some(h) = m.poll().unwrap() {
                got = Some(h);
            }
        }
        assert_eq!(got, Some(hello));
        assert!(m.is_done());
        let mut framer = m.into_framer();
        let (kind, payload) = framer.next_frame().unwrap().expect("delivery frame intact");
        assert_eq!((kind, payload.as_slice()), (2u8, &[0xAB][..]));
    }

    #[test]
    fn initiator_machine_surfaces_accept_reject_and_bad_kinds() {
        let accept = Accept {
            entries: vec![AcceptEntry {
                sender: FormatId(1),
                verdict: PairVerdict::Identical,
                receiver: FormatId(1),
            }],
        };
        let payload = accept.encode();
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.push(FRAME_ACCEPT);
        frame.extend_from_slice(&payload);
        let mut m = NegotiateInitiator::new();
        m.push(&frame);
        assert_eq!(m.poll().unwrap(), Some(NegotiateReply::Accepted(accept)));

        let mut frame = 4u32.to_be_bytes().to_vec();
        frame.push(FRAME_REJECT);
        frame.extend_from_slice(b"nope");
        let mut m = NegotiateInitiator::new();
        m.push(&frame);
        assert_eq!(m.poll().unwrap(), Some(NegotiateReply::Rejected("nope".to_string())));

        let mut frame = 1u32.to_be_bytes().to_vec();
        frame.push(2); // RECORD before the reply
        frame.push(0);
        let mut m = NegotiateInitiator::new();
        m.push(&frame);
        assert!(m.poll().is_err());
    }

    #[test]
    fn pair_cache_amortizes_and_replays_rejections() {
        let cache = NegotiationCache::new();
        let reg = FormatRegistry::new(MachineModel::native());
        let sender = reg.register_descriptor((*v1()).clone());
        let receiver = reg.register_descriptor((*v2()).clone());

        assert_eq!(
            cache.negotiate_pair(&reg, &sender, &receiver).unwrap(),
            PairVerdict::Projectable
        );
        let first = cache.stats();
        assert_eq!((first.hits, first.misses), (0, 1));
        let plans_after_first = reg.plan_cache_stats();

        for _ in 0..5 {
            assert_eq!(
                cache.negotiate_pair(&reg, &sender, &receiver).unwrap(),
                PairVerdict::Projectable
            );
        }
        let warm = cache.stats();
        assert_eq!((warm.hits, warm.misses), (5, 1));
        assert_eq!(
            reg.plan_cache_stats().misses,
            plans_after_first.misses,
            "steady-state negotiation must not compile more plans"
        );

        let bad = reg.register_descriptor((*retyped()).clone());
        assert!(cache.negotiate_pair(&reg, &sender, &bad).is_err());
        assert_eq!(cache.stats().rejected, 1);
        // The rejection replays from cache.
        assert!(cache.negotiate_pair(&reg, &sender, &bad).is_err());
        let end = cache.stats();
        assert_eq!(end.rejected, 1, "cached rejections are not re-counted");
        assert_eq!(end.hits, 6);
    }

    #[test]
    fn respond_adopts_unknown_formats_and_rejects_incompatible_fleets() {
        let cache = NegotiationCache::new();
        let reg = FormatRegistry::new(MachineModel::native());
        // No local binding: the receiver adopts the sender's version.
        let hello = Hello::from_formats(&[&v1()]);
        let accept = cache.respond(&hello, &reg).unwrap();
        assert_eq!(accept.entries[0].verdict, PairVerdict::Identical);
        assert_eq!(accept.entries[0].receiver, v1().id());

        // A local binding of the same name: cross-version projection.
        let reg2 = FormatRegistry::new(MachineModel::native());
        reg2.register(FormatSpec::new(
            "T",
            vec![
                IOField::auto("x", "integer", 4),
                IOField::auto("y", "float", 8),
                IOField::auto("z", "integer", 8),
            ],
        ))
        .unwrap();
        let accept = cache.respond(&hello, &reg2).unwrap();
        assert_eq!(accept.entries[0].verdict, PairVerdict::Projectable);

        // One incompatible offer rejects the whole HELLO.
        let reg3 = FormatRegistry::new(MachineModel::native());
        reg3.register(FormatSpec::new(
            "T",
            vec![IOField::auto("x", "string", 8), IOField::auto("y", "float", 8)],
        ))
        .unwrap();
        let err = cache.respond(&hello, &reg3).unwrap_err();
        assert!(matches!(err, XmitError::Negotiation(_)), "{err:?}");
        assert!(err.to_string().contains("incompatible versions of 'T'"), "{err}");
    }
}
