//! The toolkit facade: load documents, bind types, mint records.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use openmeta_obs::{clock, Counter, MetricsRegistry};

use parking_lot::RwLock;

use openmeta_ohttp::{content_hash64, DocumentSource, Fetched, StandardSource, Url};
use openmeta_pbio::server::FormatServerClient;
use openmeta_pbio::{FormatDescriptor, FormatId, FormatRegistry, MachineModel, RawRecord};
use openmeta_schema::model::EnumType;
use openmeta_schema::{parse_str, ComplexType, TypeRef};

use crate::error::XmitError;
use crate::mapping::map_type_with_enums;

/// The result of binding a complex type: the paper's "binding token …
/// used directly with the chosen BCM to perform marshaling and
/// unmarshaling".
#[derive(Debug, Clone)]
pub struct BindingToken {
    /// The complex type this token binds.
    pub type_name: String,
    /// The generated native metadata, registered with the BCM.
    pub format: Arc<FormatDescriptor>,
}

impl BindingToken {
    /// The compact format identifier carried in message headers.
    pub fn id(&self) -> FormatId {
        self.format.id()
    }

    /// A zeroed record of this format.
    pub fn new_record(&self) -> RawRecord {
        RawRecord::new(self.format.clone())
    }
}

/// How a cached discovery request was satisfied.
///
/// Each variant carries the names of the complex types the document
/// defines; only [`LoadOutcome::Loaded`] paid for a parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// Cache miss: the document was fetched, parsed, and its definitions
    /// (re)applied.
    Loaded(Vec<String>),
    /// The server answered a conditional GET with `304 Not Modified`;
    /// the cached parse was re-applied without transferring the body.
    Revalidated(Vec<String>),
    /// A full body arrived but its content hash matched a cached parse
    /// (same URL or any other), so parsing was skipped.
    Unchanged(Vec<String>),
    /// The cached entry was inside the freshness TTL; no network traffic
    /// at all.
    Fresh(Vec<String>),
}

impl LoadOutcome {
    /// The type names the document defines, whichever way we got them.
    pub fn names(&self) -> &[String] {
        match self {
            LoadOutcome::Loaded(n)
            | LoadOutcome::Revalidated(n)
            | LoadOutcome::Unchanged(n)
            | LoadOutcome::Fresh(n) => n,
        }
    }

    /// Consume the outcome, keeping only the type names.
    pub fn into_names(self) -> Vec<String> {
        match self {
            LoadOutcome::Loaded(n)
            | LoadOutcome::Revalidated(n)
            | LoadOutcome::Unchanged(n)
            | LoadOutcome::Fresh(n) => n,
        }
    }

    /// Did this request skip the schema parse?
    pub fn was_cache_hit(&self) -> bool {
        !matches!(self, LoadOutcome::Loaded(_))
    }
}

/// Snapshot of the discovery cache's effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemaCacheStats {
    /// Loads satisfied inside the TTL without touching the network.
    pub fresh_hits: u64,
    /// Conditional GETs answered `304 Not Modified`.
    pub revalidated: u64,
    /// Full bodies whose content hash matched a cached parse.
    pub content_hits: u64,
    /// Documents that had to be fetched and parsed.
    pub misses: u64,
}

impl SchemaCacheStats {
    /// Total cached-path loads (everything that skipped a parse).
    pub fn hits(&self) -> u64 {
        self.fresh_hits + self.revalidated + self.content_hits
    }
}

/// A parsed schema document, shared between the URL cache and the
/// content-hash index.
struct ParsedDoc {
    types: Vec<ComplexType>,
    enums: Vec<EnumType>,
    names: Vec<String>,
}

/// Per-URL cache entry: validator, content hash, and the parse itself.
struct SchemaCacheEntry {
    etag: Option<String>,
    hash: u64,
    doc: Arc<ParsedDoc>,
    fetched_at: Instant,
}

/// Global-registry-backed cache counters (`openmeta_schema_cache_*_total`):
/// this toolkit's exact numbers via [`Xmit::schema_cache_stats`],
/// process-wide sums via a `/metrics` scrape.
struct CacheCounters {
    fresh_hits: Arc<Counter>,
    revalidated: Arc<Counter>,
    content_hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Default for CacheCounters {
    fn default() -> CacheCounters {
        let m = MetricsRegistry::global();
        CacheCounters {
            fresh_hits: m.counter("openmeta_schema_cache_fresh_hits_total"),
            revalidated: m.counter("openmeta_schema_cache_revalidated_total"),
            content_hits: m.counter("openmeta_schema_cache_content_hits_total"),
            misses: m.counter("openmeta_schema_cache_misses_total"),
        }
    }
}

/// The XMIT toolkit instance.
///
/// Holds loaded (but not yet bound) complex types, a PBIO format registry
/// for the selected machine model, and the document source used for
/// discovery.
pub struct Xmit {
    registry: Arc<FormatRegistry>,
    standard: Arc<StandardSource>,
    custom: Option<Arc<dyn DocumentSource>>,
    /// Loaded complex types, latest definition per name.
    types: RwLock<HashMap<String, ComplexType>>,
    /// Loaded enumerations, latest definition per name.
    enums: RwLock<HashMap<String, EnumType>>,
    /// URL → type names it defined at last load (for refresh bookkeeping).
    documents: RwLock<HashMap<String, Vec<String>>>,
    /// URL → cached parse with its HTTP validator and content hash.
    schema_cache: RwLock<HashMap<String, SchemaCacheEntry>>,
    /// Content hash → cached parse, deduplicating identical documents
    /// served from different URLs.
    content_index: RwLock<HashMap<u64, Arc<ParsedDoc>>>,
    /// Successfully bound formats by type name, so repeat binds are a
    /// lookup instead of a re-map + re-register.  Cleared whenever any
    /// type or enum definition actually changes (a changed dependency
    /// must invalidate every composition that embeds it).
    bound: RwLock<HashMap<String, Arc<FormatDescriptor>>>,
    /// Freshness window within which cached entries skip the network
    /// entirely.  `None` (the default) always revalidates.
    cache_ttl: RwLock<Option<Duration>>,
    cache_counters: CacheCounters,
    /// Optional format server for resolving unknown format ids on decode.
    format_server: RwLock<Option<FormatServerClient>>,
}

impl Xmit {
    /// A toolkit generating metadata for `machine`, with the standard
    /// document source (`http://`, `file://`, `mem://`).
    pub fn new(machine: MachineModel) -> Xmit {
        Xmit {
            registry: Arc::new(FormatRegistry::new(machine)),
            standard: Arc::new(StandardSource::new()),
            custom: None,
            types: RwLock::new(HashMap::new()),
            enums: RwLock::new(HashMap::new()),
            documents: RwLock::new(HashMap::new()),
            schema_cache: RwLock::new(HashMap::new()),
            content_index: RwLock::new(HashMap::new()),
            bound: RwLock::new(HashMap::new()),
            cache_ttl: RwLock::new(None),
            cache_counters: CacheCounters::default(),
            format_server: RwLock::new(None),
        }
    }

    /// A toolkit with a caller-provided document source.
    pub fn with_source(machine: MachineModel, source: Arc<dyn DocumentSource>) -> Xmit {
        Xmit { custom: Some(source), ..Xmit::new(machine) }
    }

    /// The BCM format registry (shared with receivers for decoding).
    pub fn registry(&self) -> &Arc<FormatRegistry> {
        &self.registry
    }

    /// The standard source, e.g. to publish `mem://` fixtures in tests.
    pub fn source(&self) -> &StandardSource {
        &self.standard
    }

    fn fetch(&self, url: &Url) -> Result<String, XmitError> {
        match &self.custom {
            Some(s) => Ok(s.fetch(url)?),
            None => Ok(self.standard.fetch(url)?),
        }
    }

    fn fetch_conditional(&self, url: &Url, etag: Option<&str>) -> Result<Fetched, XmitError> {
        match &self.custom {
            Some(s) => Ok(s.fetch_conditional(url, etag)?),
            None => Ok(self.standard.fetch_conditional(url, etag)?),
        }
    }

    /// Fetch a document's text through the toolkit's source without
    /// loading it (used by [`crate::watcher::FormatWatcher`] to detect
    /// changes).
    pub fn fetch_document(&self, url: &Url) -> Result<String, XmitError> {
        self.fetch(url)
    }

    /// Set the freshness window for the discovery cache.  Within `ttl` of
    /// the last successful fetch, [`Xmit::load_url`] answers from cache
    /// without any network traffic; `None` (the default) revalidates on
    /// every load.
    pub fn set_cache_ttl(&self, ttl: Option<Duration>) {
        *self.cache_ttl.write() = ttl;
    }

    /// Discovery-cache counters since construction (or the last reset).
    pub fn schema_cache_stats(&self) -> SchemaCacheStats {
        SchemaCacheStats {
            fresh_hits: self.cache_counters.fresh_hits.get(),
            revalidated: self.cache_counters.revalidated.get(),
            content_hits: self.cache_counters.content_hits.get(),
            misses: self.cache_counters.misses.get(),
        }
    }

    /// Zero the discovery-cache counters (the cache itself is kept).
    pub fn reset_schema_cache_stats(&self) {
        self.cache_counters.fresh_hits.reset();
        self.cache_counters.revalidated.reset();
        self.cache_counters.content_hits.reset();
        self.cache_counters.misses.reset();
    }

    /// "Load the toolkit with message definitions (contained in XML
    /// documents) from one or more URLs."  Returns the names of the
    /// complex types the document defined.
    pub fn load_url(&self, url: &str) -> Result<Vec<String>, XmitError> {
        Ok(self.load_url_cached(url)?.into_names())
    }

    /// Like [`Xmit::load_url`], but reports how the request was satisfied:
    /// full parse, `304` revalidation, content-hash dedupe, or TTL-fresh.
    pub fn load_url_cached(&self, url: &str) -> Result<LoadOutcome, XmitError> {
        self.load_url_inner(url, true)
    }

    /// Force revalidation of a previously loaded URL, ignoring the TTL.
    /// Used by [`crate::watcher::FormatWatcher`] so polling stays a
    /// conditional GET even when a freshness window is configured.
    pub fn revalidate(&self, url: &str) -> Result<LoadOutcome, XmitError> {
        self.load_url_inner(url, false)
    }

    fn load_url_inner(&self, url: &str, allow_fresh: bool) -> Result<LoadOutcome, XmitError> {
        let _span = openmeta_obs::span!("discovery.load");
        let parsed = Url::parse(url)?;

        // TTL-fresh: answer from cache with no network traffic at all.
        if allow_fresh {
            if let Some(ttl) = *self.cache_ttl.read() {
                if let Some(doc) = self.schema_cache.read().get(url).and_then(|entry| {
                    (entry.fetched_at.elapsed() <= ttl).then(|| entry.doc.clone())
                }) {
                    self.apply_doc(&doc, url);
                    self.cache_counters.fresh_hits.inc();
                    return Ok(LoadOutcome::Fresh(doc.names.clone()));
                }
            }
        }

        let etag = self.schema_cache.read().get(url).and_then(|e| e.etag.clone());
        let fetched = {
            let _span = openmeta_obs::span!("discovery.fetch");
            self.fetch_conditional(&parsed, etag.as_deref())?
        };
        match fetched {
            Fetched::NotModified => {
                let doc = {
                    let mut cache = self.schema_cache.write();
                    let entry = cache.get_mut(url).ok_or_else(|| {
                        XmitError::Discovery(openmeta_ohttp::HttpError::BadResponse(
                            "304 Not Modified for a URL never cached".to_string(),
                        ))
                    })?;
                    entry.fetched_at = clock::now();
                    entry.doc.clone()
                };
                self.apply_doc(&doc, url);
                self.cache_counters.revalidated.inc();
                Ok(LoadOutcome::Revalidated(doc.names.clone()))
            }
            Fetched::New { text, etag: new_etag } => {
                let hash = content_hash64(text.as_bytes());
                // Dedupe against this URL's previous body or any other
                // URL that served identical bytes.
                let cached = self
                    .schema_cache
                    .read()
                    .get(url)
                    .filter(|e| e.hash == hash)
                    .map(|e| e.doc.clone())
                    .or_else(|| self.content_index.read().get(&hash).cloned());
                if let Some(doc) = cached {
                    self.store_entry(url, new_etag, hash, doc.clone());
                    self.apply_doc(&doc, url);
                    self.cache_counters.content_hits.inc();
                    return Ok(LoadOutcome::Unchanged(doc.names.clone()));
                }
                let doc = Arc::new(Self::parse_doc(&text)?);
                self.store_entry(url, new_etag, hash, doc.clone());
                self.content_index.write().insert(hash, doc.clone());
                self.apply_doc(&doc, url);
                self.cache_counters.misses.inc();
                Ok(LoadOutcome::Loaded(doc.names.clone()))
            }
        }
    }

    fn parse_doc(text: &str) -> Result<ParsedDoc, XmitError> {
        let _span = openmeta_obs::span!("discovery.parse");
        let doc = parse_str(text)?;
        let names = doc.types.iter().map(|ct| ct.name.clone()).collect();
        Ok(ParsedDoc { types: doc.types, enums: doc.enums, names })
    }

    /// (Re-)apply a parsed document's definitions.  Cache hits go through
    /// here too: the `types`/`enums` maps hold the *latest* definition per
    /// name, and a cached load must win over whatever another document
    /// installed since.
    fn apply_doc(&self, doc: &ParsedDoc, url: &str) {
        let mut changed = false;
        {
            let mut types = self.types.write();
            for ct in &doc.types {
                if types.get(&ct.name) != Some(ct) {
                    types.insert(ct.name.clone(), ct.clone());
                    changed = true;
                }
            }
        }
        {
            let mut enums = self.enums.write();
            for en in &doc.enums {
                if enums.get(&en.name) != Some(en) {
                    enums.insert(en.name.clone(), en.clone());
                    changed = true;
                }
            }
        }
        if changed {
            self.bound.write().clear();
        }
        self.documents.write().insert(url.to_string(), doc.names.clone());
    }

    fn store_entry(&self, url: &str, etag: Option<String>, hash: u64, doc: Arc<ParsedDoc>) {
        self.schema_cache.write().insert(
            url.to_string(),
            SchemaCacheEntry { etag, hash, doc, fetched_at: clock::now() },
        );
    }

    /// Load definitions from already-fetched XML text.
    pub fn load_str(&self, text: &str) -> Result<Vec<String>, XmitError> {
        let mut changed = false;
        let doc = parse_str(text)?;
        let mut names = Vec::with_capacity(doc.types.len());
        {
            let mut types = self.types.write();
            for ct in doc.types {
                names.push(ct.name.clone());
                if types.get(&ct.name) != Some(&ct) {
                    types.insert(ct.name.clone(), ct);
                    changed = true;
                }
            }
        }
        {
            let mut enums = self.enums.write();
            for en in doc.enums {
                if enums.get(&en.name) != Some(&en) {
                    enums.insert(en.name.clone(), en);
                    changed = true;
                }
            }
        }
        if changed {
            self.bound.write().clear();
        }
        Ok(names)
    }

    /// Re-fetch a previously loaded URL, picking up centralized format
    /// changes.  Returns the (possibly changed) type names.
    pub fn refresh(&self, url: &str) -> Result<Vec<String>, XmitError> {
        Ok(self.revalidate(url)?.into_names())
    }

    /// Names of all loaded complex types, sorted.
    pub fn loaded_types(&self) -> Vec<String> {
        let mut v: Vec<String> = self.types.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Look at a loaded (unbound) definition.
    pub fn definition(&self, name: &str) -> Option<ComplexType> {
        self.types.read().get(name).cloned()
    }

    /// Look at a loaded enumeration definition.
    pub fn enumeration(&self, name: &str) -> Option<EnumType> {
        self.enums.read().get(name).cloned()
    }

    /// Wire value of an enumeration symbol (its declaration index).
    pub fn enum_index(&self, enum_name: &str, symbol: &str) -> Result<u64, XmitError> {
        let en = self
            .enumeration(enum_name)
            .ok_or_else(|| XmitError::UnknownType(enum_name.to_string()))?;
        en.index_of(symbol).map(|i| i as u64).ok_or_else(|| {
            XmitError::Binding(format!("'{symbol}' is not a value of enumeration '{enum_name}'"))
        })
    }

    /// Symbol behind a wire value of an enumeration.
    pub fn enum_symbol(&self, enum_name: &str, index: u64) -> Result<String, XmitError> {
        let en = self
            .enumeration(enum_name)
            .ok_or_else(|| XmitError::UnknownType(enum_name.to_string()))?;
        en.symbol(index as usize).map(str::to_string).ok_or_else(|| {
            XmitError::Binding(format!("enumeration '{enum_name}' has no value {index}"))
        })
    }

    /// Bind a loaded complex type: generate PBIO metadata (recursively
    /// binding composed types first) and register it.
    pub fn bind(&self, name: &str) -> Result<BindingToken, XmitError> {
        let _span = openmeta_obs::span!("binding.bind");
        let mut visiting = Vec::new();
        let format = self.bind_inner(name, &mut visiting)?;
        Ok(BindingToken { type_name: name.to_string(), format })
    }

    fn bind_inner(
        &self,
        name: &str,
        visiting: &mut Vec<String>,
    ) -> Result<Arc<FormatDescriptor>, XmitError> {
        if let Some(fmt) = self.bound.read().get(name).cloned() {
            return Ok(fmt);
        }
        if visiting.iter().any(|v| v == name) {
            return Err(XmitError::Binding(format!(
                "circular composition: {} -> {name}",
                visiting.join(" -> ")
            )));
        }
        let ct = self
            .types
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| XmitError::UnknownType(name.to_string()))?;
        visiting.push(name.to_string());
        // Bind composed types first so registry resolution succeeds;
        // enumeration references map to a scalar and need no binding.
        for e in &ct.elements {
            if let TypeRef::Named(n) = &e.type_ref {
                if self.enums.read().contains_key(n) {
                    continue;
                }
                self.bind_inner(n, visiting)?;
            }
        }
        visiting.pop();
        let enums = self.enums.read();
        let spec = map_type_with_enums(&ct, &self.registry.machine(), &|n| enums.contains_key(n))?;
        drop(enums);
        let format = self.registry.register(spec)?;
        self.bound.write().insert(name.to_string(), format.clone());
        Ok(format)
    }

    /// Bind every loaded type; returns tokens sorted by type name.
    pub fn bind_all(&self) -> Result<Vec<BindingToken>, XmitError> {
        self.loaded_types().into_iter().map(|n| self.bind(&n)).collect()
    }

    /// One-call convenience: bind `name` and mint a record of it.
    pub fn new_record(&self, name: &str) -> Result<RawRecord, XmitError> {
        Ok(self.bind(name)?.new_record())
    }

    // -- format-server integration (the Figure 2 arrow: "format
    // identifiers … allow component programs to retrieve the metadata on
    // demand") ---------------------------------------------------------

    /// Attach the format server decode should resolve unknown ids from.
    pub fn attach_format_server(&self, addr: std::net::SocketAddr) {
        *self.format_server.write() = Some(FormatServerClient::connect(addr));
    }

    /// Publish a bound format's descriptor to the attached server so
    /// remote components can resolve it by id.
    pub fn publish_format(&self, token: &BindingToken) -> Result<FormatId, XmitError> {
        let guard = self.format_server.read();
        let client = guard
            .as_ref()
            .ok_or_else(|| XmitError::Binding("no format server attached".to_string()))?;
        Ok(client.register(&token.format)?)
    }

    /// Decode a wire buffer, fetching the sender's descriptor from the
    /// attached format server if this toolkit has never seen its id.
    pub fn decode_resolving(&self, wire: &[u8]) -> Result<RawRecord, XmitError> {
        let header = openmeta_pbio::marshal::parse_header(wire)?;
        if self.registry.lookup_id(header.format_id).is_none() {
            let guard = self.format_server.read();
            let client = guard.as_ref().ok_or(XmitError::Bcm(
                openmeta_pbio::PbioError::UnknownFormatId(header.format_id.0),
            ))?;
            client.resolve_into(header.format_id, &self.registry)?;
        }
        Ok(openmeta_pbio::decode(wire, &self.registry)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_ohttp::HttpServer;
    use openmeta_pbio::{decode, encode};

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn join_request_xml() -> String {
        format!(
            r#"<xsd:complexType name="JoinRequest" xmlns:xsd="{XSD}">
                 <xsd:element name="name" type="xsd:string" />
                 <xsd:element name="server" type="xsd:unsignedLong" />
                 <xsd:element name="ip_addr" type="xsd:unsignedLong" />
                 <xsd:element name="pid" type="xsd:unsignedLong" />
                 <xsd:element name="ds_addr" type="xsd:unsignedLong" />
               </xsd:complexType>"#
        )
    }

    #[test]
    fn load_bind_marshal_from_mem() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.source().put_mem("join", join_request_xml());
        let names = xmit.load_url("mem://join").unwrap();
        assert_eq!(names, vec!["JoinRequest"]);
        let token = xmit.bind("JoinRequest").unwrap();
        let mut rec = token.new_record();
        rec.set_string("name", "flow2d").unwrap();
        rec.set_u64("server", 7).unwrap();
        let wire = encode(&rec).unwrap();
        let back = decode(&wire, xmit.registry()).unwrap();
        assert_eq!(back.get_string("name").unwrap(), "flow2d");
        assert_eq!(back.get_u64("server").unwrap(), 7);
    }

    #[test]
    fn remote_discovery_over_http() {
        let server = HttpServer::start().unwrap();
        server.put_xml("/formats/join.xsd", join_request_xml());
        let xmit = Xmit::new(MachineModel::native());
        let names = xmit.load_url(&server.url_for("/formats/join.xsd")).unwrap();
        assert_eq!(names, vec!["JoinRequest"]);
        assert!(xmit.bind("JoinRequest").is_ok());
        assert_eq!(server.hit_count(), 1);
    }

    #[test]
    fn sparc32_join_request_is_20_bytes() {
        // The paper's Figure 6 reports JoinRequest as a 20-byte structure.
        let xmit = Xmit::new(MachineModel::SPARC32);
        xmit.load_str(&join_request_xml()).unwrap();
        let token = xmit.bind("JoinRequest").unwrap();
        assert_eq!(token.format.record_size, 20);
    }

    #[test]
    fn unknown_type_and_bad_urls_error() {
        let xmit = Xmit::new(MachineModel::native());
        assert!(matches!(xmit.bind("Nope"), Err(XmitError::UnknownType(_))));
        assert!(matches!(xmit.load_url("mem://absent"), Err(XmitError::Discovery(_))));
        assert!(matches!(xmit.load_url("not a url"), Err(XmitError::Discovery(_))));
        assert!(matches!(xmit.load_str("<a/>"), Err(XmitError::Schema(_))));
    }

    #[test]
    fn format_change_via_reload() {
        let server = HttpServer::start().unwrap();
        let v1 = format!(
            r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
                 <xsd:element name="a" type="xsd:int" /></xsd:complexType>"#
        );
        let v2 = format!(
            r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
                 <xsd:element name="a" type="xsd:int" />
                 <xsd:element name="b" type="xsd:double" /></xsd:complexType>"#
        );
        server.put_xml("/evt.xsd", v1);
        let xmit = Xmit::new(MachineModel::native());
        let url = server.url_for("/evt.xsd");
        xmit.load_url(&url).unwrap();
        let t1 = xmit.bind("Evt").unwrap();
        // The format evolves centrally; the component just refreshes.
        server.put_xml("/evt.xsd", v2);
        xmit.refresh(&url).unwrap();
        let t2 = xmit.bind("Evt").unwrap();
        assert_ne!(t1.id(), t2.id());
        assert_eq!(t2.format.fields.len(), 2);
        // Both versions stay addressable for in-flight messages.
        assert!(xmit.registry().lookup_id(t1.id()).is_some());
    }

    #[test]
    fn composition_binds_dependencies() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&format!(
            r#"<xsd:schema xmlns:xsd="{XSD}">
                 <xsd:complexType name="Msg">
                   <xsd:element name="hdr" type="Hdr" />
                   <xsd:element name="v" type="xsd:double" />
                 </xsd:complexType>
                 <xsd:complexType name="Hdr">
                   <xsd:element name="seq" type="xsd:int" />
                 </xsd:complexType>
               </xsd:schema>"#
        ))
        .unwrap();
        // Binding Msg first works even though Hdr appears later in the doc.
        let token = xmit.bind("Msg").unwrap();
        assert!(token.format.field_path("hdr.seq").is_some());
        assert_eq!(xmit.bind_all().unwrap().len(), 2);
    }

    #[test]
    fn circular_composition_rejected() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&format!(
            r#"<xsd:schema xmlns:xsd="{XSD}">
                 <xsd:complexType name="A"><xsd:element name="b" type="B" /></xsd:complexType>
                 <xsd:complexType name="B"><xsd:element name="a" type="A" /></xsd:complexType>
               </xsd:schema>"#
        ))
        .unwrap();
        assert!(matches!(xmit.bind("A"), Err(XmitError::Binding(_))));
    }

    #[test]
    fn missing_composed_type_reported() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&format!(
            r#"<xsd:complexType name="A" xmlns:xsd="{XSD}">
                 <xsd:element name="q" type="Mystery" /></xsd:complexType>"#
        ))
        .unwrap();
        assert!(matches!(xmit.bind("A"), Err(XmitError::UnknownType(_))));
    }

    #[test]
    fn dependency_change_invalidates_composed_binding() {
        let xmit = Xmit::new(MachineModel::native());
        let doc = |hdr_fields: &str| {
            format!(
                r#"<xsd:schema xmlns:xsd="{XSD}">
                     <xsd:complexType name="Msg">
                       <xsd:element name="hdr" type="Hdr" />
                     </xsd:complexType>
                     <xsd:complexType name="Hdr">
                       <xsd:element name="seq" type="xsd:int" />{hdr_fields}
                     </xsd:complexType>
                   </xsd:schema>"#
            )
        };
        xmit.load_str(&doc("")).unwrap();
        let t1 = xmit.bind("Msg").unwrap();
        // Msg's own definition is untouched, but its dependency grows; the
        // bound-token cache must not serve the stale composition.
        xmit.load_str(&doc(r#"<xsd:element name="flags" type="xsd:int" />"#)).unwrap();
        let t2 = xmit.bind("Msg").unwrap();
        assert_ne!(t1.id(), t2.id(), "changed dependency must re-bind the composition");
        assert!(t2.format.field_path("hdr.flags").is_some());
    }

    #[test]
    fn binding_is_idempotent() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&join_request_xml()).unwrap();
        let t1 = xmit.bind("JoinRequest").unwrap();
        let t2 = xmit.bind("JoinRequest").unwrap();
        assert!(Arc::ptr_eq(&t1.format, &t2.format));
    }
}
