//! The toolkit facade: load documents, bind types, mint records.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use openmeta_ohttp::{DocumentSource, StandardSource, Url};
use openmeta_pbio::server::FormatServerClient;
use openmeta_pbio::{FormatDescriptor, FormatId, FormatRegistry, MachineModel, RawRecord};
use openmeta_schema::model::EnumType;
use openmeta_schema::{parse_str, ComplexType, TypeRef};

use crate::error::XmitError;
use crate::mapping::map_type_with_enums;

/// The result of binding a complex type: the paper's "binding token …
/// used directly with the chosen BCM to perform marshaling and
/// unmarshaling".
#[derive(Debug, Clone)]
pub struct BindingToken {
    /// The complex type this token binds.
    pub type_name: String,
    /// The generated native metadata, registered with the BCM.
    pub format: Arc<FormatDescriptor>,
}

impl BindingToken {
    /// The compact format identifier carried in message headers.
    pub fn id(&self) -> FormatId {
        self.format.id()
    }

    /// A zeroed record of this format.
    pub fn new_record(&self) -> RawRecord {
        RawRecord::new(self.format.clone())
    }
}

/// The XMIT toolkit instance.
///
/// Holds loaded (but not yet bound) complex types, a PBIO format registry
/// for the selected machine model, and the document source used for
/// discovery.
pub struct Xmit {
    registry: Arc<FormatRegistry>,
    standard: Arc<StandardSource>,
    custom: Option<Arc<dyn DocumentSource>>,
    /// Loaded complex types, latest definition per name.
    types: RwLock<HashMap<String, ComplexType>>,
    /// Loaded enumerations, latest definition per name.
    enums: RwLock<HashMap<String, EnumType>>,
    /// URL → type names it defined at last load (for refresh bookkeeping).
    documents: RwLock<HashMap<String, Vec<String>>>,
    /// Optional format server for resolving unknown format ids on decode.
    format_server: RwLock<Option<FormatServerClient>>,
}

impl Xmit {
    /// A toolkit generating metadata for `machine`, with the standard
    /// document source (`http://`, `file://`, `mem://`).
    pub fn new(machine: MachineModel) -> Xmit {
        Xmit {
            registry: Arc::new(FormatRegistry::new(machine)),
            standard: Arc::new(StandardSource::new()),
            custom: None,
            types: RwLock::new(HashMap::new()),
            enums: RwLock::new(HashMap::new()),
            documents: RwLock::new(HashMap::new()),
            format_server: RwLock::new(None),
        }
    }

    /// A toolkit with a caller-provided document source.
    pub fn with_source(machine: MachineModel, source: Arc<dyn DocumentSource>) -> Xmit {
        Xmit { custom: Some(source), ..Xmit::new(machine) }
    }

    /// The BCM format registry (shared with receivers for decoding).
    pub fn registry(&self) -> &Arc<FormatRegistry> {
        &self.registry
    }

    /// The standard source, e.g. to publish `mem://` fixtures in tests.
    pub fn source(&self) -> &StandardSource {
        &self.standard
    }

    fn fetch(&self, url: &Url) -> Result<String, XmitError> {
        match &self.custom {
            Some(s) => Ok(s.fetch(url)?),
            None => Ok(self.standard.fetch(url)?),
        }
    }

    /// Fetch a document's text through the toolkit's source without
    /// loading it (used by [`crate::watcher::FormatWatcher`] to detect
    /// changes).
    pub fn fetch_document(&self, url: &Url) -> Result<String, XmitError> {
        self.fetch(url)
    }

    /// "Load the toolkit with message definitions (contained in XML
    /// documents) from one or more URLs."  Returns the names of the
    /// complex types the document defined.
    pub fn load_url(&self, url: &str) -> Result<Vec<String>, XmitError> {
        let parsed = Url::parse(url)?;
        let text = self.fetch(&parsed)?;
        let names = self.load_str(&text)?;
        self.documents.write().insert(url.to_string(), names.clone());
        Ok(names)
    }

    /// Load definitions from already-fetched XML text.
    pub fn load_str(&self, text: &str) -> Result<Vec<String>, XmitError> {
        let doc = parse_str(text)?;
        let mut names = Vec::with_capacity(doc.types.len());
        {
            let mut types = self.types.write();
            for ct in doc.types {
                names.push(ct.name.clone());
                types.insert(ct.name.clone(), ct);
            }
        }
        {
            let mut enums = self.enums.write();
            for en in doc.enums {
                enums.insert(en.name.clone(), en);
            }
        }
        Ok(names)
    }

    /// Re-fetch a previously loaded URL, picking up centralized format
    /// changes.  Returns the (possibly changed) type names.
    pub fn refresh(&self, url: &str) -> Result<Vec<String>, XmitError> {
        self.load_url(url)
    }

    /// Names of all loaded complex types, sorted.
    pub fn loaded_types(&self) -> Vec<String> {
        let mut v: Vec<String> = self.types.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Look at a loaded (unbound) definition.
    pub fn definition(&self, name: &str) -> Option<ComplexType> {
        self.types.read().get(name).cloned()
    }

    /// Look at a loaded enumeration definition.
    pub fn enumeration(&self, name: &str) -> Option<EnumType> {
        self.enums.read().get(name).cloned()
    }

    /// Wire value of an enumeration symbol (its declaration index).
    pub fn enum_index(&self, enum_name: &str, symbol: &str) -> Result<u64, XmitError> {
        let en = self
            .enumeration(enum_name)
            .ok_or_else(|| XmitError::UnknownType(enum_name.to_string()))?;
        en.index_of(symbol).map(|i| i as u64).ok_or_else(|| {
            XmitError::Binding(format!("'{symbol}' is not a value of enumeration '{enum_name}'"))
        })
    }

    /// Symbol behind a wire value of an enumeration.
    pub fn enum_symbol(&self, enum_name: &str, index: u64) -> Result<String, XmitError> {
        let en = self
            .enumeration(enum_name)
            .ok_or_else(|| XmitError::UnknownType(enum_name.to_string()))?;
        en.symbol(index as usize).map(str::to_string).ok_or_else(|| {
            XmitError::Binding(format!("enumeration '{enum_name}' has no value {index}"))
        })
    }

    /// Bind a loaded complex type: generate PBIO metadata (recursively
    /// binding composed types first) and register it.
    pub fn bind(&self, name: &str) -> Result<BindingToken, XmitError> {
        let mut visiting = Vec::new();
        let format = self.bind_inner(name, &mut visiting)?;
        Ok(BindingToken { type_name: name.to_string(), format })
    }

    fn bind_inner(
        &self,
        name: &str,
        visiting: &mut Vec<String>,
    ) -> Result<Arc<FormatDescriptor>, XmitError> {
        if visiting.iter().any(|v| v == name) {
            return Err(XmitError::Binding(format!(
                "circular composition: {} -> {name}",
                visiting.join(" -> ")
            )));
        }
        let ct = self
            .types
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| XmitError::UnknownType(name.to_string()))?;
        visiting.push(name.to_string());
        // Bind composed types first so registry resolution succeeds;
        // enumeration references map to a scalar and need no binding.
        for e in &ct.elements {
            if let TypeRef::Named(n) = &e.type_ref {
                if self.enums.read().contains_key(n) {
                    continue;
                }
                self.bind_inner(n, visiting)?;
            }
        }
        visiting.pop();
        let enums = self.enums.read();
        let spec = map_type_with_enums(&ct, &self.registry.machine(), &|n| enums.contains_key(n))?;
        drop(enums);
        Ok(self.registry.register(spec)?)
    }

    /// Bind every loaded type; returns tokens sorted by type name.
    pub fn bind_all(&self) -> Result<Vec<BindingToken>, XmitError> {
        self.loaded_types().into_iter().map(|n| self.bind(&n)).collect()
    }

    /// One-call convenience: bind `name` and mint a record of it.
    pub fn new_record(&self, name: &str) -> Result<RawRecord, XmitError> {
        Ok(self.bind(name)?.new_record())
    }

    // -- format-server integration (the Figure 2 arrow: "format
    // identifiers … allow component programs to retrieve the metadata on
    // demand") ---------------------------------------------------------

    /// Attach the format server decode should resolve unknown ids from.
    pub fn attach_format_server(&self, addr: std::net::SocketAddr) {
        *self.format_server.write() = Some(FormatServerClient::connect(addr));
    }

    /// Publish a bound format's descriptor to the attached server so
    /// remote components can resolve it by id.
    pub fn publish_format(&self, token: &BindingToken) -> Result<FormatId, XmitError> {
        let guard = self.format_server.read();
        let client = guard
            .as_ref()
            .ok_or_else(|| XmitError::Binding("no format server attached".to_string()))?;
        Ok(client.register(&token.format)?)
    }

    /// Decode a wire buffer, fetching the sender's descriptor from the
    /// attached format server if this toolkit has never seen its id.
    pub fn decode_resolving(&self, wire: &[u8]) -> Result<RawRecord, XmitError> {
        let header = openmeta_pbio::marshal::parse_header(wire)?;
        if self.registry.lookup_id(header.format_id).is_none() {
            let guard = self.format_server.read();
            let client = guard.as_ref().ok_or(XmitError::Bcm(
                openmeta_pbio::PbioError::UnknownFormatId(header.format_id.0),
            ))?;
            client.resolve_into(header.format_id, &self.registry)?;
        }
        Ok(openmeta_pbio::decode(wire, &self.registry)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_ohttp::HttpServer;
    use openmeta_pbio::{decode, encode};

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn join_request_xml() -> String {
        format!(
            r#"<xsd:complexType name="JoinRequest" xmlns:xsd="{XSD}">
                 <xsd:element name="name" type="xsd:string" />
                 <xsd:element name="server" type="xsd:unsignedLong" />
                 <xsd:element name="ip_addr" type="xsd:unsignedLong" />
                 <xsd:element name="pid" type="xsd:unsignedLong" />
                 <xsd:element name="ds_addr" type="xsd:unsignedLong" />
               </xsd:complexType>"#
        )
    }

    #[test]
    fn load_bind_marshal_from_mem() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.source().put_mem("join", join_request_xml());
        let names = xmit.load_url("mem://join").unwrap();
        assert_eq!(names, vec!["JoinRequest"]);
        let token = xmit.bind("JoinRequest").unwrap();
        let mut rec = token.new_record();
        rec.set_string("name", "flow2d").unwrap();
        rec.set_u64("server", 7).unwrap();
        let wire = encode(&rec).unwrap();
        let back = decode(&wire, xmit.registry()).unwrap();
        assert_eq!(back.get_string("name").unwrap(), "flow2d");
        assert_eq!(back.get_u64("server").unwrap(), 7);
    }

    #[test]
    fn remote_discovery_over_http() {
        let server = HttpServer::start().unwrap();
        server.put_xml("/formats/join.xsd", join_request_xml());
        let xmit = Xmit::new(MachineModel::native());
        let names = xmit.load_url(&server.url_for("/formats/join.xsd")).unwrap();
        assert_eq!(names, vec!["JoinRequest"]);
        assert!(xmit.bind("JoinRequest").is_ok());
        assert_eq!(server.hit_count(), 1);
    }

    #[test]
    fn sparc32_join_request_is_20_bytes() {
        // The paper's Figure 6 reports JoinRequest as a 20-byte structure.
        let xmit = Xmit::new(MachineModel::SPARC32);
        xmit.load_str(&join_request_xml()).unwrap();
        let token = xmit.bind("JoinRequest").unwrap();
        assert_eq!(token.format.record_size, 20);
    }

    #[test]
    fn unknown_type_and_bad_urls_error() {
        let xmit = Xmit::new(MachineModel::native());
        assert!(matches!(xmit.bind("Nope"), Err(XmitError::UnknownType(_))));
        assert!(matches!(xmit.load_url("mem://absent"), Err(XmitError::Discovery(_))));
        assert!(matches!(xmit.load_url("not a url"), Err(XmitError::Discovery(_))));
        assert!(matches!(xmit.load_str("<a/>"), Err(XmitError::Schema(_))));
    }

    #[test]
    fn format_change_via_reload() {
        let server = HttpServer::start().unwrap();
        let v1 = format!(
            r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
                 <xsd:element name="a" type="xsd:int" /></xsd:complexType>"#
        );
        let v2 = format!(
            r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
                 <xsd:element name="a" type="xsd:int" />
                 <xsd:element name="b" type="xsd:double" /></xsd:complexType>"#
        );
        server.put_xml("/evt.xsd", v1);
        let xmit = Xmit::new(MachineModel::native());
        let url = server.url_for("/evt.xsd");
        xmit.load_url(&url).unwrap();
        let t1 = xmit.bind("Evt").unwrap();
        // The format evolves centrally; the component just refreshes.
        server.put_xml("/evt.xsd", v2);
        xmit.refresh(&url).unwrap();
        let t2 = xmit.bind("Evt").unwrap();
        assert_ne!(t1.id(), t2.id());
        assert_eq!(t2.format.fields.len(), 2);
        // Both versions stay addressable for in-flight messages.
        assert!(xmit.registry().lookup_id(t1.id()).is_some());
    }

    #[test]
    fn composition_binds_dependencies() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&format!(
            r#"<xsd:schema xmlns:xsd="{XSD}">
                 <xsd:complexType name="Msg">
                   <xsd:element name="hdr" type="Hdr" />
                   <xsd:element name="v" type="xsd:double" />
                 </xsd:complexType>
                 <xsd:complexType name="Hdr">
                   <xsd:element name="seq" type="xsd:int" />
                 </xsd:complexType>
               </xsd:schema>"#
        ))
        .unwrap();
        // Binding Msg first works even though Hdr appears later in the doc.
        let token = xmit.bind("Msg").unwrap();
        assert!(token.format.field_path("hdr.seq").is_some());
        assert_eq!(xmit.bind_all().unwrap().len(), 2);
    }

    #[test]
    fn circular_composition_rejected() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&format!(
            r#"<xsd:schema xmlns:xsd="{XSD}">
                 <xsd:complexType name="A"><xsd:element name="b" type="B" /></xsd:complexType>
                 <xsd:complexType name="B"><xsd:element name="a" type="A" /></xsd:complexType>
               </xsd:schema>"#
        ))
        .unwrap();
        assert!(matches!(xmit.bind("A"), Err(XmitError::Binding(_))));
    }

    #[test]
    fn missing_composed_type_reported() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&format!(
            r#"<xsd:complexType name="A" xmlns:xsd="{XSD}">
                 <xsd:element name="q" type="Mystery" /></xsd:complexType>"#
        ))
        .unwrap();
        assert!(matches!(xmit.bind("A"), Err(XmitError::UnknownType(_))));
    }

    #[test]
    fn binding_is_idempotent() {
        let xmit = Xmit::new(MachineModel::native());
        xmit.load_str(&join_request_xml()).unwrap();
        let t1 = xmit.bind("JoinRequest").unwrap();
        let t2 = xmit.bind("JoinRequest").unwrap();
        assert!(Arc::ptr_eq(&t1.format, &t2.format));
    }
}
