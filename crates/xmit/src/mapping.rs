//! Constructing native (PBIO) metadata from XML Schema definitions —
//! the heart of §3.1.
//!
//! "The selection of a native metadata system implicitly selects a mapping
//! from the supported set of XML Schema data types to those supported by
//! the native system.  The mapping also includes information such as
//! structure offsets and data type sizes for BCMs requiring them."
//!
//! Concretely: each `complexType` becomes a [`FormatSpec`]; each `element`
//! becomes an [`IOField`] whose PBIO type string and byte width are chosen
//! per the target [`MachineModel`] (e.g. `xsd:unsignedLong` → `unsigned
//! integer` of `sizeof(unsigned long)` — 4 bytes on the paper's SPARC32,
//! 8 on LP64).  Offsets are left to PBIO's layout engine, which removes
//! "the need to consider … structure padding".

use openmeta_pbio::{FormatSpec, IOField, MachineModel};
use openmeta_schema::xsd::XsdPrimitive;
use openmeta_schema::{ComplexType, Occurs, SchemaDocument, TypeRef};

use crate::error::XmitError;

/// PBIO base-type string and element width for one xsd primitive.
///
/// Returns `None` for `xsd:string`, which maps to PBIO's var-length
/// `string` kind rather than a sized scalar.
pub fn primitive_to_pbio(p: XsdPrimitive, machine: &MachineModel) -> Option<(&'static str, usize)> {
    Some(match p {
        XsdPrimitive::String => return None,
        XsdPrimitive::Boolean => ("boolean", 4),
        XsdPrimitive::Float => ("float", 4),
        XsdPrimitive::Double => ("float", 8),
        // xsd:integer is unbounded in XML Schema; XMIT binds it to the
        // platform int, as the paper's examples do.
        XsdPrimitive::Integer => ("integer", 4),
        XsdPrimitive::Long => ("integer", 8),
        XsdPrimitive::Int => ("integer", 4),
        XsdPrimitive::Short => ("integer", 2),
        XsdPrimitive::Byte => ("integer", 1),
        XsdPrimitive::NonNegativeInteger => ("unsigned integer", 4),
        // The paper's JoinRequest/ASDOffEvent map unsignedLong onto the
        // platform unsigned long.
        XsdPrimitive::UnsignedLong => ("unsigned integer", machine.long_size),
        XsdPrimitive::UnsignedInt => ("unsigned integer", 4),
        XsdPrimitive::UnsignedShort => ("unsigned integer", 2),
        XsdPrimitive::UnsignedByte => ("unsigned integer", 1),
    })
}

/// Map one complex type to a PBIO format spec.
///
/// Dynamic arrays whose `dimensionName` names no declared element get an
/// implicit integer length field synthesized next to the array, honouring
/// `dimensionPlacement` (this is what makes the paper's Figure 4
/// `SimpleData` document produce the three-field C struct).
pub fn map_type(ct: &ComplexType, machine: &MachineModel) -> Result<FormatSpec, XmitError> {
    map_type_with_enums(ct, machine, &|_| false)
}

/// Like [`map_type`], with named-type references that `is_enum` claims
/// mapped onto PBIO's `enumeration` base type (4-byte symbol index)
/// instead of nested records — §3.1's "integer, string, and enumeration
/// types".
pub fn map_type_with_enums(
    ct: &ComplexType,
    machine: &MachineModel,
    is_enum: &dyn Fn(&str) -> bool,
) -> Result<FormatSpec, XmitError> {
    let mut fields: Vec<IOField> = Vec::with_capacity(ct.elements.len() + 1);
    for e in &ct.elements {
        match (&e.type_ref, e.occurs) {
            (TypeRef::Named(n), Occurs::One) if is_enum(n) => {
                fields.push(IOField::auto(e.name.clone(), "enumeration", 4));
            }
            (TypeRef::Named(n), Occurs::One) => {
                fields.push(IOField::auto(e.name.clone(), n.clone(), 0));
            }
            (TypeRef::Named(n), _) => {
                return Err(XmitError::Binding(format!(
                    "element '{}': arrays of complex type '{n}' are not mappable to PBIO",
                    e.name
                )));
            }
            (TypeRef::Primitive(p), occurs) => {
                let scalar = primitive_to_pbio(*p, machine);
                match (occurs, scalar) {
                    (Occurs::One, None) => {
                        fields.push(IOField::auto(e.name.clone(), "string", 0));
                    }
                    (Occurs::One, Some((base, size))) => {
                        fields.push(IOField::auto(e.name.clone(), base, size));
                    }
                    (Occurs::Bounded(n), Some((base, size))) => {
                        fields.push(IOField::auto(e.name.clone(), format!("{base}[{n}]"), size));
                    }
                    (Occurs::Unbounded, Some((base, size))) => {
                        let dim = e.dimension_name.as_deref().ok_or_else(|| {
                            XmitError::Binding(format!(
                                "element '{}': dynamic array without a dimension",
                                e.name
                            ))
                        })?;
                        let needs_synthetic =
                            ct.element(dim).is_none() && !fields.iter().any(|f| f.name == dim);
                        let array = IOField::auto(e.name.clone(), format!("{base}[{dim}]"), size);
                        if needs_synthetic {
                            use openmeta_schema::model::DimensionPlacement;
                            let length = IOField::auto(dim, "integer", 4);
                            match e.dimension_placement {
                                DimensionPlacement::Before => {
                                    fields.push(length);
                                    fields.push(array);
                                }
                                DimensionPlacement::After => {
                                    fields.push(array);
                                    fields.push(length);
                                }
                            }
                        } else {
                            fields.push(array);
                        }
                    }
                    (_, None) => {
                        return Err(XmitError::Binding(format!(
                            "element '{}': arrays of xsd:string are not mappable to PBIO",
                            e.name
                        )));
                    }
                }
            }
        }
    }
    Ok(FormatSpec::new(ct.name.clone(), fields))
}

/// Map every type in a document, in document order, honouring the
/// document's own enumeration definitions.
pub fn map_document(
    doc: &SchemaDocument,
    machine: &MachineModel,
) -> Result<Vec<FormatSpec>, XmitError> {
    let is_enum = |n: &str| doc.get_enum(n).is_some();
    doc.types.iter().map(|t| map_type_with_enums(t, machine, &is_enum)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_pbio::FormatRegistry;
    use openmeta_schema::parse_str;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn wrap(body: &str) -> String {
        format!("<xsd:schema xmlns:xsd=\"{XSD}\">{body}</xsd:schema>")
    }

    /// Figure 2's ASDOffEvent → exactly the PBIO metadata of Figure 2.
    #[test]
    fn asdoff_event_matches_figure_2() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="ASDOffEvent">
                 <xsd:element name="centerID" type="xsd:string" />
                 <xsd:element name="airline" type="xsd:string" />
                 <xsd:element name="flightNum" type="xsd:integer" />
                 <xsd:element name="off" type="xsd:unsignedLong" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let spec = map_type(doc.get("ASDOffEvent").unwrap(), &MachineModel::SPARC32).unwrap();
        assert_eq!(
            spec.fields,
            vec![
                IOField::auto("centerID", "string", 0),
                IOField::auto("airline", "string", 0),
                IOField::auto("flightNum", "integer", 4),
                IOField::auto("off", "unsigned integer", 4), // sizeof(unsigned long) on SPARC32
            ]
        );
        // And the registered struct is 16 bytes, like the C original.
        let reg = FormatRegistry::new(MachineModel::SPARC32);
        assert_eq!(reg.register(spec).unwrap().record_size, 16);
    }

    /// Figure 4's SimpleData: implicit `size` length field synthesized
    /// before the array, giving the paper's 12-byte struct.
    #[test]
    fn simple_data_synthesizes_size_field() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="SimpleData">
                 <xsd:element name="timestep" type="xsd:integer" />
                 <xsd:element name="data" type="xsd:float"
                     minOccurs="0" maxOccurs="*"
                     dimensionPlacement="before" dimensionName="size" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let spec = map_type(doc.get("SimpleData").unwrap(), &MachineModel::SPARC32).unwrap();
        let names: Vec<&str> = spec.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["timestep", "size", "data"]);
        let reg = FormatRegistry::new(MachineModel::SPARC32);
        assert_eq!(reg.register(spec).unwrap().record_size, 12);
    }

    #[test]
    fn explicit_dimension_not_duplicated() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="size" type="xsd:integer" />
                 <xsd:element name="data" type="xsd:float" maxOccurs="*"
                     dimensionName="size" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let spec = map_type(doc.get("T").unwrap(), &MachineModel::SPARC32).unwrap();
        assert_eq!(spec.fields.len(), 2);
    }

    #[test]
    fn dimension_placement_after() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="T">
                 <xsd:element name="data" type="xsd:double" maxOccurs="*"
                     dimensionPlacement="after" dimensionName="n" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let spec = map_type(doc.get("T").unwrap(), &MachineModel::SPARC32).unwrap();
        let names: Vec<&str> = spec.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["data", "n"]);
        assert_eq!(spec.fields[0].type_desc, "float[n]");
        assert_eq!(spec.fields[0].size, 8);
    }

    #[test]
    fn machine_dependent_widths() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="W">
                 <xsd:element name="addr" type="xsd:unsignedLong" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let s32 = map_type(doc.get("W").unwrap(), &MachineModel::SPARC32).unwrap();
        let s64 = map_type(doc.get("W").unwrap(), &MachineModel::X86_64).unwrap();
        assert_eq!(s32.fields[0].size, 4);
        assert_eq!(s64.fields[0].size, 8);
    }

    #[test]
    fn every_primitive_maps_and_registers() {
        let reg = FormatRegistry::new(MachineModel::native());
        let mut fields = String::new();
        for (i, p) in XsdPrimitive::all().iter().enumerate() {
            fields.push_str(&format!(
                "<xsd:element name=\"f{i}\" type=\"xsd:{}\" />",
                p.local_name()
            ));
        }
        let doc =
            parse_str(&wrap(&format!("<xsd:complexType name=\"All\">{fields}</xsd:complexType>")))
                .unwrap();
        let spec = map_type(doc.get("All").unwrap(), &MachineModel::native()).unwrap();
        let desc = reg.register(spec).unwrap();
        assert_eq!(desc.total_field_count(), XsdPrimitive::all().len());
    }

    #[test]
    fn static_arrays_map() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="G">
                 <xsd:element name="grid" type="xsd:float" maxOccurs="16" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let spec = map_type(doc.get("G").unwrap(), &MachineModel::SPARC32).unwrap();
        assert_eq!(spec.fields[0].type_desc, "float[16]");
        let reg = FormatRegistry::new(MachineModel::SPARC32);
        assert_eq!(reg.register(spec).unwrap().record_size, 64);
    }

    #[test]
    fn composition_maps_to_nested_formats() {
        let doc = parse_str(&wrap(
            r#"<xsd:complexType name="Hdr">
                 <xsd:element name="seq" type="xsd:int" />
               </xsd:complexType>
               <xsd:complexType name="Msg">
                 <xsd:element name="hdr" type="Hdr" />
                 <xsd:element name="v" type="xsd:double" />
               </xsd:complexType>"#,
        ))
        .unwrap();
        let specs = map_document(&doc, &MachineModel::SPARC32).unwrap();
        let reg = FormatRegistry::new(MachineModel::SPARC32);
        for s in specs {
            reg.register(s).unwrap();
        }
        let msg = reg.lookup_name("Msg").unwrap();
        assert_eq!(msg.record_size, 16);
        assert!(msg.field_path("hdr.seq").is_some());
    }
}
