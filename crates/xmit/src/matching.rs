//! Schema-checking of live messages.
//!
//! §3 lists as an XMIT advantage that "since the structure of a message
//! will be represented using XML, schema-checking tools may be applied to
//! live messages received from other parties to determine which of
//! several structure definitions a message best matches."  This module is
//! that tool: give it the text of an XML-wire message and a set of loaded
//! `complexType`s, and it scores each candidate.

use openmeta_schema::xsd::{XsdCategory, XsdPrimitive};
use openmeta_schema::{ComplexType, Occurs, TypeRef};
use openmeta_xml::{Document, NodeId};

use crate::error::XmitError;

/// How one candidate type fared against a message.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchReport {
    /// Candidate type name.
    pub type_name: String,
    /// 0.0–1.0; higher is better.  1.0 = every declared element present
    /// with a parsable value, nothing unexplained, root name agrees.
    pub score: f64,
    /// Whether the message's root element name equals the type name.
    pub root_matches: bool,
    /// Declared elements satisfied by the message.
    pub matched: usize,
    /// Declared elements absent from the message.
    pub missing: Vec<String>,
    /// Declared elements present with unparsable values.
    pub mismatched: Vec<String>,
    /// Message elements no declaration explains.
    pub unexplained: Vec<String>,
}

/// Score every candidate against a live message; best first.
pub fn match_message(
    message_xml: &str,
    candidates: &[ComplexType],
) -> Result<Vec<MatchReport>, XmitError> {
    let doc = openmeta_xml::parse(message_xml)
        .map_err(openmeta_schema::SchemaError::Xml)
        .map_err(XmitError::Schema)?;
    let root = doc
        .root_element()
        .ok_or_else(|| XmitError::Binding("message has no root element".to_string()))?;
    let mut reports: Vec<MatchReport> =
        candidates.iter().map(|ct| score_candidate(&doc, root, ct)).collect();
    reports.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    Ok(reports)
}

/// Convenience: the single best candidate, if any clears `threshold`.
pub fn best_match<'c>(
    message_xml: &str,
    candidates: &'c [ComplexType],
    threshold: f64,
) -> Result<Option<&'c ComplexType>, XmitError> {
    let reports = match_message(message_xml, candidates)?;
    Ok(reports
        .first()
        .filter(|r| r.score >= threshold)
        .and_then(|r| candidates.iter().find(|c| c.name == r.type_name)))
}

fn value_parses(p: XsdPrimitive, text: &str) -> bool {
    let t = text.trim();
    match p.category() {
        XsdCategory::String => true,
        XsdCategory::Boolean => matches!(t, "true" | "false" | "0" | "1"),
        XsdCategory::FloatN(_) => t.parse::<f64>().is_ok(),
        XsdCategory::Signed(_) => t.parse::<i64>().is_ok(),
        XsdCategory::Unsigned(_) => t.parse::<u64>().is_ok(),
    }
}

fn score_candidate(doc: &Document, root: NodeId, ct: &ComplexType) -> MatchReport {
    let root_matches = doc.name(root).local == ct.name;
    let mut matched = 0usize;
    let mut missing = Vec::new();
    let mut mismatched = Vec::new();
    let mut explained: std::collections::HashSet<String> = std::collections::HashSet::new();

    for e in &ct.elements {
        let nodes: Vec<NodeId> = doc.children_named(root, &e.name).collect();
        explained.insert(e.name.clone());
        let occurs_ok = match e.occurs {
            Occurs::One => nodes.len() == 1,
            Occurs::Bounded(n) => nodes.len() == n || nodes.len() == 1,
            Occurs::Unbounded => true,
        };
        // A dynamic array's implicit dimension element may or may not be
        // present in the message; never demand it.
        if nodes.is_empty() {
            if e.occurs == Occurs::Unbounded {
                matched += 1; // empty array is legitimate
            } else {
                missing.push(e.name.clone());
            }
            continue;
        }
        if !occurs_ok {
            mismatched.push(e.name.clone());
            continue;
        }
        let values_ok = match &e.type_ref {
            TypeRef::Primitive(p) => nodes.iter().all(|&n| value_parses(*p, &doc.text_content(n))),
            TypeRef::Named(_) => nodes.iter().all(|&n| {
                doc.child_elements(n).next().is_some() || doc.text_content(n).trim().is_empty()
            }),
        };
        if values_ok {
            matched += 1;
        } else {
            mismatched.push(e.name.clone());
        }
    }
    // Dimension names referenced by dynamic arrays are explained too.
    for e in &ct.elements {
        if let Some(dim) = &e.dimension_name {
            explained.insert(dim.clone());
        }
    }
    let unexplained: Vec<String> = {
        let mut seen = std::collections::HashSet::new();
        doc.child_elements(root)
            .map(|c| doc.name(c).local.clone())
            .filter(|n| !explained.contains(n))
            .filter(|n| seen.insert(n.clone()))
            .collect()
    };

    let declared = ct.elements.len().max(1) as f64;
    let child_names: std::collections::HashSet<String> =
        { doc.child_elements(root).map(|c| doc.name(c).local.clone()).collect() };
    let present_kinds = child_names.len().max(1) as f64;
    let mut score = matched as f64 / declared;
    score *= 1.0 - (unexplained.len() as f64 / present_kinds).min(1.0) * 0.5;
    score -= mismatched.len() as f64 / declared * 0.5;
    if root_matches {
        score = (score + 1.0) / 2.0 + 0.0; // root agreement pulls toward 1
    } else {
        score *= 0.75;
    }
    MatchReport {
        type_name: ct.name.clone(),
        score: score.clamp(0.0, 1.0),
        root_matches,
        matched,
        missing,
        mismatched,
        unexplained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_schema::parse_str;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn candidates() -> Vec<ComplexType> {
        parse_str(&format!(
            r#"<xsd:schema xmlns:xsd="{XSD}">
                 <xsd:complexType name="SimpleData">
                   <xsd:element name="timestep" type="xsd:integer" />
                   <xsd:element name="size" type="xsd:integer" />
                   <xsd:element name="data" type="xsd:float" maxOccurs="*"
                       dimensionName="size" />
                 </xsd:complexType>
                 <xsd:complexType name="JoinRequest">
                   <xsd:element name="name" type="xsd:string" />
                   <xsd:element name="server" type="xsd:unsignedLong" />
                   <xsd:element name="pid" type="xsd:unsignedLong" />
                 </xsd:complexType>
               </xsd:schema>"#
        ))
        .unwrap()
        .types
    }

    #[test]
    fn identifies_the_right_format() {
        let msg = "<SimpleData><timestep>9</timestep><size>2</size>\
                   <data>1.5</data><data>2.5</data></SimpleData>";
        let reports = match_message(msg, &candidates()).unwrap();
        assert_eq!(reports[0].type_name, "SimpleData");
        assert!(reports[0].score > reports[1].score);
        assert!(reports[0].root_matches);
        assert_eq!(reports[0].matched, 3);
        assert!(reports[0].missing.is_empty());
    }

    #[test]
    fn identifies_despite_renamed_root() {
        // The sender wrapped the payload differently; field structure
        // still identifies the format.
        let msg = "<msg><name>flow2d</name><server>1</server><pid>42</pid></msg>";
        let reports = match_message(msg, &candidates()).unwrap();
        assert_eq!(reports[0].type_name, "JoinRequest");
        assert!(!reports[0].root_matches);
    }

    #[test]
    fn best_match_threshold() {
        let cands = candidates();
        let msg = "<SimpleData><timestep>9</timestep><size>0</size></SimpleData>";
        let best = best_match(msg, &cands, 0.8).unwrap().unwrap();
        assert_eq!(best.name, "SimpleData");
        // A message matching nothing falls below the threshold.
        let noise = "<x><alpha>1</alpha><beta>q</beta></x>";
        assert!(best_match(noise, &cands, 0.8).unwrap().is_none());
    }

    #[test]
    fn mismatched_value_types_penalized() {
        let good = "<JoinRequest><name>a</name><server>1</server><pid>2</pid></JoinRequest>";
        let bad = "<JoinRequest><name>a</name><server>NaN!</server><pid>x</pid></JoinRequest>";
        let cands = candidates();
        let g = match_message(good, &cands).unwrap();
        let b = match_message(bad, &cands).unwrap();
        let gs = g.iter().find(|r| r.type_name == "JoinRequest").unwrap();
        let bs = b.iter().find(|r| r.type_name == "JoinRequest").unwrap();
        assert!(gs.score > bs.score);
        assert_eq!(bs.mismatched, vec!["server".to_string(), "pid".to_string()]);
    }

    #[test]
    fn unexplained_elements_penalized() {
        let exact = "<JoinRequest><name>a</name><server>1</server><pid>2</pid></JoinRequest>";
        let extra = "<JoinRequest><name>a</name><server>1</server><pid>2</pid>\
                     <junk>zzz</junk><junk2>1</junk2></JoinRequest>";
        let cands = candidates();
        let e = &match_message(exact, &cands).unwrap()[0];
        let x = &match_message(extra, &cands).unwrap()[0];
        assert!(e.score > x.score);
        assert_eq!(x.unexplained.len(), 2);
    }

    #[test]
    fn real_xml_wire_output_scores_perfectly() {
        // A message produced by the XML wire format must score 1.0
        // against its own definition.
        use openmeta_pbio::{FormatRegistry, FormatSpec, IOField, MachineModel, RawRecord};
        let reg = FormatRegistry::new(MachineModel::native());
        let fmt = reg
            .register(FormatSpec::new(
                "SimpleData",
                vec![
                    IOField::auto("timestep", "integer", 4),
                    IOField::auto("size", "integer", 4),
                    IOField::auto("data", "float[size]", 4),
                ],
            ))
            .unwrap();
        let mut rec = RawRecord::new(fmt);
        rec.set_i64("timestep", 3).unwrap();
        rec.set_f64_array("data", &[1.0, 2.0]).unwrap();
        // Hand-rolled equivalent of the XML wire output.
        let msg = "<SimpleData><timestep>3</timestep><size>2</size>\
                   <data>1</data><data>2</data></SimpleData>";
        let reports = match_message(msg, &candidates()).unwrap();
        assert_eq!(reports[0].type_name, "SimpleData");
        assert!((reports[0].score - 1.0).abs() < 1e-9, "score {}", reports[0].score);
    }

    #[test]
    fn garbage_input_is_an_error_not_a_panic() {
        assert!(match_message("<<<", &candidates()).is_err());
        assert!(match_message("", &candidates()).is_err());
    }
}
