//! Compatibility analysis between format versions.
//!
//! PBIO's restricted evolution (§5) has precise rules: receivers match
//! fields *by name*; added fields are invisible to old receivers; removed
//! fields read as zero at new receivers; a field whose value category
//! changes (e.g. float → string) makes the versions incompatible.  This
//! module turns two `complexType` definitions into an explicit
//! compatibility report, for tooling (`openmeta diff`) and for deployment
//! checks before a central format change is pushed.

use openmeta_pbio::{BaseType, FieldKind, FormatDescriptor, MachineModel};
use openmeta_schema::ComplexType;

use crate::error::XmitError;
use crate::mapping::map_type;

/// How one field differs between versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldChange {
    /// Present only in the new version; old receivers ignore it.
    Added(String),
    /// Present only in the old version; new receivers see zero/empty.
    Removed(String),
    /// Same name, same value category, different width — converts with
    /// possible truncation.
    Resized {
        /// Field name.
        name: String,
        /// Old element width in bytes.
        old_size: usize,
        /// New element width in bytes.
        new_size: usize,
    },
    /// Same name, incompatible value category — messages cannot convert.
    Retyped {
        /// Field name.
        name: String,
        /// Old kind description.
        old_kind: String,
        /// New kind description.
        new_kind: String,
    },
}

/// The overall verdict for a pair of versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compatibility {
    /// Byte-identical layouts: same format id, nothing to do.
    Identical,
    /// Every shared field keeps its kind and width; exchanges in both
    /// directions are lossless (PBIO's restricted evolution).
    Compatible,
    /// Shared fields convert but some widths shrank — values may
    /// truncate in one direction.
    Lossy,
    /// At least one shared field changed category; decode will fail.
    Breaking,
}

/// A full diff between two versions of a format.
#[derive(Debug, Clone)]
pub struct EvolutionReport {
    /// The verdict.
    pub compatibility: Compatibility,
    /// Per-field changes, in new-version field order (removals last).
    pub changes: Vec<FieldChange>,
}

/// Diff two definitions under `machine` (widths are machine-dependent:
/// `xsd:unsignedLong` resizes between SPARC32 and LP64, for example).
pub fn diff_types(
    old: &ComplexType,
    new: &ComplexType,
    machine: &MachineModel,
) -> Result<EvolutionReport, XmitError> {
    let old_spec = map_type(old, machine)?;
    let new_spec = map_type(new, machine)?;

    let kind_of = |f: &openmeta_pbio::IOField| -> (String, usize) {
        // Compare by PBIO type string base + element size; the base
        // string collapses to the category used by conversion.
        let base = f.type_desc.split('[').next().unwrap_or("").trim().to_string();
        (base, f.size)
    };
    let category = |base: &str| -> u8 {
        match base {
            "float" | "double" => 1,
            "string" => 2,
            "integer" | "int" | "unsigned integer" | "unsigned" | "boolean" | "enumeration"
            | "char" => 0,
            _ => 3, // nested format name
        }
    };
    let arrayness = |f: &openmeta_pbio::IOField| f.type_desc.contains('[');

    let mut changes = Vec::new();
    let mut any_shared_resize = false;
    let mut any_breaking = false;
    for nf in &new_spec.fields {
        match old_spec.fields.iter().find(|of| of.name == nf.name) {
            None => changes.push(FieldChange::Added(nf.name.clone())),
            Some(of) => {
                let (ob, os) = kind_of(of);
                let (nb, ns) = kind_of(nf);
                let compatible_kind = category(&ob) == category(&nb)
                    && arrayness(of) == arrayness(nf)
                    && (category(&ob) != 3 || ob == nb);
                if !compatible_kind {
                    any_breaking = true;
                    changes.push(FieldChange::Retyped {
                        name: nf.name.clone(),
                        old_kind: of.type_desc.clone(),
                        new_kind: nf.type_desc.clone(),
                    });
                } else if os != ns {
                    any_shared_resize = true;
                    changes.push(FieldChange::Resized {
                        name: nf.name.clone(),
                        old_size: os,
                        new_size: ns,
                    });
                }
            }
        }
    }
    for of in &old_spec.fields {
        if !new_spec.fields.iter().any(|nf| nf.name == of.name) {
            changes.push(FieldChange::Removed(of.name.clone()));
        }
    }

    let compatibility = if any_breaking {
        Compatibility::Breaking
    } else if any_shared_resize {
        Compatibility::Lossy
    } else if changes.is_empty() && old_spec == new_spec {
        Compatibility::Identical
    } else {
        Compatibility::Compatible
    };
    Ok(EvolutionReport { compatibility, changes })
}

/// How a resolved field kind prints in change reports.
fn kind_desc(kind: &FieldKind) -> String {
    match kind {
        FieldKind::Scalar(b) => b.name().to_string(),
        FieldKind::String => "string".to_string(),
        FieldKind::StaticArray { elem, count, .. } => format!("{}[{count}]", elem.name()),
        FieldKind::DynamicArray { elem, length_field, .. } => {
            format!("{}[{length_field}]", elem.name())
        }
        FieldKind::Nested(f) => f.name.clone(),
    }
}

/// The conversion category of a base type: integers of every flavour
/// interconvert, floats interconvert, strings only match strings.
fn base_category(b: BaseType) -> u8 {
    match b {
        BaseType::Float => 1,
        _ => 0,
    }
}

/// Diff two *bound* descriptors (the negotiation path: both sides'
/// resolved layouts are on the wire, so no schema document or machine
/// model is needed — each descriptor carries its own).
///
/// The rules mirror [`diff_types`]: fields match by name; a category
/// change (or scalar↔array, or a different nested format name) is
/// `Retyped`/`Breaking`; a width change is `Resized`/`Lossy`; same-named
/// nested records recurse, reporting inner changes with dotted names.
/// Layout-only drift — byte order, offsets, pointer width — produces no
/// field changes but still reports `Compatible` rather than `Identical`
/// whenever the content ids differ.
pub fn diff_descriptors(old: &FormatDescriptor, new: &FormatDescriptor) -> EvolutionReport {
    // (category, arrayness) of a resolved kind; category 3 is a nested
    // record, which additionally requires the format names to match.
    fn category(kind: &FieldKind) -> (u8, bool) {
        match kind {
            FieldKind::Scalar(b) => (base_category(*b), false),
            FieldKind::String => (2, false),
            FieldKind::StaticArray { elem, .. } | FieldKind::DynamicArray { elem, .. } => {
                (base_category(*elem), true)
            }
            FieldKind::Nested(_) => (3, false),
        }
    }
    // Element width of a kind, `None` when width is not part of the
    // value (strings, nested records: their slot sizes are
    // machine-dependent without being lossy).
    fn width(kind: &FieldKind, slot: usize) -> Option<usize> {
        match kind {
            FieldKind::Scalar(_) => Some(slot),
            FieldKind::StaticArray { elem_size, count, .. } => Some(elem_size * count),
            FieldKind::DynamicArray { elem_size, .. } => Some(*elem_size),
            FieldKind::String | FieldKind::Nested(_) => None,
        }
    }

    let mut changes = Vec::new();
    let mut any_resize = false;
    let mut any_breaking = false;
    for nf in &new.fields {
        let Some(of) = old.fields.iter().find(|of| of.name == nf.name) else {
            changes.push(FieldChange::Added(nf.name.clone()));
            continue;
        };
        let (oc, oa) = category(&of.kind);
        let (nc, na) = category(&nf.kind);
        let nested_names_match = match (&of.kind, &nf.kind) {
            (FieldKind::Nested(a), FieldKind::Nested(b)) => a.name == b.name,
            _ => true,
        };
        if oc != nc || oa != na || !nested_names_match {
            any_breaking = true;
            changes.push(FieldChange::Retyped {
                name: nf.name.clone(),
                old_kind: kind_desc(&of.kind),
                new_kind: kind_desc(&nf.kind),
            });
        } else if let (FieldKind::Nested(a), FieldKind::Nested(b)) = (&of.kind, &nf.kind) {
            let inner = diff_descriptors(a, b);
            match inner.compatibility {
                Compatibility::Breaking => any_breaking = true,
                Compatibility::Lossy => any_resize = true,
                _ => {}
            }
            changes.extend(inner.changes.into_iter().map(|c| match c {
                FieldChange::Added(n) => FieldChange::Added(format!("{}.{n}", nf.name)),
                FieldChange::Removed(n) => FieldChange::Removed(format!("{}.{n}", nf.name)),
                FieldChange::Resized { name, old_size, new_size } => {
                    FieldChange::Resized { name: format!("{}.{name}", nf.name), old_size, new_size }
                }
                FieldChange::Retyped { name, old_kind, new_kind } => {
                    FieldChange::Retyped { name: format!("{}.{name}", nf.name), old_kind, new_kind }
                }
            }));
        } else {
            let ow = width(&of.kind, of.size);
            let nw = width(&nf.kind, nf.size);
            if let (Some(ow), Some(nw)) = (ow, nw) {
                if ow != nw {
                    any_resize = true;
                    changes.push(FieldChange::Resized {
                        name: nf.name.clone(),
                        old_size: ow,
                        new_size: nw,
                    });
                }
            }
        }
    }
    for of in &old.fields {
        if !new.fields.iter().any(|nf| nf.name == of.name) {
            changes.push(FieldChange::Removed(of.name.clone()));
        }
    }

    let compatibility = if any_breaking {
        Compatibility::Breaking
    } else if any_resize {
        Compatibility::Lossy
    } else if changes.is_empty() && old.id() == new.id() {
        Compatibility::Identical
    } else {
        Compatibility::Compatible
    };
    EvolutionReport { compatibility, changes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmeta_schema::parse_str;

    const XSD: &str = "http://www.w3.org/2001/XMLSchema";

    fn ct(body: &str) -> ComplexType {
        parse_str(&format!(
            r#"<xsd:complexType name="T" xmlns:xsd="{XSD}">{body}</xsd:complexType>"#
        ))
        .unwrap()
        .types
        .remove(0)
    }

    #[test]
    fn identical_versions() {
        let a = ct(r#"<xsd:element name="x" type="xsd:int" />"#);
        let r = diff_types(&a, &a, &MachineModel::native()).unwrap();
        assert_eq!(r.compatibility, Compatibility::Identical);
        assert!(r.changes.is_empty());
    }

    #[test]
    fn additions_and_removals_are_compatible() {
        let old = ct(r#"<xsd:element name="x" type="xsd:int" />
                        <xsd:element name="gone" type="xsd:string" />"#);
        let new = ct(r#"<xsd:element name="x" type="xsd:int" />
                        <xsd:element name="fresh" type="xsd:double" />"#);
        let r = diff_types(&old, &new, &MachineModel::native()).unwrap();
        assert_eq!(r.compatibility, Compatibility::Compatible);
        assert_eq!(
            r.changes,
            vec![FieldChange::Added("fresh".to_string()), FieldChange::Removed("gone".to_string()),]
        );
    }

    #[test]
    fn width_changes_are_lossy() {
        let old = ct(r#"<xsd:element name="x" type="xsd:long" />"#);
        let new = ct(r#"<xsd:element name="x" type="xsd:int" />"#);
        let r = diff_types(&old, &new, &MachineModel::native()).unwrap();
        assert_eq!(r.compatibility, Compatibility::Lossy);
        assert_eq!(
            r.changes,
            vec![FieldChange::Resized { name: "x".to_string(), old_size: 8, new_size: 4 }]
        );
    }

    #[test]
    fn category_changes_are_breaking() {
        let old = ct(r#"<xsd:element name="x" type="xsd:int" />"#);
        let new = ct(r#"<xsd:element name="x" type="xsd:string" />"#);
        let r = diff_types(&old, &new, &MachineModel::native()).unwrap();
        assert_eq!(r.compatibility, Compatibility::Breaking);
        assert!(matches!(r.changes[0], FieldChange::Retyped { .. }));
    }

    #[test]
    fn scalar_to_array_is_breaking() {
        let old = ct(r#"<xsd:element name="x" type="xsd:float" />"#);
        let new = ct(r#"<xsd:element name="x" type="xsd:float" maxOccurs="4" />"#);
        let r = diff_types(&old, &new, &MachineModel::native()).unwrap();
        assert_eq!(r.compatibility, Compatibility::Breaking);
    }

    #[test]
    fn machine_dependent_widths_show_up() {
        // unsignedLong is 4 bytes on SPARC32 and 8 on x86-64, so the
        // "same" document diffs as identical on one machine model…
        let a = ct(r#"<xsd:element name="x" type="xsd:unsignedLong" />"#);
        let b = ct(r#"<xsd:element name="x" type="xsd:unsignedInt" />"#);
        let sparc = diff_types(&a, &b, &MachineModel::SPARC32).unwrap();
        assert_eq!(sparc.compatibility, Compatibility::Identical);
        // …and as a resize on the other.
        let lp64 = diff_types(&a, &b, &MachineModel::X86_64).unwrap();
        assert_eq!(lp64.compatibility, Compatibility::Lossy);
    }

    /// The verdicts agree with what decode actually does.
    #[test]
    fn verdicts_match_runtime_behaviour() {
        use crate::toolkit::Xmit;
        let old = ct(r#"<xsd:element name="x" type="xsd:int" />"#);
        let new_ok = ct(r#"<xsd:element name="x" type="xsd:int" />
                           <xsd:element name="y" type="xsd:double" />"#);
        let new_bad = ct(r#"<xsd:element name="x" type="xsd:string" />"#);

        let doc = |t: &ComplexType| {
            openmeta_schema::to_xml(&openmeta_schema::SchemaDocument {
                types: vec![t.clone()],
                enums: vec![],
            })
        };
        let sender = Xmit::new(MachineModel::native());
        sender.load_str(&doc(&old)).unwrap();
        let t_old = sender.bind("T").unwrap();
        let mut rec = t_old.new_record();
        rec.set_i64("x", 5).unwrap();
        let wire = crate::encode(&rec).unwrap();

        // Compatible: decodes.
        let rx = Xmit::new(MachineModel::native());
        rx.load_str(&doc(&new_ok)).unwrap();
        let t_new = rx.bind("T").unwrap();
        rx.registry().register_descriptor((*t_old.format).clone());
        assert!(crate::decode_with(&wire, rx.registry(), &t_new.format).is_ok());
        assert_eq!(
            diff_types(&old, &new_ok, &MachineModel::native()).unwrap().compatibility,
            Compatibility::Compatible
        );

        // Breaking: decode errors.
        let rx2 = Xmit::new(MachineModel::native());
        rx2.load_str(&doc(&new_bad)).unwrap();
        let t_bad = rx2.bind("T").unwrap();
        rx2.registry().register_descriptor((*t_old.format).clone());
        assert!(crate::decode_with(&wire, rx2.registry(), &t_bad.format).is_err());
        assert_eq!(
            diff_types(&old, &new_bad, &MachineModel::native()).unwrap().compatibility,
            Compatibility::Breaking
        );
    }

    fn bind(fields: Vec<openmeta_pbio::IOField>, machine: MachineModel) -> FormatDescriptor {
        let reg = openmeta_pbio::FormatRegistry::new(machine);
        (*reg.register(openmeta_pbio::FormatSpec::new("T", fields)).unwrap()).clone()
    }

    #[test]
    fn descriptor_diff_matches_type_diff_verdicts() {
        use openmeta_pbio::IOField;
        let v1 = bind(
            vec![IOField::auto("x", "integer", 4), IOField::auto("y", "float", 8)],
            MachineModel::native(),
        );
        assert_eq!(diff_descriptors(&v1, &v1).compatibility, Compatibility::Identical);

        let grown = bind(
            vec![
                IOField::auto("x", "integer", 4),
                IOField::auto("y", "float", 8),
                IOField::auto("z", "integer", 8),
            ],
            MachineModel::native(),
        );
        let r = diff_descriptors(&v1, &grown);
        assert_eq!(r.compatibility, Compatibility::Compatible);
        assert_eq!(r.changes, vec![FieldChange::Added("z".to_string())]);

        let widened = bind(
            vec![IOField::auto("x", "integer", 8), IOField::auto("y", "float", 8)],
            MachineModel::native(),
        );
        let r = diff_descriptors(&v1, &widened);
        assert_eq!(r.compatibility, Compatibility::Lossy);
        assert_eq!(
            r.changes,
            vec![FieldChange::Resized { name: "x".to_string(), old_size: 4, new_size: 8 }]
        );

        let retyped = bind(
            vec![IOField::auto("x", "string", 8), IOField::auto("y", "float", 8)],
            MachineModel::native(),
        );
        let r = diff_descriptors(&v1, &retyped);
        assert_eq!(r.compatibility, Compatibility::Breaking);
        assert!(matches!(&r.changes[0], FieldChange::Retyped { name, .. } if name == "x"));
    }

    #[test]
    fn descriptor_diff_byte_order_only_is_compatible_not_identical() {
        use openmeta_pbio::IOField;
        let fields = vec![IOField::auto("x", "integer", 4), IOField::auto("y", "float", 8)];
        let le = bind(fields.clone(), MachineModel::X86_64);
        let be = bind(fields, MachineModel::SPARC32);
        assert_ne!(le.id(), be.id());
        let r = diff_descriptors(&le, &be);
        assert_eq!(r.compatibility, Compatibility::Compatible);
        assert!(r.changes.is_empty(), "{:?}", r.changes);
    }

    #[test]
    fn descriptor_diff_recurses_into_same_named_nested_records() {
        use openmeta_pbio::{FormatRegistry, FormatSpec, IOField};
        let nest = |inner_ty: &str, inner_size: usize| {
            let reg = FormatRegistry::new(MachineModel::native());
            reg.register(FormatSpec::new("Inner", vec![IOField::auto("v", inner_ty, inner_size)]))
                .unwrap();
            (*reg
                .register(FormatSpec::new(
                    "T",
                    vec![IOField::auto("head", "integer", 4), IOField::auto("body", "Inner", 0)],
                ))
                .unwrap())
            .clone()
        };
        let old = nest("integer", 4);
        let widened = nest("integer", 8);
        let r = diff_descriptors(&old, &widened);
        assert_eq!(r.compatibility, Compatibility::Lossy);
        assert_eq!(
            r.changes,
            vec![FieldChange::Resized { name: "body.v".to_string(), old_size: 4, new_size: 8 }]
        );

        let broken = nest("string", 8);
        let r = diff_descriptors(&old, &broken);
        assert_eq!(r.compatibility, Compatibility::Breaking);
        assert!(matches!(&r.changes[0], FieldChange::Retyped { name, .. } if name == "body.v"));
    }
}
