//! Differential property: sender-side projection (the ECho derived-
//! channel path) is observably identical to receiver-side projection
//! (the original §1 handheld path).
//!
//! For every `complexType` in every fixture schema, both sender byte
//! orders, and a random projection of the type's primitive elements:
//!
//! * **sender-side**: encode the full record, convert it into the
//!   projected format *at the sender*, re-encode the projected record,
//!   and decode that small wire image at the receiver;
//! * **receiver-side**: ship the full wire image and decode it straight
//!   into the projected format at the receiver.
//!
//! Both paths must yield the same field values on the receiver —
//! including when doubles are narrowed to floats, where the sender-side
//! path quantizes before transmission and the receiver-side path after.
//! Each case checks both receiver byte orders, so every conversion
//! direction (swap on project, swap on decode, both, neither) is
//! exercised.

use std::path::Path;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use openmeta_schema::xsd::XsdPrimitive;
use openmeta_schema::{ComplexType, Occurs, SchemaDocument, TypeRef};
use xmit::{project_type, MachineModel, Projection, Value, Xmit};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/schemas").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every fixture schema, parsed once per case (cheap next to binding).
fn fixtures() -> Vec<(String, SchemaDocument)> {
    ["hydrology.xsd", "region.xsd", "simple_data.xsd"]
        .into_iter()
        .map(|name| {
            let text = fixture(name);
            let doc =
                openmeta_schema::parse_str(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"));
            (text, doc)
        })
        .collect()
}

/// Names used as a dimension by some sibling element — maintained by the
/// array setters, never filled directly.
fn dimension_names(ct: &ComplexType) -> Vec<&str> {
    ct.elements.iter().filter_map(|e| e.dimension_name.as_deref()).collect()
}

/// An f64 that survives an f32 round trip exactly, so narrowed values
/// compare bit-for-bit on both paths.
fn f32_exact(rng: &mut StdRng) -> f64 {
    rng.random_range(-4000i64..4000) as f64 * 0.25
}

fn signed(rng: &mut StdRng) -> i64 {
    rng.random_range(-100i64..100)
}

/// Fill every element of `ct` with random values, recursing into
/// composed types by dotted path.
fn fill(
    rng: &mut StdRng,
    rec: &mut xmit::RawRecord,
    doc: &SchemaDocument,
    ct: &ComplexType,
    prefix: &str,
) {
    let dims = dimension_names(ct);
    for e in &ct.elements {
        let path = format!("{prefix}{}", e.name);
        if dims.contains(&e.name.as_str()) {
            continue;
        }
        let prim = match &e.type_ref {
            TypeRef::Named(name) => {
                let sub = doc
                    .types
                    .iter()
                    .find(|t| &t.name == name)
                    .unwrap_or_else(|| panic!("composed type {name} missing from fixture"));
                fill(rng, rec, doc, sub, &format!("{path}."));
                continue;
            }
            TypeRef::Primitive(p) => *p,
        };
        match e.occurs {
            Occurs::One => match prim {
                XsdPrimitive::String => {
                    // Leave some strings unset: a null slot must read as
                    // "" through both paths.
                    if rng.random_bool(0.85) {
                        let n = rng.random_range(0usize..10);
                        let s: String =
                            (0..n).map(|_| (b'a' + rng.random_range(0u8..26)) as char).collect();
                        rec.set_string(&path, s).unwrap();
                    }
                }
                XsdPrimitive::Boolean => rec.set_bool(&path, rng.random_bool(0.5)).unwrap(),
                XsdPrimitive::Float => rec.set_f64(&path, f32_exact(rng)).unwrap(),
                XsdPrimitive::Double => {
                    rec.set_f64(&path, rng.random_range(-1.0e6..1.0e6)).unwrap()
                }
                XsdPrimitive::NonNegativeInteger
                | XsdPrimitive::UnsignedLong
                | XsdPrimitive::UnsignedInt
                | XsdPrimitive::UnsignedShort
                | XsdPrimitive::UnsignedByte => {
                    rec.set_u64(&path, rng.random_range(0u64..200)).unwrap()
                }
                _ => rec.set_i64(&path, signed(rng)).unwrap(),
            },
            Occurs::Bounded(n) => {
                for i in 0..n {
                    match prim {
                        XsdPrimitive::Float => rec.set_elem_f64(&path, i, f32_exact(rng)).unwrap(),
                        XsdPrimitive::Double => {
                            rec.set_elem_f64(&path, i, rng.random_range(-1.0e6..1.0e6)).unwrap()
                        }
                        _ => rec.set_elem_i64(&path, i, signed(rng)).unwrap(),
                    }
                }
            }
            Occurs::Unbounded => {
                let n = rng.random_range(0usize..8);
                match prim {
                    XsdPrimitive::Float => {
                        let vals: Vec<f64> = (0..n).map(|_| f32_exact(rng)).collect();
                        rec.set_f64_array(&path, &vals).unwrap();
                    }
                    XsdPrimitive::Double => {
                        let vals: Vec<f64> =
                            (0..n).map(|_| rng.random_range(-1.0e6..1.0e6)).collect();
                        rec.set_f64_array(&path, &vals).unwrap();
                    }
                    _ => {
                        let vals: Vec<i64> = (0..n).map(|_| signed(rng)).collect();
                        rec.set_i64_array(&path, &vals).unwrap();
                    }
                }
            }
        }
    }
}

/// A random nonempty subset of the type's projectable (primitive,
/// non-dimension) elements, or `None` when the type has none.
fn random_projection(rng: &mut StdRng, ct: &ComplexType) -> Option<Projection> {
    let dims = dimension_names(ct);
    let candidates: Vec<&str> = ct
        .elements
        .iter()
        .filter(|e| matches!(e.type_ref, TypeRef::Primitive(_)) && !dims.contains(&e.name.as_str()))
        .map(|e| e.name.as_str())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let mut keep: Vec<&str> = candidates.iter().copied().filter(|_| rng.random_bool(0.5)).collect();
    if keep.is_empty() {
        keep.push(candidates[rng.random_range(0..candidates.len())]);
    }
    let mut p = Projection::keeping(keep);
    if rng.random_bool(0.5) {
        p = p.with_narrowing();
    }
    Some(p)
}

fn schema_of(ct: &ComplexType) -> String {
    openmeta_schema::to_xml(&SchemaDocument { types: vec![ct.clone()], enums: vec![] })
}

fn opposite(machine: MachineModel) -> MachineModel {
    if machine == MachineModel::SPARC32 {
        MachineModel::X86_64
    } else {
        MachineModel::SPARC32
    }
}

fn run_case(seed: u64, sender_machine: MachineModel) {
    let mut rng = StdRng::seed_from_u64(seed);
    for (text, doc) in fixtures() {
        let sender = Xmit::new(sender_machine);
        sender.load_str(&text).unwrap();
        for ct in &doc.types {
            let Some(projection) = random_projection(&mut rng, ct) else { continue };
            let projected_ct = project_type(ct, &projection)
                .unwrap_or_else(|e| panic!("seed {seed}: project {}: {e}", ct.name));

            let full = sender.bind(&ct.name).unwrap();
            let mut rec = full.new_record();
            fill(&mut rng, &mut rec, &doc, ct, "");
            let full_wire = xmit::encode(&rec).unwrap();

            // Sender-side derivation, exactly as an ECho derived channel
            // does it: convert into the projected format on the sender's
            // machine, then re-encode the small record.
            let group = Xmit::new(sender_machine);
            group.load_str(&schema_of(&projected_ct)).unwrap();
            let proj_binding = group.bind(&projected_ct.name).unwrap();
            group.registry().register_descriptor((*full.format).clone());
            let proj_rec =
                xmit::decode_with(&full_wire, group.registry(), &proj_binding.format).unwrap();
            let proj_wire = xmit::encode(&proj_rec).unwrap();
            assert!(
                proj_wire.len() <= full_wire.len(),
                "seed {seed}: projected wire for {} grew ({} > {})",
                ct.name,
                proj_wire.len(),
                full_wire.len()
            );

            for receiver_machine in [sender_machine, opposite(sender_machine)] {
                let receiver = Xmit::new(receiver_machine);
                receiver.load_str(&schema_of(&projected_ct)).unwrap();
                let target = receiver.bind(&projected_ct.name).unwrap();
                receiver.registry().register_descriptor((*proj_binding.format).clone());
                receiver.registry().register_descriptor((*full.format).clone());

                let via_sender =
                    xmit::decode_with(&proj_wire, receiver.registry(), &target.format).unwrap();
                let via_receiver =
                    xmit::decode_with(&full_wire, receiver.registry(), &target.format).unwrap();
                assert_eq!(
                    Value::from_record(&via_sender).unwrap(),
                    Value::from_record(&via_receiver).unwrap(),
                    "seed {seed}: {} projected {:?} sender={sender_machine:?} \
                     receiver={receiver_machine:?}",
                    ct.name,
                    projection.keep,
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sender_side_projection_matches_receiver_side_big_endian(seed in any::<u64>()) {
        run_case(seed, MachineModel::SPARC32);
    }

    #[test]
    fn sender_side_projection_matches_receiver_side_little_endian(seed in any::<u64>()) {
        run_case(seed, MachineModel::X86_64);
    }
}
