//! The complete Figure 2 metadata loop through the toolkit API alone:
//! schema over HTTP, descriptors by id through the format server, records
//! over the wire — with no manual descriptor plumbing anywhere.

use openmeta_pbio::server::FormatServer;
use xmit::{HttpServer, MachineModel, Xmit, XmitError};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:complexType name="Reading" xmlns:xsd="{XSD}">
             <xsd:element name="station" type="xsd:string" />
             <xsd:element name="level" type="xsd:double" />
           </xsd:complexType>"#
    )
}

#[test]
fn decode_resolving_fetches_unknown_formats() {
    let http = HttpServer::start().unwrap();
    http.put_xml("/r.xsd", metadata());
    let format_server = FormatServer::start().unwrap();

    // Sender on the paper's SPARC32: discover, bind, publish, send.
    let sender = Xmit::new(MachineModel::SPARC32);
    sender.load_url(&http.url_for("/r.xsd")).unwrap();
    sender.attach_format_server(format_server.addr());
    let token = sender.bind("Reading").unwrap();
    let id = sender.publish_format(&token).unwrap();
    assert_eq!(id, token.id());
    let mut rec = token.new_record();
    rec.set_string("station", "gauge-1").unwrap();
    rec.set_f64("level", 2.5).unwrap();
    let wire = xmit::encode(&rec).unwrap();

    // Receiver: has the schema (own binding) but has never seen the
    // sender's machine-specific descriptor.  decode_resolving pulls it
    // from the format server by id.
    let receiver = Xmit::new(MachineModel::native());
    receiver.load_url(&http.url_for("/r.xsd")).unwrap();
    receiver.bind("Reading").unwrap();
    receiver.attach_format_server(format_server.addr());
    let got = receiver.decode_resolving(&wire).unwrap();
    assert_eq!(got.format().machine, MachineModel::native());
    assert_eq!(got.get_string("station").unwrap(), "gauge-1");
    assert_eq!(got.get_f64("level").unwrap(), 2.5);

    // Second decode is a pure registry hit (no server round trip): the
    // server can even disappear.
    drop(format_server);
    let got2 = receiver.decode_resolving(&wire).unwrap();
    assert_eq!(got2.get_f64("level").unwrap(), 2.5);
}

#[test]
fn decode_resolving_without_server_is_a_clean_error() {
    let sender = Xmit::new(MachineModel::native());
    sender.load_str(&metadata()).unwrap();
    let token = sender.bind("Reading").unwrap();
    let wire = xmit::encode(&token.new_record()).unwrap();

    let receiver = Xmit::new(MachineModel::native());
    let err = receiver.decode_resolving(&wire).unwrap_err();
    assert!(matches!(err, XmitError::Bcm(_)), "{err}");
}

#[test]
fn publish_without_server_is_a_clean_error() {
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&metadata()).unwrap();
    let token = toolkit.bind("Reading").unwrap();
    assert!(matches!(toolkit.publish_format(&token), Err(XmitError::Binding(_))));
}

#[test]
fn unknown_id_at_the_server_is_a_clean_error() {
    let format_server = FormatServer::start().unwrap();
    let sender = Xmit::new(MachineModel::native());
    sender.load_str(&metadata()).unwrap();
    let token = sender.bind("Reading").unwrap();
    let wire = xmit::encode(&token.new_record()).unwrap();

    // Receiver attached to a server nobody published to.
    let receiver = Xmit::new(MachineModel::native());
    receiver.attach_format_server(format_server.addr());
    assert!(receiver.decode_resolving(&wire).is_err());
}
