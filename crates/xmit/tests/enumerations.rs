//! Enumeration types end to end — §3.1 lists them among the XML Schema
//! primitives XMIT maps onto native metadata.  An `<xsd:simpleType>`
//! restriction with `<xsd:enumeration>` facets becomes a PBIO
//! `enumeration` scalar: symbols on the API, a 4-byte index on the wire.

use xmit::{MachineModel, Xmit};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:schema xmlns:xsd="{XSD}">
             <xsd:simpleType name="BoundaryKind">
               <xsd:restriction base="xsd:string">
                 <xsd:enumeration value="open" />
                 <xsd:enumeration value="wall" />
                 <xsd:enumeration value="inflow" />
                 <xsd:enumeration value="outflow" />
               </xsd:restriction>
             </xsd:simpleType>
             <xsd:complexType name="BoundaryUpdate">
               <xsd:element name="cell" type="xsd:integer" />
               <xsd:element name="kind" type="BoundaryKind" />
             </xsd:complexType>
           </xsd:schema>"#
    )
}

#[test]
fn enum_fields_bind_as_scalars() {
    let toolkit = Xmit::new(MachineModel::SPARC32);
    toolkit.load_str(&metadata()).unwrap();
    let token = toolkit.bind("BoundaryUpdate").unwrap();
    // int + 4-byte enumeration = 8 bytes, no nested record.
    assert_eq!(token.format.record_size, 8);
    let kind = token.format.field("kind").unwrap();
    assert_eq!(kind.kind.describe(), "enumeration");
}

#[test]
fn symbols_round_trip_over_the_wire() {
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&metadata()).unwrap();
    let token = toolkit.bind("BoundaryUpdate").unwrap();

    let mut rec = token.new_record();
    rec.set_i64("cell", 17).unwrap();
    rec.set_u64("kind", toolkit.enum_index("BoundaryKind", "inflow").unwrap()).unwrap();
    let wire = xmit::encode(&rec).unwrap();

    let back = xmit::decode(&wire, toolkit.registry()).unwrap();
    let symbol = toolkit.enum_symbol("BoundaryKind", back.get_u64("kind").unwrap()).unwrap();
    assert_eq!(symbol, "inflow");
}

#[test]
fn unknown_symbols_and_indices_are_errors() {
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&metadata()).unwrap();
    assert!(toolkit.enum_index("BoundaryKind", "diagonal").is_err());
    assert!(toolkit.enum_symbol("BoundaryKind", 99).is_err());
    assert!(toolkit.enum_index("NoSuchEnum", "open").is_err());
    assert_eq!(toolkit.enumeration("BoundaryKind").unwrap().values.len(), 4);
}

#[test]
fn enums_survive_cross_machine_conversion() {
    let sender = Xmit::new(MachineModel::SPARC32);
    sender.load_str(&metadata()).unwrap();
    let s_token = sender.bind("BoundaryUpdate").unwrap();

    let receiver = Xmit::new(MachineModel::X86_64);
    receiver.load_str(&metadata()).unwrap();
    receiver.bind("BoundaryUpdate").unwrap();
    receiver.registry().register_descriptor((*s_token.format).clone());

    let mut rec = s_token.new_record();
    rec.set_u64("kind", sender.enum_index("BoundaryKind", "wall").unwrap()).unwrap();
    let wire = xmit::encode(&rec).unwrap();
    let back = xmit::decode(&wire, receiver.registry()).unwrap();
    assert_eq!(
        receiver.enum_symbol("BoundaryKind", back.get_u64("kind").unwrap()).unwrap(),
        "wall"
    );
}

#[test]
fn enum_definitions_are_validated() {
    // No values, duplicate values, missing name: all diagnosed.
    for bad in [
        format!(
            r#"<xsd:simpleType name="E" xmlns:xsd="{XSD}">
                 <xsd:restriction base="xsd:string" /></xsd:simpleType>"#
        ),
        format!(
            r#"<xsd:simpleType name="E" xmlns:xsd="{XSD}">
                 <xsd:restriction base="xsd:string">
                   <xsd:enumeration value="a" /><xsd:enumeration value="a" />
                 </xsd:restriction></xsd:simpleType>"#
        ),
        format!(
            r#"<xsd:simpleType xmlns:xsd="{XSD}">
                 <xsd:restriction base="xsd:string">
                   <xsd:enumeration value="a" />
                 </xsd:restriction></xsd:simpleType>"#
        ),
    ] {
        let toolkit = Xmit::new(MachineModel::native());
        assert!(toolkit.load_str(&bad).is_err(), "{bad}");
    }
}
