//! FormatId derivation audit: the content id is the negotiation
//! subsystem's whole identity story, so two *different* versions of a
//! same-named format must never collide, and identical definitions must
//! always agree — across every fixture schema and every systematic
//! version mutation the evolution layer recognizes.

use std::path::Path;

use openmeta_schema::{ComplexType, ElementDecl, Occurs, SchemaDocument, TypeRef, XsdPrimitive};
use xmit::{MachineModel, Xmit};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/schemas").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn fixtures() -> Vec<(&'static str, SchemaDocument)> {
    ["hydrology.xsd", "region.xsd", "simple_data.xsd"]
        .into_iter()
        .map(|name| {
            let doc = openmeta_schema::parse_str(&fixture(name))
                .unwrap_or_else(|e| panic!("parse {name}: {e}"));
            (name, doc)
        })
        .collect()
}

fn schema_of(doc: &SchemaDocument, ct: ComplexType) -> String {
    // Carry the whole document so composed type references still
    // resolve, with `ct` replacing its same-named original.
    let mut types: Vec<ComplexType> =
        doc.types.iter().filter(|t| t.name != ct.name).cloned().collect();
    types.push(ct);
    openmeta_schema::to_xml(&SchemaDocument { types, enums: doc.enums.clone() })
}

fn id_of(doc: &SchemaDocument, ct: ComplexType, machine: MachineModel) -> openmeta_pbio::FormatId {
    let name = ct.name.clone();
    let xm = Xmit::new(machine);
    xm.load_str(&schema_of(doc, ct)).unwrap_or_else(|e| panic!("load variant of {name}: {e}"));
    xm.bind(&name).unwrap_or_else(|e| panic!("bind variant of {name}: {e}")).format.id()
}

/// Names used as a dimension by some sibling element.
fn dimension_names(ct: &ComplexType) -> Vec<String> {
    ct.elements.iter().filter_map(|e| e.dimension_name.clone()).collect()
}

/// Indices of plain scalar primitive elements that are safe to mutate
/// (not a dimension counter, not an array, not composed).
fn mutable_scalars(ct: &ComplexType) -> Vec<usize> {
    let dims = dimension_names(ct);
    ct.elements
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(e.type_ref, TypeRef::Primitive(_))
                && e.occurs == Occurs::One
                && !dims.contains(&e.name)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Every version mutation of `ct` the evolution layer distinguishes:
/// (label, mutated type).  All must hash differently from the original
/// and from each other.
fn variants(ct: &ComplexType) -> Vec<(String, ComplexType)> {
    let mut out = Vec::new();

    let mut grown = ct.clone();
    grown.elements.push(ElementDecl::scalar("probe_added", TypeRef::Primitive(XsdPrimitive::Int)));
    out.push(("grown".to_string(), grown));

    let scalars = mutable_scalars(ct);
    if let Some(&i) = scalars.first() {
        let mut shrunk = ct.clone();
        shrunk.elements.remove(i);
        out.push((format!("shrunk(-{})", ct.elements[i].name), shrunk));

        let mut renamed = ct.clone();
        renamed.elements[i].name.push_str("_v2");
        out.push((format!("renamed({})", ct.elements[i].name), renamed));

        let mut retyped = ct.clone();
        retyped.elements[i].type_ref = match retyped.elements[i].type_ref {
            TypeRef::Primitive(XsdPrimitive::String) => TypeRef::Primitive(XsdPrimitive::Long),
            _ => TypeRef::Primitive(XsdPrimitive::String),
        };
        out.push((format!("retyped({})", ct.elements[i].name), retyped));
    }
    if scalars.len() >= 2 {
        let (a, b) = (scalars[0], scalars[1]);
        let mut reordered = ct.clone();
        reordered.elements.swap(a, b);
        out.push((
            format!("reordered({},{})", ct.elements[a].name, ct.elements[b].name),
            reordered,
        ));
    }
    out
}

#[test]
fn identical_definitions_hash_identically() {
    for (file, doc) in fixtures() {
        for ct in &doc.types {
            for machine in [MachineModel::SPARC32, MachineModel::X86_64] {
                let a = id_of(&doc, ct.clone(), machine);
                let b = id_of(&doc, ct.clone(), machine);
                assert_eq!(a, b, "{file}/{}: same definition, same machine, different id", ct.name);
            }
        }
    }
}

#[test]
fn every_version_variant_hashes_distinct() {
    for (file, doc) in fixtures() {
        for ct in &doc.types {
            for machine in [MachineModel::SPARC32, MachineModel::X86_64] {
                let base = id_of(&doc, ct.clone(), machine);
                let mut seen = vec![("original".to_string(), base)];
                for (label, variant) in variants(ct) {
                    let id = id_of(&doc, variant, machine);
                    for (other_label, other_id) in &seen {
                        assert_ne!(
                            id, *other_id,
                            "{file}/{}: variant '{label}' collides with '{other_label}' \
                             on {machine:?}",
                            ct.name
                        );
                    }
                    seen.push((label, id));
                }
            }
        }
    }
}

#[test]
fn byte_order_is_part_of_the_identity() {
    // A SPARC32 layout and an X86_64 layout of the same definition are
    // different wire formats (the receiver must byte-swap one of them),
    // so their content ids must differ too — negotiation treats the
    // pair as compatible-but-not-identical.
    for (file, doc) in fixtures() {
        for ct in &doc.types {
            let big = id_of(&doc, ct.clone(), MachineModel::SPARC32);
            let little = id_of(&doc, ct.clone(), MachineModel::X86_64);
            assert_ne!(big, little, "{file}/{}: byte order must alter the id", ct.name);
        }
    }
}
