//! Integration tests for the discovery fast path: ETag revalidation,
//! content-hash dedupe, TTL freshness, and the watcher riding on top.

use std::sync::Arc;
use std::time::Duration;

use openmeta_pbio::MachineModel;
use xmit::{FormatWatcher, HttpServer, LoadOutcome, Xmit};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn schema(name: &str, fields: &str) -> String {
    format!(
        r#"<xsd:complexType name="{name}" xmlns:xsd="{XSD}">
             <xsd:element name="a" type="xsd:int" />{fields}
           </xsd:complexType>"#
    )
}

#[test]
fn etag_revalidation_skips_body_and_parse() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/evt.xsd", schema("Evt", ""));
    let xmit = Xmit::new(MachineModel::native());
    let url = server.url_for("/evt.xsd");

    let first = xmit.load_url_cached(&url).unwrap();
    assert_eq!(first, LoadOutcome::Loaded(vec!["Evt".to_string()]));

    let second = xmit.load_url_cached(&url).unwrap();
    assert_eq!(second, LoadOutcome::Revalidated(vec!["Evt".to_string()]));
    assert!(second.was_cache_hit());

    let stats = xmit.schema_cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.revalidated, 1);
    assert_eq!(server.not_modified_count(), 1, "server answered the revisit with a 304");
    // Both requests rode one pooled connection.
    assert_eq!(xmit.source().pool_stats().connects, 1);
}

#[test]
fn identical_content_from_another_url_skips_parse() {
    let server = HttpServer::start().unwrap();
    let text = schema("Evt", "");
    server.put_xml("/a.xsd", text.clone());
    server.put_xml("/b.xsd", text);
    let xmit = Xmit::new(MachineModel::native());

    assert!(matches!(
        xmit.load_url_cached(&server.url_for("/a.xsd")).unwrap(),
        LoadOutcome::Loaded(_)
    ));
    // Different URL, different ETag namespace is irrelevant — the bytes
    // hash the same, so the cached parse is reused.
    let out = xmit.load_url_cached(&server.url_for("/b.xsd")).unwrap();
    assert_eq!(out, LoadOutcome::Unchanged(vec!["Evt".to_string()]));
    assert_eq!(xmit.schema_cache_stats().content_hits, 1);
    assert_eq!(xmit.schema_cache_stats().misses, 1);
}

#[test]
fn ttl_fresh_loads_touch_no_network() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/evt.xsd", schema("Evt", ""));
    let xmit = Xmit::new(MachineModel::native());
    xmit.set_cache_ttl(Some(Duration::from_secs(3600)));
    let url = server.url_for("/evt.xsd");

    xmit.load_url(&url).unwrap();
    let hits_after_load = server.hit_count();
    for _ in 0..5 {
        let out = xmit.load_url_cached(&url).unwrap();
        assert!(matches!(out, LoadOutcome::Fresh(_)));
    }
    assert_eq!(server.hit_count(), hits_after_load, "fresh hits never hit the wire");
    assert_eq!(xmit.schema_cache_stats().fresh_hits, 5);

    // revalidate() bypasses the TTL and goes back to the server.
    let out = xmit.revalidate(&url).unwrap();
    assert!(matches!(out, LoadOutcome::Revalidated(_)));
    assert_eq!(server.hit_count(), hits_after_load + 1);
}

#[test]
fn cache_hits_reapply_definitions() {
    // A cached load must restore this URL's definition even if another
    // document overwrote the same type name in between.
    let server = HttpServer::start().unwrap();
    server.put_xml("/v1.xsd", schema("Evt", ""));
    let xmit = Xmit::new(MachineModel::native());
    let url = server.url_for("/v1.xsd");
    xmit.load_url(&url).unwrap();
    assert_eq!(xmit.definition("Evt").unwrap().elements.len(), 1);

    // Someone else installs a two-field Evt…
    xmit.load_str(&schema("Evt", r#"<xsd:element name="b" type="xsd:double" />"#)).unwrap();
    assert_eq!(xmit.definition("Evt").unwrap().elements.len(), 2);

    // …and a revalidated (304) reload of the URL restores its version.
    let out = xmit.revalidate(&url).unwrap();
    assert!(matches!(out, LoadOutcome::Revalidated(_)));
    assert_eq!(xmit.definition("Evt").unwrap().elements.len(), 1);
}

#[test]
fn changed_schema_is_still_a_miss() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/evt.xsd", schema("Evt", ""));
    let xmit = Xmit::new(MachineModel::native());
    let url = server.url_for("/evt.xsd");
    xmit.load_url(&url).unwrap();
    let t1 = xmit.bind("Evt").unwrap();

    server.put_xml("/evt.xsd", schema("Evt", r#"<xsd:element name="b" type="xsd:double" />"#));
    let out = xmit.load_url_cached(&url).unwrap();
    assert!(matches!(out, LoadOutcome::Loaded(_)), "changed content must re-parse");
    let t2 = xmit.bind("Evt").unwrap();
    assert_ne!(t1.id(), t2.id());
    assert_eq!(t2.format.fields.len(), 2);
    assert_eq!(xmit.schema_cache_stats().misses, 2);
}

#[test]
fn watcher_revalidates_but_still_sees_changes() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/evt.xsd", schema("Evt", ""));
    let toolkit = Arc::new(Xmit::new(MachineModel::native()));
    let watcher =
        FormatWatcher::start(toolkit.clone(), server.url_for("/evt.xsd"), Duration::from_millis(5))
            .unwrap();
    let v1 = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();

    // Let it poll a few times against unchanged content.
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(watcher.versions_seen(), 1);
    let polled = toolkit.schema_cache_stats();
    assert!(polled.revalidated >= 2, "polls were conditional GETs: {polled:?}");
    assert!(server.not_modified_count() >= 2);

    // A genuine change still propagates.
    server.put_xml("/evt.xsd", schema("Evt", r#"<xsd:element name="b" type="xsd:double" />"#));
    let v2 = watcher.changes().recv_timeout(Duration::from_secs(5)).unwrap();
    assert_ne!(v1.tokens[0].id(), v2.tokens[0].id());
    assert_eq!(v2.tokens[0].format.fields.len(), 2);
}
