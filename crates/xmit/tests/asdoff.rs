//! Figure 2 of the paper, end to end: the `asdOff` structure exists as a
//! C struct definition, a PBIO `IOField` table, and XMIT XML metadata —
//! and all three views agree.

use xmit::{decode, encode, FormatSpec, IOField, MachineModel, Xmit};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

/// The bottom third of Figure 2: the XMIT metadata document.
fn asdoff_xml() -> String {
    format!(
        r#"<xsd:complexType name="ASDOffEvent" xmlns:xsd="{XSD}">
             <xsd:element name="centerID" type="xsd:string" />
             <xsd:element name="airline" type="xsd:string" />
             <xsd:element name="flightNum" type="xsd:integer" />
             <xsd:element name="off" type="xsd:unsignedLong" />
           </xsd:complexType>"#
    )
}

/// The middle third of Figure 2: the hand-written PBIO metadata, with
/// explicit offsets as `IOOffset` would compute them on SPARC32.
fn asdoff_compiled_fields() -> Vec<IOField> {
    vec![
        IOField::at("centerID", "string", 0, 0),
        IOField::at("airline", "string", 0, 4),
        IOField::at("flightNum", "integer", 4, 8),
        IOField::at("off", "unsigned integer", 4, 12),
    ]
}

#[test]
fn xmit_metadata_reproduces_compiled_metadata() {
    // Path A: compiled-in PBIO metadata (the paper's "before").
    let compiled = xmit::FormatRegistry::new(MachineModel::SPARC32);
    let native =
        compiled.register(FormatSpec::new("ASDOffEvent", asdoff_compiled_fields())).unwrap();

    // Path B: XMIT remote metadata (the paper's "after").
    let toolkit = Xmit::new(MachineModel::SPARC32);
    toolkit.load_str(&asdoff_xml()).unwrap();
    let token = toolkit.bind("ASDOffEvent").unwrap();

    // Same layout, same identity: messages interchange freely.
    assert_eq!(token.format.record_size, native.record_size);
    assert_eq!(token.format.fields, native.fields);
    assert_eq!(token.id(), native.id());
}

#[test]
fn records_round_trip_between_both_paths() {
    let compiled = xmit::FormatRegistry::new(MachineModel::native());
    // Compiled metadata uses auto offsets on the native machine.
    compiled
        .register(FormatSpec::new(
            "ASDOffEvent",
            vec![
                IOField::auto("centerID", "string", 0),
                IOField::auto("airline", "string", 0),
                IOField::auto("flightNum", "integer", 4),
                IOField::auto("off", "unsigned integer", MachineModel::native().long_size),
            ],
        ))
        .unwrap();

    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&asdoff_xml()).unwrap();
    let token = toolkit.bind("ASDOffEvent").unwrap();

    let mut rec = token.new_record();
    rec.set_string("centerID", "ZTL").unwrap();
    rec.set_string("airline", "DAL").unwrap();
    rec.set_i64("flightNum", 1573).unwrap();
    rec.set_u64("off", 991234567).unwrap();
    let wire = encode(&rec).unwrap();

    // A component holding only compiled metadata decodes XMIT's message.
    let back = decode(&wire, &compiled).unwrap();
    assert_eq!(back.get_string("centerID").unwrap(), "ZTL");
    assert_eq!(back.get_string("airline").unwrap(), "DAL");
    assert_eq!(back.get_i64("flightNum").unwrap(), 1573);
    assert_eq!(back.get_u64("off").unwrap(), 991234567);
}

#[test]
fn generated_c_header_matches_figure_2() {
    let toolkit = Xmit::new(MachineModel::SPARC32);
    toolkit.load_str(&asdoff_xml()).unwrap();
    let ct = toolkit.definition("ASDOffEvent").unwrap();
    let header = xmit::codegen::c::generate_header(&ct).unwrap();
    for needle in [
        "typedef struct ASDOffEvent_s {",
        "char* centerID;",
        "char* airline;",
        "int flightNum;",
        "unsigned long off;",
        "IOField ASDOffEventFields[] = {",
    ] {
        assert!(header.contains(needle), "missing '{needle}' in:\n{header}");
    }
}

#[test]
fn generated_java_class_compiles_the_same_fields() {
    let toolkit = Xmit::new(MachineModel::SPARC32);
    toolkit.load_str(&asdoff_xml()).unwrap();
    let ct = toolkit.definition("ASDOffEvent").unwrap();
    let java = xmit::codegen::java::generate_class(&ct, None).unwrap();
    for needle in [
        "public class ASDOffEvent implements java.io.Serializable",
        "public String centerID;",
        "public int flightNum;",
        "public long off;",
    ] {
        assert!(java.contains(needle), "missing '{needle}' in:\n{java}");
    }
}
