//! Differential property for the version-negotiation subsystem: the
//! negotiated cross-version path (pair classified, convert plan
//! compiled and certified by [`xmit::NegotiationCache`]) delivers
//! exactly what a plain receiver-side make-right decode delivers, for
//! every fixture schema, every version mutation the evolution layer
//! recognizes, and both sender byte orders.
//!
//! Two other equivalences ride along:
//! * `diff_descriptors` over the bound layouts agrees with
//!   `diff_types` over the schema definitions on the compatibility
//!   verdict — the handshake (which only sees descriptors) and the
//!   schema tooling (which sees XML) must never disagree about whether
//!   a pair is safe;
//! * breaking mutations are rejected by `negotiate_pair` with a
//!   `Negotiation` error, never silently planned.

use std::path::Path;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use openmeta_schema::{ComplexType, ElementDecl, Occurs, SchemaDocument, TypeRef, XsdPrimitive};
use xmit::{
    diff_descriptors, diff_types, Compatibility, MachineModel, NegotiationCache, PairVerdict,
    Value, Xmit, XmitError,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/schemas").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn fixtures() -> Vec<SchemaDocument> {
    ["hydrology.xsd", "region.xsd", "simple_data.xsd"]
        .into_iter()
        .map(|name| {
            openmeta_schema::parse_str(&fixture(name))
                .unwrap_or_else(|e| panic!("parse {name}: {e}"))
        })
        .collect()
}

fn schema_of(doc: &SchemaDocument, ct: ComplexType) -> String {
    let mut types: Vec<ComplexType> =
        doc.types.iter().filter(|t| t.name != ct.name).cloned().collect();
    types.push(ct);
    openmeta_schema::to_xml(&SchemaDocument { types, enums: doc.enums.clone() })
}

fn dimension_names(ct: &ComplexType) -> Vec<String> {
    ct.elements.iter().filter_map(|e| e.dimension_name.clone()).collect()
}

fn mutable_scalars(ct: &ComplexType) -> Vec<usize> {
    let dims = dimension_names(ct);
    ct.elements
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(e.type_ref, TypeRef::Primitive(_))
                && e.occurs == Occurs::One
                && !dims.contains(&e.name)
        })
        .map(|(i, _)| i)
        .collect()
}

/// What the mutation should do to the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    Converts(Compatibility),
    Rejected,
}

/// Pick a random receiver-side version mutation of `ct`, with the
/// verdict the negotiation layer must reach for it.
fn mutate(rng: &mut StdRng, ct: &ComplexType) -> Option<(ComplexType, Expected)> {
    let scalars = mutable_scalars(ct);
    let mut choices: Vec<u8> = vec![0]; // grow always possible
    if !scalars.is_empty() {
        choices.extend([1, 3]); // shrink, retype
        let widenable = scalars.iter().any(|&i| {
            matches!(
                ct.elements[i].type_ref,
                TypeRef::Primitive(XsdPrimitive::Float | XsdPrimitive::Int | XsdPrimitive::Integer)
            )
        });
        if widenable {
            choices.push(4);
        }
    }
    if scalars.len() >= 2 {
        choices.push(2); // reorder
    }
    let mut v = ct.clone();
    match choices[rng.random_range(0..choices.len())] {
        0 => {
            v.elements
                .push(ElementDecl::scalar("probe_added", TypeRef::Primitive(XsdPrimitive::Int)));
            Some((v, Expected::Converts(Compatibility::Compatible)))
        }
        1 => {
            v.elements.remove(scalars[rng.random_range(0..scalars.len())]);
            Some((v, Expected::Converts(Compatibility::Compatible)))
        }
        2 => {
            v.elements.swap(scalars[0], scalars[1]);
            Some((v, Expected::Converts(Compatibility::Compatible)))
        }
        3 => {
            let i = scalars[rng.random_range(0..scalars.len())];
            v.elements[i].type_ref = match v.elements[i].type_ref {
                TypeRef::Primitive(XsdPrimitive::String) => TypeRef::Primitive(XsdPrimitive::Long),
                _ => TypeRef::Primitive(XsdPrimitive::String),
            };
            Some((v, Expected::Rejected))
        }
        _ => {
            let i = *scalars.iter().find(|&&i| {
                matches!(
                    ct.elements[i].type_ref,
                    TypeRef::Primitive(
                        XsdPrimitive::Float | XsdPrimitive::Int | XsdPrimitive::Integer
                    )
                )
            })?;
            v.elements[i].type_ref = match v.elements[i].type_ref {
                TypeRef::Primitive(XsdPrimitive::Float) => TypeRef::Primitive(XsdPrimitive::Double),
                _ => TypeRef::Primitive(XsdPrimitive::Long),
            };
            Some((v, Expected::Converts(Compatibility::Lossy)))
        }
    }
}

/// Fill the scalar fields of `ct` deterministically (arrays and strings
/// too), small values so every width survives narrowing-free.
fn fill(rng: &mut StdRng, rec: &mut xmit::RawRecord, doc: &SchemaDocument, ct: &ComplexType) {
    fill_at(rng, rec, doc, ct, "");
}

fn fill_at(
    rng: &mut StdRng,
    rec: &mut xmit::RawRecord,
    doc: &SchemaDocument,
    ct: &ComplexType,
    prefix: &str,
) {
    let dims = dimension_names(ct);
    for e in &ct.elements {
        if dims.contains(&e.name) {
            continue;
        }
        let path = format!("{prefix}{}", e.name);
        let prim = match &e.type_ref {
            TypeRef::Named(name) => {
                let sub = doc.types.iter().find(|t| &t.name == name).unwrap();
                fill_at(rng, rec, doc, sub, &format!("{path}."));
                continue;
            }
            TypeRef::Primitive(p) => *p,
        };
        match e.occurs {
            Occurs::One => match prim {
                XsdPrimitive::String => rec.set_string(&path, "v").unwrap(),
                XsdPrimitive::Boolean => rec.set_bool(&path, true).unwrap(),
                XsdPrimitive::Float | XsdPrimitive::Double => {
                    rec.set_f64(&path, rng.random_range(-50i64..50) as f64 * 0.5).unwrap()
                }
                XsdPrimitive::NonNegativeInteger
                | XsdPrimitive::UnsignedLong
                | XsdPrimitive::UnsignedInt
                | XsdPrimitive::UnsignedShort
                | XsdPrimitive::UnsignedByte => {
                    rec.set_u64(&path, rng.random_range(0u64..100)).unwrap()
                }
                _ => rec.set_i64(&path, rng.random_range(-100i64..100)).unwrap(),
            },
            Occurs::Bounded(n) => {
                for i in 0..n {
                    match prim {
                        XsdPrimitive::Float | XsdPrimitive::Double => {
                            rec.set_elem_f64(&path, i, i as f64).unwrap()
                        }
                        _ => rec.set_elem_i64(&path, i, i as i64).unwrap(),
                    }
                }
            }
            Occurs::Unbounded => {
                let n = rng.random_range(0usize..5);
                match prim {
                    XsdPrimitive::Float | XsdPrimitive::Double => {
                        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
                        rec.set_f64_array(&path, &vals).unwrap();
                    }
                    _ => {
                        let vals: Vec<i64> = (0..n).map(|i| i as i64).collect();
                        rec.set_i64_array(&path, &vals).unwrap();
                    }
                }
            }
        }
    }
}

fn opposite(machine: MachineModel) -> MachineModel {
    if machine == MachineModel::SPARC32 {
        MachineModel::X86_64
    } else {
        MachineModel::SPARC32
    }
}

fn run_case(seed: u64, sender_machine: MachineModel) {
    let mut rng = StdRng::seed_from_u64(seed);
    for doc in fixtures() {
        for ct in &doc.types {
            let Some((receiver_ct, expected)) = mutate(&mut rng, ct) else { continue };

            let sender = Xmit::new(sender_machine);
            sender.load_str(&schema_of(&doc, ct.clone())).unwrap();
            let full = sender.bind(&ct.name).unwrap();
            let mut rec = full.new_record();
            fill(&mut rng, &mut rec, &doc, ct);
            let wire = xmit::encode(&rec).unwrap();

            for receiver_machine in [sender_machine, opposite(sender_machine)] {
                // The negotiated receiver: its own version bound, the
                // sender's descriptor learned from the HELLO, the pair
                // decided (and its convert plan certified) by the cache.
                let receiver = Xmit::new(receiver_machine);
                receiver.load_str(&schema_of(&doc, receiver_ct.clone())).unwrap();
                let target = receiver.bind(&ct.name).unwrap();
                let sender_desc = receiver.registry().register_descriptor((*full.format).clone());
                let cache = NegotiationCache::new();
                let outcome =
                    cache.negotiate_pair(receiver.registry(), &sender_desc, &target.format);

                // The handshake's descriptor diff must agree with the
                // schema-level diff about the pair (compare on the
                // receiver's machine so widths are like-for-like).
                let same_machine = Xmit::new(receiver_machine);
                same_machine.load_str(&schema_of(&doc, ct.clone())).unwrap();
                let old_here = same_machine.bind(&ct.name).unwrap();
                let type_report = diff_types(ct, &receiver_ct, &receiver_machine).unwrap();
                let desc_report = diff_descriptors(&old_here.format, &target.format);
                assert_eq!(
                    desc_report.compatibility, type_report.compatibility,
                    "seed {seed}: {}: descriptor diff and type diff disagree \
                     (receiver={receiver_machine:?})",
                    ct.name
                );

                match expected {
                    Expected::Rejected => {
                        assert_eq!(type_report.compatibility, Compatibility::Breaking);
                        assert!(
                            matches!(outcome, Err(XmitError::Negotiation(_))),
                            "seed {seed}: {}: breaking pair was not rejected: {outcome:?}",
                            ct.name
                        );
                    }
                    Expected::Converts(compat) => {
                        assert_eq!(
                            type_report.compatibility, compat,
                            "seed {seed}: {}: unexpected compatibility",
                            ct.name
                        );
                        let verdict = outcome.unwrap_or_else(|e| {
                            panic!("seed {seed}: {}: pair rejected: {e}", ct.name)
                        });
                        assert_ne!(verdict, PairVerdict::Incompatible);

                        // Negotiated delivery ≡ plain make-right decode
                        // on a registry that never negotiated.
                        let negotiated =
                            xmit::decode_with(&wire, receiver.registry(), &target.format).unwrap();
                        let plain_rx = Xmit::new(receiver_machine);
                        plain_rx.load_str(&schema_of(&doc, receiver_ct.clone())).unwrap();
                        let plain_target = plain_rx.bind(&ct.name).unwrap();
                        plain_rx.registry().register_descriptor((*full.format).clone());
                        let plain =
                            xmit::decode_with(&wire, plain_rx.registry(), &plain_target.format)
                                .unwrap();
                        assert_eq!(
                            Value::from_record(&negotiated).unwrap(),
                            Value::from_record(&plain).unwrap(),
                            "seed {seed}: {}: negotiated path diverged from make-right \
                             (sender={sender_machine:?} receiver={receiver_machine:?})",
                            ct.name
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn negotiated_convert_matches_make_right_big_endian(seed in any::<u64>()) {
        run_case(seed, MachineModel::SPARC32);
    }

    #[test]
    fn negotiated_convert_matches_make_right_little_endian(seed in any::<u64>()) {
        run_case(seed, MachineModel::X86_64);
    }
}
