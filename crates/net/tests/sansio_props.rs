//! Property tests for the sans-io frame decoder: however the byte
//! stream is fragmented — byte at a time, random splits, everything at
//! once — [`LengthFramer`] must emit exactly the frames that were
//! encoded, in order, with nothing left over.

use proptest::prelude::*;

use openmeta_net::LengthFramer;

const MAX: usize = 1 << 20;

fn frames() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..512)), 1..8)
}

fn encode(frames: &[(u8, Vec<u8>)], kind_byte: bool) -> Vec<u8> {
    let mut wire = Vec::new();
    for (kind, payload) in frames {
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        if kind_byte {
            wire.push(*kind);
        }
        wire.extend_from_slice(payload);
    }
    wire
}

/// Feed `wire` to a framer in fragments cut at `splits` (positions taken
/// modulo the remaining length), draining frames after every push.
fn decode_split(wire: &[u8], splits: &[usize], kind_byte: bool) -> Vec<(u8, Vec<u8>)> {
    let mut framer =
        if kind_byte { LengthFramer::with_kind_byte(MAX) } else { LengthFramer::new(MAX) };
    let mut out = Vec::new();
    let mut rest = wire;
    for s in splits {
        if rest.is_empty() {
            break;
        }
        let n = 1 + (s % rest.len());
        framer.push(&rest[..n]);
        rest = &rest[n..];
        while let Some(frame) = framer.next_frame().expect("valid wire") {
            out.push(frame);
        }
    }
    framer.push(rest);
    while let Some(frame) = framer.next_frame().expect("valid wire") {
        out.push(frame);
    }
    assert!(framer.is_empty(), "bytes left after the last frame");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_splits_reassemble_kind_frames(
        frames in frames(),
        splits in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        let wire = encode(&frames, true);
        prop_assert_eq!(decode_split(&wire, &splits, true), frames);
    }

    #[test]
    fn random_splits_reassemble_plain_frames(
        frames in frames(),
        splits in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        let wire = encode(&frames, false);
        let got = decode_split(&wire, &splits, false);
        let want: Vec<(u8, Vec<u8>)> =
            frames.into_iter().map(|(_, p)| (0u8, p)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn byte_at_a_time_equals_one_push(frames in frames()) {
        let wire = encode(&frames, true);
        let mut whole = LengthFramer::with_kind_byte(MAX);
        whole.push(&wire);
        let mut want = Vec::new();
        while let Some(f) = whole.next_frame().unwrap() {
            want.push(f);
        }

        let mut trickle = LengthFramer::with_kind_byte(MAX);
        let mut got = Vec::new();
        for b in &wire {
            trickle.push(&[*b]);
            while let Some(f) = trickle.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bytes_needed_never_overshoots(frames in frames(), cut in any::<usize>()) {
        // At any truncation point, bytes_needed() must name exactly the
        // count that completes the next frame — feeding precisely that
        // many bytes yields a frame (or consumes the rest of the wire).
        let wire = encode(&frames, true);
        let cut = cut % wire.len();
        let mut framer = LengthFramer::with_kind_byte(MAX);
        framer.push(&wire[..cut]);
        while framer.next_frame().unwrap().is_some() {}
        let need = framer.bytes_needed();
        prop_assert!(need > 0, "incomplete stream must need bytes");
        if cut + need <= wire.len() {
            framer.push(&wire[cut..cut + need]);
            prop_assert!(framer.next_frame().unwrap().is_some()
                || framer.bytes_needed() > 0);
        }
    }
}
