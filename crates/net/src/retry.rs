//! Retry with exponential backoff.

use std::time::Duration;

/// A bounded exponential-backoff schedule.
///
/// Attempt `n` (1-based) is preceded by a delay of
/// `base_delay * 2^(n-2)` capped at `max_delay`; the first attempt runs
/// immediately.  `attempts` counts total tries, so `attempts: 1` means
/// "no retry".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling applied to the doubled delays.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that tries exactly once.
    pub fn none() -> RetryPolicy {
        RetryPolicy { attempts: 1, ..RetryPolicy::default() }
    }

    /// The delay inserted before attempt `attempt` (1-based; zero for the
    /// first attempt).
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(2).min(20);
        self.base_delay.saturating_mul(1u32 << doublings).min(self.max_delay)
    }

    /// Run `op` under this schedule, returning the first success or the
    /// last error.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            std::thread::sleep(self.delay_before(attempt));
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_and_cap() {
        let p = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(p.delay_before(1), Duration::ZERO);
        assert_eq!(p.delay_before(2), Duration::from_millis(10));
        assert_eq!(p.delay_before(3), Duration::from_millis(20));
        assert_eq!(p.delay_before(4), Duration::from_millis(35));
        assert_eq!(p.delay_before(5), Duration::from_millis(35));
    }

    #[test]
    fn run_stops_on_first_success() {
        let mut calls = 0;
        let p = RetryPolicy { base_delay: Duration::ZERO, ..RetryPolicy::default() };
        let out: Result<u32, &str> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err("nope")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn run_returns_last_error_when_exhausted() {
        let mut calls = 0;
        let p = RetryPolicy { attempts: 4, base_delay: Duration::ZERO, max_delay: Duration::ZERO };
        let out: Result<(), u32> = p.run(|| {
            calls += 1;
            Err(calls)
        });
        assert_eq!(out, Err(4));
        assert_eq!(calls, 4);
    }
}
