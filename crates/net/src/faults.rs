//! A fault-injecting TCP proxy for transport tests.
//!
//! Sits between a client and an upstream server and forwards bytes until
//! a configured fault fires: a stall (bytes stop flowing but the
//! connection stays open — the case deadlines exist for), an abrupt
//! mid-frame reset, a clean truncation, or byte-dribbling partial writes.
//! Faults apply to each direction independently with its own byte
//! budget, so the same fixture exercises both stalled servers (receiver
//! side) and stalled readers (sender side).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::framing::is_timeout;

/// The fault a [`FaultProxy`] injects into each direction of a proxied
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything unchanged (a plain TCP relay).
    None,
    /// Forward `after` bytes, then stop forwarding while holding the
    /// connection open: the peer blocks until its deadline fires.
    Stall {
        /// Bytes forwarded before the stall.
        after: usize,
    },
    /// Forward `after` bytes, then kill both directions abruptly
    /// (mid-frame connection death).
    Reset {
        /// Bytes forwarded before the reset.
        after: usize,
    },
    /// Forward `after` bytes, then close this direction cleanly (the
    /// peer sees EOF mid-frame).
    Truncate {
        /// Bytes forwarded before the truncation.
        after: usize,
    },
    /// Forward everything, but in `chunk`-byte writes separated by
    /// `delay` (partial-write torture for frame reassembly).
    Chop {
        /// Bytes per write.
        chunk: usize,
        /// Pause between writes.
        delay: Duration,
    },
}

/// A running fault proxy; dropping it shuts it down.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// How often pumps wake to check the stop flag while idle or stalled.
const POLL: Duration = Duration::from_millis(25);

impl FaultProxy {
    /// Start a proxy on an ephemeral localhost port, relaying every
    /// accepted connection to `upstream` with `fault` injected.
    pub fn start(upstream: SocketAddr, fault: Fault) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let Ok(server) = TcpStream::connect(upstream) else { continue };
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let (s_a, s_b) = (stop2.clone(), stop2.clone());
                std::thread::spawn(move || pump(client, server, fault, &s_a));
                std::thread::spawn(move || pump(server2, client2, fault, &s_b));
            }
        });
        Ok(FaultProxy { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// Address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept(); pump threads notice the flag within POLL.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Relay `from` → `to`, applying `fault` with a per-direction budget.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: Fault, stop: &AtomicBool) {
    // A short read timeout keeps the pump responsive to shutdown.
    let _ = from.set_read_timeout(Some(POLL));
    let mut remaining: Option<usize> = match fault {
        Fault::Stall { after } | Fault::Reset { after } | Fault::Truncate { after } => Some(after),
        Fault::None | Fault::Chop { .. } => None,
    };
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::Acquire) {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if is_timeout(&e) => continue,
            Err(_) => break,
        };
        let mut data = &buf[..n];
        if let Some(budget) = remaining.as_mut() {
            let pass = (*budget).min(data.len());
            data = &data[..pass];
            *budget -= pass;
        }
        let forwarded = match fault {
            Fault::Chop { chunk, delay } => forward_chopped(&mut to, data, chunk.max(1), delay),
            _ => to.write_all(data).and_then(|()| to.flush()),
        };
        if forwarded.is_err() {
            break;
        }
        if remaining == Some(0) {
            match fault {
                Fault::Stall { .. } => {
                    // Hold both ends open, forwarding nothing: the peer's
                    // only way out is its own deadline.
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(POLL);
                    }
                }
                Fault::Reset { .. } => {
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                }
                _ => {
                    let _ = to.shutdown(Shutdown::Write);
                }
            }
            break;
        }
    }
}

fn forward_chopped(
    to: &mut TcpStream,
    data: &[u8],
    chunk: usize,
    delay: Duration,
) -> std::io::Result<()> {
    for piece in data.chunks(chunk) {
        to.write_all(piece)?;
        to.flush()?;
        std::thread::sleep(delay);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// An echo server: reads until EOF, writing every byte back.
    fn echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn relays_unchanged_without_fault() {
        let proxy = FaultProxy::start(echo_upstream(), Fault::None).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hello fault proxy").unwrap();
        let mut back = [0u8; 17];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello fault proxy");
    }

    #[test]
    fn chop_preserves_content() {
        let fault = Fault::Chop { chunk: 3, delay: Duration::from_millis(1) };
        let proxy = FaultProxy::start(echo_upstream(), fault).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..200u8).collect();
        c.write_all(&payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        c.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn stall_blocks_until_reader_deadline() {
        let proxy = FaultProxy::start(echo_upstream(), Fault::Stall { after: 4 }).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(150))).unwrap();
        c.write_all(b"0123456789").unwrap();
        let mut first = [0u8; 4];
        c.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"0123");
        let start = Instant::now();
        let err = c.read_exact(&mut first).unwrap_err();
        assert!(is_timeout(&err), "stall must surface as a timeout, got {err:?}");
        assert!(start.elapsed() >= Duration::from_millis(100));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn truncate_surfaces_as_eof() {
        let proxy = FaultProxy::start(echo_upstream(), Fault::Truncate { after: 4 }).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"0123456789").unwrap();
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"0123");
    }

    #[test]
    fn reset_kills_the_connection() {
        let proxy = FaultProxy::start(echo_upstream(), Fault::Reset { after: 2 }).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"0123456789").unwrap();
        // At most the budgeted bytes come back before the connection dies.
        let mut buf = Vec::new();
        let _ = c.read_to_end(&mut buf);
        assert!(buf.len() <= 2, "reset must cut the stream, got {} bytes", buf.len());
    }
}
