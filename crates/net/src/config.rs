//! Deadline and bound configuration for clients and servers.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::retry::RetryPolicy;

/// Client-side transport knobs: how long to wait for a connect, a read
/// and a write, and how to retry a failed connect.
///
/// Every socket a hardened client opens gets these deadlines applied, so
/// a stalled peer surfaces as a timeout error instead of an indefinite
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// TCP connect timeout (per resolved address).
    pub connect_timeout: Duration,
    /// Read deadline on established connections (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Write deadline on established connections (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Disable Nagle so small frames are not parked behind delayed ACKs.
    pub nodelay: bool,
    /// Backoff schedule for connect retries.
    pub retry: RetryPolicy,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
            retry: RetryPolicy::default(),
        }
    }
}

/// Which connection-handling engine a server runs on.
///
/// Both engines sit behind the same [`ServerConfig`] and feed the same
/// [`crate::ServerStats`] counters; servers select one without any
/// change to their public APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One blocking worker thread per active connection, bounded by
    /// [`ServerConfig::workers`] (the original engine).
    #[default]
    Threaded,
    /// Readiness poll loop over nonblocking sockets: a few shard threads
    /// sweep every connection's state machine, so concurrency is bounded
    /// by [`ServerConfig::max_connections`], not thread count.
    EventLoop,
}

/// Server-side bounds: a fixed worker pool with a capped accept queue
/// instead of a detached thread per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Connection-handling engine (threaded pool or readiness loop).
    pub backend: Backend,
    /// Worker threads serving connections (the active-connection bound
    /// for [`Backend::Threaded`]; ignored by the event loop).
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker
    /// ([`Backend::Threaded`] only; the event loop has no wait queue).
    pub accept_queue: usize,
    /// Hard cap on active + queued connections; excess connects are
    /// rejected (closed), never given an unbounded thread.
    pub max_connections: usize,
    /// Per-connection read deadline (also the keep-alive idle bound).
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline.
    pub write_timeout: Option<Duration>,
    /// How long graceful shutdown waits for in-flight connections to
    /// finish before detaching the stragglers.
    pub drain_timeout: Duration,
    /// Sweep threads for [`Backend::EventLoop`]; 0 picks a small default
    /// from available parallelism.
    pub event_loop_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: Backend::Threaded,
            workers: 8,
            accept_queue: 32,
            max_connections: 40,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            drain_timeout: Duration::from_secs(15),
            event_loop_shards: 0,
        }
    }
}

/// Apply a config's deadlines and nodelay to an established stream.
pub fn harden_stream(stream: &TcpStream, cfg: &TransportConfig) -> io::Result<()> {
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_write_timeout(cfg.write_timeout)?;
    if cfg.nodelay {
        stream.set_nodelay(true)?;
    }
    Ok(())
}

/// Resolve `addr` and connect with `cfg`'s connect deadline, trying every
/// resolved address in order.  Unlike `TcpStream::connect`, a black-holed
/// host fails after the configured timeout rather than the OS default
/// (which can be minutes).  The returned stream has deadlines applied.
pub fn connect_with_deadline(
    addr: impl ToSocketAddrs,
    cfg: &TransportConfig,
) -> io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let mut last: Option<io::Error> = None;
    for a in &addrs {
        match TcpStream::connect_timeout(a, cfg.connect_timeout) {
            Ok(stream) => {
                harden_stream(&stream, cfg)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to no candidates")
    }))
}

/// [`connect_with_deadline`] wrapped in the config's retry-with-backoff
/// schedule: transient connect failures (a peer restarting, a full accept
/// queue) are retried before the error is surfaced.
pub fn connect_retrying(
    addr: impl ToSocketAddrs + Copy,
    cfg: &TransportConfig,
) -> io::Result<TcpStream> {
    cfg.retry.run(|| connect_with_deadline(addr, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn connect_applies_deadlines() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = TransportConfig {
            read_timeout: Some(Duration::from_millis(123)),
            ..TransportConfig::default()
        };
        let stream = connect_with_deadline(addr, &cfg).unwrap();
        // The kernel may round the timeout up to its clock granularity.
        let got = stream.read_timeout().unwrap().expect("deadline set");
        assert!(got >= Duration::from_millis(123) && got < Duration::from_millis(200), "{got:?}");
        assert!(stream.nodelay().unwrap());
    }

    #[test]
    fn refused_connect_fails_after_retries_not_hangs() {
        // Port 1 is essentially never listening; each attempt fails fast
        // with ECONNREFUSED and the retry schedule bounds total time.
        let cfg = TransportConfig {
            connect_timeout: Duration::from_millis(300),
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(10),
            },
            ..TransportConfig::default()
        };
        let start = Instant::now();
        assert!(connect_retrying(("127.0.0.1", 1), &cfg).is_err());
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn retry_recovers_when_listener_appears() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        // Rebind the same port after a delay; the retrying connect should
        // land once the listener is back.
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let listener = TcpListener::bind(addr).unwrap();
            let _ = listener.accept();
        });
        let cfg = TransportConfig {
            retry: RetryPolicy {
                attempts: 20,
                base_delay: Duration::from_millis(25),
                max_delay: Duration::from_millis(100),
            },
            ..TransportConfig::default()
        };
        assert!(connect_retrying(addr, &cfg).is_ok());
    }
}
