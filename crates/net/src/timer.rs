//! Hashed timer wheel for per-connection deadlines.
//!
//! The event loop tracks one deadline token per connection (the nearer
//! of its read and write deadlines).  A sorted structure would pay
//! `O(log n)` per keep-alive refresh at 10k+ connections; the wheel
//! pays `O(1)` amortized: deadlines hash into coarse slots and the loop
//! drains only the slots the clock has swept past.
//!
//! Deadlines move constantly (every byte of progress refreshes them),
//! so the wheel is *lazy*: entries are never cancelled or moved.  When
//! a slot fires, the stored deadline is checked — entries whose time
//! has not actually come are re-inserted at their new slot, and the
//! caller re-checks the connection's live deadline before acting on a
//! delivered token (a token may be stale if the connection refreshed or
//! closed after scheduling).  Slot granularity bounds how late a
//! deadline can fire; staleness means it never fires early twice.

use std::time::{Duration, Instant};

#[derive(Debug)]
struct Entry {
    token: u64,
    deadline: Instant,
}

/// A fixed-slot hashed timer wheel.  Single-threaded by design: each
/// event-loop shard owns one.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    slot_len: Duration,
    epoch: Instant,
    /// Last tick index processed by [`TimerWheel::expired`].
    processed: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `slot_len` wide.  The horizon is
    /// `slots * slot_len`; farther deadlines park in the farthest slot
    /// and lazily re-insert when it fires.
    pub fn new(slot_len: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(slots >= 2 && !slot_len.is_zero());
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            slot_len,
            epoch: now,
            processed: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let elapsed = t.saturating_duration_since(self.epoch);
        (elapsed.as_nanos() / self.slot_len.as_nanos().max(1)) as u64
    }

    /// Schedule `token` to be delivered once `deadline` passes.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        // Never place an entry at or behind the processed cursor: it
        // would wait a full wheel revolution.  Already-due deadlines go
        // in the next slot to fire.
        let tick = self.tick_of(deadline).max(self.processed + 1);
        let horizon = self.processed + self.slots.len() as u64 - 1;
        let slot = (tick.min(horizon) as usize) % self.slots.len();
        self.slots[slot].push(Entry { token, deadline });
    }

    /// Advance the wheel to `now`, appending every token whose stored
    /// deadline has passed to `out`.  Not-yet-due entries in swept slots
    /// are re-inserted (the lazy step for beyond-horizon deadlines).
    pub fn expired(&mut self, now: Instant, out: &mut Vec<u64>) {
        let current = self.tick_of(now);
        if current <= self.processed {
            return;
        }
        // A long stall can sweep past every slot; one revolution visits
        // them all, so cap the walk at the slot count.
        let steps = (current - self.processed).min(self.slots.len() as u64);
        let mut requeue: Vec<Entry> = Vec::new();
        for i in 1..=steps {
            let slot = ((self.processed + i) as usize) % self.slots.len();
            for entry in self.slots[slot].drain(..) {
                if entry.deadline <= now {
                    out.push(entry.token);
                } else {
                    requeue.push(entry);
                }
            }
        }
        self.processed = current;
        for entry in requeue {
            self.schedule(entry.token, entry.deadline);
        }
    }

    /// Entries currently parked in the wheel (stale ones included).
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum()
    }

    /// `true` when no entries are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn delivers_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(10), 32, t0);
        wheel.schedule(1, t0 + ms(35));
        let mut out = Vec::new();
        wheel.expired(t0 + ms(20), &mut out);
        assert!(out.is_empty(), "fired {out:?} before deadline");
        wheel.expired(t0 + ms(50), &mut out);
        assert_eq!(out, vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn beyond_horizon_deadline_lazily_reinserts() {
        let t0 = Instant::now();
        // Horizon is 8 * 10ms = 80ms; schedule at 250ms.
        let mut wheel = TimerWheel::new(ms(10), 8, t0);
        wheel.schedule(7, t0 + ms(250));
        let mut out = Vec::new();
        for step in 1..=24 {
            wheel.expired(t0 + ms(step * 10), &mut out);
            assert!(out.is_empty(), "fired at {}ms", step * 10);
        }
        wheel.expired(t0 + ms(260), &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn long_stall_sweeps_every_slot_once() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(10), 16, t0);
        for token in 0..16u64 {
            wheel.schedule(token, t0 + ms(5 * (token + 1)));
        }
        let mut out = Vec::new();
        // Jump far past the whole horizon in one call.
        wheel.expired(t0 + ms(100_000), &mut out);
        out.sort_unstable();
        assert_eq!(out, (0..16u64).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn already_due_deadline_fires_on_next_sweep() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(10), 8, t0);
        let mut out = Vec::new();
        wheel.expired(t0 + ms(500), &mut out); // advance the cursor far in
        wheel.schedule(3, t0 + ms(100)); // already in the past
        wheel.expired(t0 + ms(520), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn refreshed_connection_redelivers_at_new_slot() {
        // The lazy-cancel contract: the caller re-schedules on refresh
        // and ignores stale tokens, so both entries deliver but only the
        // live one matters.  The wheel just has to deliver both.
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(10), 32, t0);
        wheel.schedule(9, t0 + ms(30));
        wheel.schedule(9, t0 + ms(90)); // refresh: same token, later deadline
        let mut out = Vec::new();
        wheel.expired(t0 + ms(40), &mut out);
        assert_eq!(out, vec![9], "stale entry should still deliver");
        out.clear();
        wheel.expired(t0 + ms(100), &mut out);
        assert_eq!(out, vec![9]);
    }
}
