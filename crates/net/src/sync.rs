//! Synchronization primitives behind a swap point.
//!
//! Normal builds use `std::sync`; under `RUSTFLAGS="--cfg loom"` the
//! same names resolve to loom's model-checked versions, so the worker
//! pool's locking runs unchanged inside `loom::model` schedule
//! exploration (`cargo xtask loom`).
//!
//! The helpers also centralize poison recovery: a worker that panics
//! mid-handler only ever holds the state lock between two consistent
//! states (counters are adjusted in single steps), so continuing past a
//! poisoned lock is sound — and the library stays free of `unwrap()`.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

use std::sync::PoisonError;
use std::time::Duration;

/// Acquire `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive access through `&mut`, recovering from poisoning.
pub(crate) fn get_mut<T>(m: &mut Mutex<T>) -> &mut T {
    m.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard if a notifier panicked.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Wait with a timeout, recovering the guard if a notifier panicked.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    let (guard, result) = cv.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
    (guard, result.timed_out())
}
