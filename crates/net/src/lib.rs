//! Shared transport hardening for the metadata and record planes.
//!
//! The paper's Figure 2 architecture splits communication into a metadata
//! plane (format servers, HTTP schema hosts) and a data plane (PBIO
//! record streams).  Both planes must stay correct when a peer misbehaves:
//! a stalled socket must not hang a client forever, a slow reader must
//! not wedge a sender, and connection handling must not spawn unbounded
//! threads.  This crate supplies the pieces the `pbio`, `ohttp` and
//! `xmit` transports share:
//!
//! * [`TransportConfig`] — client-side connect/read/write deadlines and a
//!   [`RetryPolicy`] for connect-with-backoff;
//! * [`ServerConfig`] — worker count, accept-queue cap, max-connections
//!   bound and per-connection deadlines for servers;
//! * [`WorkerPool`] — a bounded worker pool replacing detached
//!   thread-per-connection spawns, with graceful shutdown that drains
//!   in-flight connections;
//! * [`ServerStats`] / [`TransportCounters`] — per-server counters
//!   (accepted, active, rejected, timed out, frames in/out) surfaced
//!   through the bench `--json` reports;
//! * [`read_exact_capped`] — frame-payload reads that grow the buffer as
//!   bytes actually arrive, so an untrusted length prefix cannot force a
//!   large up-front allocation;
//! * [`FaultProxy`] — a TCP proxy test fixture injecting stalls,
//!   mid-frame resets, truncation and partial writes;
//! * [`EventLoop`] — a readiness poll-loop backend ([`Backend`] selects
//!   it per server) sweeping nonblocking sockets with per-connection
//!   state machines, deadlines from a [`TimerWheel`], and sans-io
//!   protocol cores ([`EventHandler`], [`LengthFramer`]).

#![deny(unsafe_code)]

pub mod config;
pub mod event_loop;
pub mod faults;
pub mod framing;
pub mod nio;
pub mod retry;
pub mod sansio;
pub mod stats;
pub(crate) mod sync;
pub mod timer;
pub mod workers;

pub use config::{
    connect_retrying, connect_with_deadline, harden_stream, Backend, ServerConfig, TransportConfig,
};
pub use event_loop::{Dispatch, EventHandler, EventLoop, HandlerFactory};
pub use faults::{Fault, FaultProxy};
pub use framing::{is_timeout, read_exact_capped, write_all_vectored, READ_CHUNK};
pub use retry::RetryPolicy;
pub use sansio::{read_frame_blocking, LengthFramer};
pub use stats::{ServerStats, TransportCounters};
pub use timer::TimerWheel;
pub use workers::{ConnTracker, WorkerPool};
