//! Per-server transport counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, cheaply clonable counter block; every accept loop, worker and
/// frame codec updates the same instance, and [`ServerStats::snapshot`]
/// reads it out for reports.
#[derive(Clone, Default)]
pub struct ServerStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    active: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

impl ServerStats {
    /// A fresh counter block.
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    /// A connection was accepted (before admission control).
    pub fn accepted(&self) {
        self.inner.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was rejected by the accept-queue / max-connections
    /// bound (or dropped undrained at shutdown).
    pub fn rejected(&self) {
        self.inner.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection hit a read or write deadline.
    pub fn timed_out(&self) {
        self.inner.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// A request/frame was read from a connection.
    pub fn frame_in(&self) {
        self.inner.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    /// A response/frame was written to a connection.
    pub fn frame_out(&self) {
        self.inner.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker started serving a connection.
    pub fn conn_started(&self) {
        self.inner.active.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker finished serving a connection.
    pub fn conn_finished(&self) {
        self.inner.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently being served.
    pub fn active_now(&self) -> u64 {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Read all counters at once.
    pub fn snapshot(&self) -> TransportCounters {
        TransportCounters {
            accepted: self.inner.accepted.load(Ordering::Relaxed),
            active: self.inner.active.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            timed_out: self.inner.timed_out.load(Ordering::Relaxed),
            frames_in: self.inner.frames_in.load(Ordering::Relaxed),
            frames_out: self.inner.frames_out.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a server's transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Connections being served when the snapshot was taken.
    pub active: u64,
    /// Connections rejected by the admission bounds.
    pub rejected: u64,
    /// Connections that hit a read/write deadline.
    pub timed_out: u64,
    /// Requests/frames read.
    pub frames_in: u64,
    /// Responses/frames written.
    pub frames_out: u64,
}

impl TransportCounters {
    /// Render as a JSON object (for the bench `--json` artifacts).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\": {}, \"active\": {}, \"rejected\": {}, \
             \"timed_out\": {}, \"frames_in\": {}, \"frames_out\": {}}}",
            self.accepted,
            self.active,
            self.rejected,
            self.timed_out,
            self.frames_in,
            self.frames_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ServerStats::new();
        stats.accepted();
        stats.accepted();
        stats.conn_started();
        stats.frame_in();
        stats.frame_out();
        stats.rejected();
        stats.timed_out();
        let snap = stats.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.active, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.frames_in, 1);
        assert_eq!(snap.frames_out, 1);
        stats.conn_finished();
        assert_eq!(stats.snapshot().active, 0);
        assert!(snap.to_json().contains("\"accepted\": 2"));
    }
}
