//! Per-server transport counters, backed by the process-wide metrics
//! registry.
//!
//! Each server owns a [`ServerStats`] block whose instruments are
//! registered with [`MetricsRegistry::global`] under the
//! `openmeta_transport_*` names: a `/metrics` scrape (or a bench
//! snapshot) sums every live server's counters, while
//! [`ServerStats::snapshot`] keeps reading this instance's values exactly
//! — the pre-registry accessor contract (`transport_counters()`)
//! is unchanged.

use std::sync::Arc;

use openmeta_obs::{Counter, Gauge, MetricsRegistry};

/// Shared, cheaply clonable counter block; every accept loop, worker and
/// frame codec updates the same instance, and [`ServerStats::snapshot`]
/// reads it out for reports.
#[derive(Clone)]
pub struct ServerStats {
    inner: Arc<Counters>,
}

struct Counters {
    accepted: Arc<Counter>,
    active: Arc<Gauge>,
    rejected: Arc<Counter>,
    timed_out: Arc<Counter>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// A fresh counter block, registered with the global metrics
    /// registry under the `openmeta_transport_*` series.
    pub fn new() -> ServerStats {
        let m = MetricsRegistry::global();
        ServerStats {
            inner: Arc::new(Counters {
                accepted: m.counter("openmeta_transport_accepted_total"),
                active: m.gauge("openmeta_transport_active_connections"),
                rejected: m.counter("openmeta_transport_rejected_total"),
                timed_out: m.counter("openmeta_transport_timed_out_total"),
                frames_in: m.counter("openmeta_transport_frames_in_total"),
                frames_out: m.counter("openmeta_transport_frames_out_total"),
            }),
        }
    }

    /// A connection was accepted (before admission control).
    pub fn accepted(&self) {
        self.inner.accepted.inc();
    }

    /// A connection was rejected by the accept-queue / max-connections
    /// bound (or dropped undrained at shutdown).
    pub fn rejected(&self) {
        self.inner.rejected.inc();
    }

    /// A connection hit a read or write deadline.
    pub fn timed_out(&self) {
        self.inner.timed_out.inc();
    }

    /// A request/frame was read from a connection.
    pub fn frame_in(&self) {
        self.inner.frames_in.inc();
    }

    /// A response/frame was written to a connection.
    pub fn frame_out(&self) {
        self.inner.frames_out.inc();
    }

    /// A worker started serving a connection.
    pub fn conn_started(&self) {
        self.inner.active.inc();
    }

    /// A worker finished serving a connection.
    pub fn conn_finished(&self) {
        self.inner.active.dec();
    }

    /// Connections currently being served.
    pub fn active_now(&self) -> u64 {
        self.inner.active.get().max(0) as u64
    }

    /// Read all counters at once.
    pub fn snapshot(&self) -> TransportCounters {
        TransportCounters {
            accepted: self.inner.accepted.get(),
            active: self.active_now(),
            rejected: self.inner.rejected.get(),
            timed_out: self.inner.timed_out.get(),
            frames_in: self.inner.frames_in.get(),
            frames_out: self.inner.frames_out.get(),
        }
    }
}

/// A point-in-time copy of a server's transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Connections being served when the snapshot was taken.
    pub active: u64,
    /// Connections rejected by the admission bounds.
    pub rejected: u64,
    /// Connections that hit a read/write deadline.
    pub timed_out: u64,
    /// Requests/frames read.
    pub frames_in: u64,
    /// Responses/frames written.
    pub frames_out: u64,
}

impl TransportCounters {
    /// Render as a JSON object (for the bench `--json` artifacts).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\": {}, \"active\": {}, \"rejected\": {}, \
             \"timed_out\": {}, \"frames_in\": {}, \"frames_out\": {}}}",
            self.accepted,
            self.active,
            self.rejected,
            self.timed_out,
            self.frames_in,
            self.frames_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ServerStats::new();
        stats.accepted();
        stats.accepted();
        stats.conn_started();
        stats.frame_in();
        stats.frame_out();
        stats.rejected();
        stats.timed_out();
        let snap = stats.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.active, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.frames_in, 1);
        assert_eq!(snap.frames_out, 1);
        stats.conn_finished();
        assert_eq!(stats.snapshot().active, 0);
        assert!(snap.to_json().contains("\"accepted\": 2"));
    }

    #[test]
    fn instances_feed_the_global_registry() {
        let stats = ServerStats::new();
        stats.accepted();
        stats.frame_in();
        let snap = MetricsRegistry::global().snapshot();
        // Other instances in this test process may have contributed; the
        // registry must hold at least this instance's increments.
        assert!(snap.counter_value("openmeta_transport_accepted_total").unwrap() >= 1);
        assert!(snap.counter_value("openmeta_transport_frames_in_total").unwrap() >= 1);
    }
}
