//! Readiness-based server backend: a poll loop over nonblocking sockets.
//!
//! The threaded backend pins one OS thread per active connection, so
//! concurrency is bounded by [`crate::ServerConfig::workers`].  This
//! backend inverts that: a small, fixed set of *shard* threads sweeps
//! every connection's state machine, and concurrency is bounded only by
//! `max_connections` (file descriptors), not thread stacks.  10k+
//! keep-alive connections cost a few MB of buffers instead of 10k
//! stacks.
//!
//! ## Per-connection state machine
//!
//! ```text
//!             +-> NotReady: park, retry next sweep
//!  [reading] -+-> bytes -> sans-io handler -> output queued -> [writing]
//!             +-> EOF / error / deadline ------------------> [closed]
//!
//!             +-> NotReady (kernel buffer full): write-interest stays on
//!  [writing] -+-> partial progress: advance cursor (deadline anchored)
//!             +-> flushed: back to [reading] (or [closed] after close)
//! ```
//!
//! Protocol logic never appears here: each connection owns a boxed
//! [`EventHandler`] (an incremental parser plus request handler) that
//! consumes byte chunks and appends response bytes — the same sans-io
//! cores the blocking servers wrap.  All socket I/O goes through
//! [`crate::nio`]'s readiness probes; `cargo xtask analyze` rejects any
//! blocking I/O call in this module.
//!
//! ## Deadlines
//!
//! Each connection carries read and write deadlines mirroring the
//! threaded backend's socket timeouts.  The nearer deadline is parked in
//! a [`TimerWheel`]; entries are lazy (never cancelled or moved on
//! refresh), so a delivered token is validated against the connection's
//! live deadline and generation before it kills anything.  Expiries feed
//! the same `timed_out` counter as the threaded backend — with the
//! protocol deciding, via [`EventHandler::deadline_counts_as_timeout`],
//! whether an idle keep-alive expiry counts (pbio: yes) or only a
//! mid-request stall does (HTTP).
//!
//! The write deadline is *anchored*: it is armed (and parked in the
//! wheel) when the output queue goes empty → non-empty, cleared when the
//! queue fully drains, and — unlike the read deadline — **not** refreshed
//! on partial progress.  Refreshing on progress would let a peer that
//! drains one segment per timeout window hold a loadgen-size burst of
//! queued responses forever; anchoring makes the deadline a bound on the
//! total drain time of the queued buffer, and an expiry always counts as
//! `timed_out`.
//!
//! ## Drain
//!
//! Graceful shutdown stops reading, flushes queued responses, closes
//! connections as their output drains, and force-closes stragglers when
//! the budget expires — the event-loop analog of the worker pool's
//! drain.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use openmeta_obs::{clock, span, Gauge, MetricsRegistry};

use crate::config::ServerConfig;
use crate::nio::{self, ReadOutcome, WriteOutcome};
use crate::stats::ServerStats;
use crate::sync::{self, Condvar, Mutex};
use crate::timer::TimerWheel;
use crate::workers::spawn_worker;

/// What a handler did with a chunk of bytes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Complete requests/frames consumed (feeds the `frames_in`
    /// counter; responses are counted as their bytes flush).
    pub requests: usize,
    /// Close the connection once queued output has flushed (e.g.
    /// `Connection: close`).
    pub close: bool,
}

/// The sans-io protocol core a connection runs on the event loop.
///
/// The loop feeds raw byte chunks in whatever sizes the kernel delivers;
/// the handler buffers partial input, and appends complete response
/// bytes to `out` for the loop to flush as the socket accepts them.
/// Returning an error closes the connection (protocol violation,
/// oversized frame, …), matching a blocking worker bailing out.
pub trait EventHandler: Send {
    /// Consume `bytes`, appending any response bytes to `out`.
    fn on_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> io::Result<Dispatch>;

    /// When a *read* deadline expires, should it count as `timed_out`?
    /// Protocols that treat an idle keep-alive connection's expiry as a
    /// routine close (HTTP) return `false` unless mid-request; frame
    /// protocols that count every read expiry (pbio) keep the default.
    fn deadline_counts_as_timeout(&self) -> bool {
        true
    }
}

/// Factory producing one handler per accepted connection.
pub type HandlerFactory = dyn Fn() -> Box<dyn EventHandler> + Send + Sync;

/// Wheel slot width: deadlines fire at most this much late.
const WHEEL_SLOT: Duration = Duration::from_millis(50);
/// Wheel slots: horizon of 128 × 50ms = 6.4s before lazy re-insert.
const WHEEL_SLOTS: usize = 128;
/// Read scratch size and per-connection fairness budget per sweep.
const SWEEP_READ_BUDGET: usize = 64 * 1024;
/// Idle park between sweeps while connections are open.
const PARK_BUSY: Duration = Duration::from_millis(1);
/// Park while the shard has no connections at all.
const PARK_EMPTY: Duration = Duration::from_millis(50);

struct Inbox {
    incoming: Vec<TcpStream>,
    draining: bool,
    force_close: bool,
}

struct Shard {
    inbox: Mutex<Inbox>,
    wake: Condvar,
}

/// A readiness poll loop serving connections on a few shard threads.
///
/// Servers construct one via [`EventLoop::start`] when their
/// [`ServerConfig`] selects [`crate::config::Backend::EventLoop`], hand
/// accepted sockets to [`EventLoop::register`], and drain with
/// [`EventLoop::shutdown`] — the same lifecycle as
/// [`crate::WorkerPool`].
pub struct EventLoop {
    shards: Vec<Arc<Shard>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    open: Arc<AtomicUsize>,
    next_shard: AtomicUsize,
    max_connections: usize,
    stats: ServerStats,
    drain_timeout: Duration,
}

impl EventLoop {
    /// Spawn the shard threads.  `factory` builds one [`EventHandler`]
    /// per connection; `stats` receives the same counter updates the
    /// threaded backend produces.
    pub fn start(
        name: &str,
        cfg: &ServerConfig,
        stats: ServerStats,
        factory: Arc<HandlerFactory>,
    ) -> EventLoop {
        let shard_count = if cfg.event_loop_shards > 0 {
            cfg.event_loop_shards
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
        };
        let open = Arc::new(AtomicUsize::new(0));
        let mut shards = Vec::with_capacity(shard_count);
        let mut threads = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let shard = Arc::new(Shard {
                inbox: Mutex::new(Inbox {
                    incoming: Vec::new(),
                    draining: false,
                    force_close: false,
                }),
                wake: Condvar::new(),
            });
            shards.push(shard.clone());
            let stats = stats.clone();
            let factory = factory.clone();
            let open = open.clone();
            let timeouts = (cfg.read_timeout, cfg.write_timeout);
            threads.push(spawn_worker(format!("{name}-evloop-{i}"), move || {
                shard_loop(&shard, &stats, &factory, &open, timeouts);
            }));
        }
        EventLoop {
            shards,
            threads: Mutex::new(threads),
            open,
            next_shard: AtomicUsize::new(0),
            max_connections: cfg.max_connections.max(1),
            stats,
            drain_timeout: cfg.drain_timeout,
        }
    }

    /// Adopt an accepted connection.  Returns `false` (counting a
    /// rejection) when the `max_connections` bound is hit or the loop is
    /// draining; the caller drops the socket.
    pub fn register(&self, stream: TcpStream) -> bool {
        if self.open.fetch_add(1, Ordering::SeqCst) >= self.max_connections {
            self.open.fetch_sub(1, Ordering::SeqCst);
            self.stats.rejected();
            return false;
        }
        let shard_idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[shard_idx];
        {
            let mut inbox = sync::lock(&shard.inbox);
            if inbox.draining {
                drop(inbox);
                self.open.fetch_sub(1, Ordering::SeqCst);
                self.stats.rejected();
                return false;
            }
            inbox.incoming.push(stream);
        }
        shard.wake.notify_one();
        true
    }

    /// Connections currently owned by the loop (registered, not yet
    /// closed).
    pub fn open_now(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop reading, flush queued responses, close as
    /// output drains.  Returns `true` if every connection closed inside
    /// `budget`; stragglers past the budget are force-closed either way,
    /// so the loop's threads always exit.
    pub fn shutdown(&self, budget: Duration) -> bool {
        let deadline = clock::now() + budget;
        for shard in &self.shards {
            sync::lock(&shard.inbox).draining = true;
            shard.wake.notify_one();
        }
        let mut drained = true;
        while self.open.load(Ordering::SeqCst) > 0 {
            if clock::now() >= deadline {
                drained = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        for shard in &self.shards {
            sync::lock(&shard.inbox).force_close = true;
            shard.wake.notify_one();
        }
        for t in sync::lock(&self.threads).drain(..) {
            let _ = t.join();
        }
        drained
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if !sync::get_mut(&mut self.threads).is_empty() {
            self.shutdown(self.drain_timeout);
        }
    }
}

/// One connection's slot in a shard's sweep table.
struct Conn {
    stream: TcpStream,
    handler: Box<dyn EventHandler>,
    out: Vec<u8>,
    out_pos: usize,
    /// Responses queued in `out`; counted as `frames_out` once flushed.
    pending_out: usize,
    read_deadline: Option<Instant>,
    /// Anchored at the moment `out` went empty → non-empty; never
    /// refreshed on partial progress (a slow-but-progressing drain must
    /// still expire), cleared when `out` fully drains.
    write_deadline: Option<Instant>,
    /// Slot-reuse guard for lazy wheel tokens.
    gen: u64,
    /// Has a live wheel entry (lazy: at most one per connection).
    scheduled: bool,
    close_after_flush: bool,
}

impl Conn {
    fn nearest_deadline(&self) -> Option<Instant> {
        match (self.read_deadline, self.write_deadline) {
            (Some(r), Some(w)) => Some(r.min(w)),
            (r, w) => r.or(w),
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }
}

fn token_of(slot: usize, gen: u64) -> u64 {
    (gen << 32) | slot as u64
}

fn token_parts(token: u64) -> (usize, u64) {
    ((token & 0xffff_ffff) as usize, token >> 32)
}

enum SweepVerdict {
    Keep,
    Close,
}

/// Per-shard sweep state: the connection table, its slot generations
/// (stale-token guard), the deadline wheel and the shared gauge.
struct ShardState {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    gens: Vec<u64>,
    wheel: TimerWheel,
    gauge: Arc<Gauge>,
}

impl ShardState {
    fn new(gauge: Arc<Gauge>, now: Instant) -> ShardState {
        ShardState {
            conns: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            wheel: TimerWheel::new(WHEEL_SLOT, WHEEL_SLOTS, now),
            gauge,
        }
    }

    fn adopt(
        &mut self,
        stream: TcpStream,
        handler: Box<dyn EventHandler>,
        now: Instant,
        read_timeout: Option<Duration>,
        stats: &ServerStats,
        open: &AtomicUsize,
    ) {
        if stream.set_nonblocking(true).is_err() {
            open.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        if self.gens.len() <= slot {
            self.gens.resize(slot + 1, 0);
        }
        self.gens[slot] += 1;
        self.conns[slot] = Some(Conn {
            stream,
            handler,
            out: Vec::new(),
            out_pos: 0,
            pending_out: 0,
            read_deadline: read_timeout.map(|t| now + t),
            write_deadline: None,
            gen: self.gens[slot],
            scheduled: false,
            close_after_flush: false,
        });
        self.ensure_scheduled(slot);
        stats.conn_started();
        self.gauge.inc();
    }

    /// Park the connection's nearest deadline in the wheel if it is not
    /// already parked (lazy refresh: at most one live entry per conn).
    fn ensure_scheduled(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].as_mut() {
            if !conn.scheduled {
                if let Some(deadline) = conn.nearest_deadline() {
                    self.wheel.schedule(token_of(slot, conn.gen), deadline);
                    conn.scheduled = true;
                }
            }
        }
    }

    fn close(&mut self, slot: usize, stats: &ServerStats, open: &AtomicUsize) {
        if self.conns[slot].take().is_some() {
            self.free.push(slot);
            stats.conn_finished();
            self.gauge.dec();
            open.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn open_count(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }
}

fn shard_loop(
    shard: &Shard,
    stats: &ServerStats,
    factory: &Arc<HandlerFactory>,
    open: &AtomicUsize,
    (read_timeout, write_timeout): (Option<Duration>, Option<Duration>),
) {
    let gauge = MetricsRegistry::global().gauge("openmeta_eventloop_connections");
    let mut state = ShardState::new(gauge, clock::now());
    let mut scratch = vec![0u8; SWEEP_READ_BUDGET];
    let mut expired: Vec<u64> = Vec::new();
    let mut draining = false;
    loop {
        // Adopt newly registered connections and pick up drain flags.
        let (force, adopted) = {
            let mut inbox = sync::lock(&shard.inbox);
            draining = draining || inbox.draining;
            let force = inbox.force_close;
            let incoming = std::mem::take(&mut inbox.incoming);
            drop(inbox);
            let adopted = !incoming.is_empty();
            let now = clock::now();
            for stream in incoming {
                state.adopt(stream, factory(), now, read_timeout, stats, open);
            }
            (force, adopted)
        };
        if force {
            for slot in 0..state.conns.len() {
                state.close(slot, stats, open);
            }
            return;
        }

        let mut progressed = adopted;
        if state.open_count() > 0 {
            let poll_span = span!("eventloop.poll");
            for slot in 0..state.conns.len() {
                let verdict = {
                    let ShardState { conns, wheel, .. } = &mut state;
                    let Some(conn) = conns[slot].as_mut() else { continue };
                    let token = token_of(slot, conn.gen);
                    sweep_conn(
                        conn,
                        wheel,
                        token,
                        &mut scratch,
                        stats,
                        draining,
                        write_timeout,
                        read_timeout,
                        &mut progressed,
                    )
                };
                if matches!(verdict, SweepVerdict::Close) {
                    state.close(slot, stats, open);
                }
            }
            drop(poll_span);

            // Deadline sweep: validate lazy tokens against live state.
            let now = clock::now();
            expired.clear();
            state.wheel.expired(now, &mut expired);
            for &token in &expired {
                let (slot, gen) = token_parts(token);
                // 0 = stale, 1 = reschedule, 2 = expire (not timed_out),
                // 3 = expire and count timed_out.
                let action = match state.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                    Some(conn) if conn.gen == gen => {
                        conn.scheduled = false;
                        match conn.nearest_deadline() {
                            Some(d) if d <= now => {
                                // Write stalls always count; read expiries
                                // defer to the protocol's idle semantics.
                                if conn.write_deadline.is_some_and(|w| w <= now)
                                    || conn.handler.deadline_counts_as_timeout()
                                {
                                    3
                                } else {
                                    2
                                }
                            }
                            Some(_) => 1,
                            None => 0,
                        }
                    }
                    _ => 0,
                };
                match action {
                    1 => state.ensure_scheduled(slot),
                    2 | 3 => {
                        if action == 3 {
                            stats.timed_out();
                        }
                        state.close(slot, stats, open);
                    }
                    _ => {}
                }
            }
        }

        if draining && state.open_count() == 0 {
            // Exit only if nothing is waiting to be adopted; register()
            // rejects once draining, so the inbox can only shrink.
            let inbox = sync::lock(&shard.inbox);
            if inbox.incoming.is_empty() {
                return;
            }
            continue;
        }

        if !progressed {
            let park = if state.open_count() == 0 { PARK_EMPTY } else { PARK_BUSY };
            let inbox = sync::lock(&shard.inbox);
            let work_waiting =
                !inbox.incoming.is_empty() || inbox.force_close || (inbox.draining && !draining);
            if !work_waiting {
                let _ = sync::wait_timeout(&shard.wake, inbox, park);
            }
        }
    }
}

/// Advance one connection's state machine by one sweep step.
#[allow(clippy::too_many_arguments)]
fn sweep_conn(
    conn: &mut Conn,
    wheel: &mut TimerWheel,
    token: u64,
    scratch: &mut [u8],
    stats: &ServerStats,
    draining: bool,
    write_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    progressed: &mut bool,
) -> SweepVerdict {
    // [writing]: flush queued output while the kernel accepts it.
    if !conn.flushed() {
        match flush_out(conn, stats) {
            Ok(true) => *progressed = true,
            Ok(false) => {}
            Err(_) => return SweepVerdict::Close,
        }
    }
    if conn.close_after_flush && conn.flushed() {
        return SweepVerdict::Close;
    }

    // [reading]: a draining loop stops consuming new requests, and a
    // connection waiting to close only flushes.
    if draining || conn.close_after_flush {
        if draining && conn.flushed() {
            return SweepVerdict::Close;
        }
        return SweepVerdict::Keep;
    }

    let mut consumed = 0usize;
    while consumed < SWEEP_READ_BUDGET {
        match nio::read_ready(&mut conn.stream, scratch) {
            Ok(ReadOutcome::NotReady) => break,
            Ok(ReadOutcome::Eof) => {
                // Peer closed: mirror the threaded worker, which returns
                // (and closes) on EOF without writing further.
                return SweepVerdict::Close;
            }
            Ok(ReadOutcome::Bytes(n)) => {
                *progressed = true;
                consumed += n;
                let now = clock::now();
                conn.read_deadline = read_timeout.map(|t| now + t);
                let had_out = !conn.flushed();
                let dispatch = {
                    let _span = span!("eventloop.dispatch");
                    conn.handler.on_bytes(&scratch[..n], &mut conn.out)
                };
                match dispatch {
                    Ok(d) => {
                        for _ in 0..d.requests {
                            stats.frame_in();
                        }
                        conn.pending_out += d.requests;
                        if d.close {
                            conn.close_after_flush = true;
                        }
                        if !had_out && !conn.flushed() {
                            // The queue just went empty → non-empty: anchor
                            // the write deadline here.  flush_out never
                            // refreshes it, so it bounds the total drain
                            // time of this burst of queued output.
                            conn.write_deadline = write_timeout.map(|t| now + t);
                            // Flush eagerly: the common case is a response
                            // that fits the socket's send buffer whole.
                            if flush_out(conn, stats).is_err() {
                                return SweepVerdict::Close;
                            }
                            *progressed = true;
                            // Queued output survived the eager flush: park
                            // the anchored deadline now — the entry from
                            // adopt time may be scheduled much later.
                            if let Some(w) = conn.write_deadline {
                                wheel.schedule(token, w);
                                conn.scheduled = true;
                            }
                        }
                        if conn.close_after_flush {
                            if conn.flushed() {
                                return SweepVerdict::Close;
                            }
                            break;
                        }
                    }
                    Err(_) => return SweepVerdict::Close,
                }
            }
            Err(_) => return SweepVerdict::Close,
        }
    }
    SweepVerdict::Keep
}

/// Push queued output at the socket; returns whether bytes moved.
/// Partial progress deliberately does NOT refresh the write deadline:
/// it stays anchored where the queue went non-empty, so a peer draining
/// one segment per timeout window still expires.
fn flush_out(conn: &mut Conn, stats: &ServerStats) -> io::Result<bool> {
    let mut moved = false;
    while !conn.flushed() {
        match nio::write_ready(&mut conn.stream, &conn.out[conn.out_pos..])? {
            WriteOutcome::Wrote(0) => {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"));
            }
            WriteOutcome::Wrote(n) => {
                moved = true;
                conn.out_pos += n;
            }
            WriteOutcome::NotReady => break,
        }
    }
    if conn.flushed() {
        for _ in 0..conn.pending_out {
            stats.frame_out();
        }
        conn.pending_out = 0;
        conn.out.clear();
        conn.out_pos = 0;
        conn.write_deadline = None;
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;
    use std::time::Duration;

    /// Echo handler framed as `len:u32be payload` via the sans-io framer.
    struct Echo {
        framer: crate::sansio::LengthFramer,
    }

    impl Echo {
        fn boxed() -> Box<dyn EventHandler> {
            Box::new(Echo { framer: crate::sansio::LengthFramer::new(1 << 20) })
        }
    }

    impl EventHandler for Echo {
        fn on_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> io::Result<Dispatch> {
            self.framer.push(bytes);
            let mut d = Dispatch::default();
            while let Some((_, payload)) = self.framer.next_frame()? {
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(&payload);
                d.requests += 1;
            }
            Ok(d)
        }

        fn deadline_counts_as_timeout(&self) -> bool {
            !self.framer.is_empty()
        }
    }

    fn echo_loop(cfg: &ServerConfig, stats: ServerStats) -> (EventLoop, TcpListener) {
        let el = EventLoop::start("test", cfg, stats, Arc::new(|| Echo::boxed()));
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        (el, listener)
    }

    fn connect_registered(el: &EventLoop, listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        assert!(el.register(server));
        client
    }

    fn round_trip(client: &mut TcpStream, payload: &[u8]) -> Vec<u8> {
        let mut msg = (payload.len() as u32).to_be_bytes().to_vec();
        msg.extend_from_slice(payload);
        client.write_all(&msg).unwrap();
        let mut len = [0u8; 4];
        client.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
        client.read_exact(&mut body).unwrap();
        body
    }

    #[test]
    fn echoes_frames_across_many_keepalive_connections() {
        let stats = ServerStats::new();
        let cfg =
            ServerConfig { max_connections: 64, event_loop_shards: 2, ..ServerConfig::default() };
        let (el, listener) = echo_loop(&cfg, stats.clone());
        let mut clients: Vec<TcpStream> =
            (0..8).map(|_| connect_registered(&el, &listener)).collect();
        for round in 0..3u8 {
            for (i, c) in clients.iter_mut().enumerate() {
                c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                let payload = vec![round ^ i as u8; 64 + i];
                assert_eq!(round_trip(c, &payload), payload);
            }
        }
        // frames_out increments after the kernel accepts the bytes, so a
        // client can observe a response a beat before the counter moves.
        let start = std::time::Instant::now();
        while stats.snapshot().frames_out < 24 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.frames_in, 24);
        assert_eq!(snap.frames_out, 24);
        assert!(el.shutdown(Duration::from_secs(5)));
        assert_eq!(stats.snapshot().active, 0);
    }

    #[test]
    fn rejects_beyond_max_connections() {
        let stats = ServerStats::new();
        let cfg =
            ServerConfig { max_connections: 2, event_loop_shards: 1, ..ServerConfig::default() };
        let (el, listener) = echo_loop(&cfg, stats.clone());
        let _a = connect_registered(&el, &listener);
        let _b = connect_registered(&el, &listener);
        let addr = listener.local_addr().unwrap();
        let _c = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        assert!(!el.register(server), "third connection must be rejected");
        assert_eq!(stats.snapshot().rejected, 1);
        drop(el);
    }

    #[test]
    fn read_deadline_times_out_midframe_connection() {
        let stats = ServerStats::new();
        let cfg = ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            event_loop_shards: 1,
            ..ServerConfig::default()
        };
        let (el, listener) = echo_loop(&cfg, stats.clone());
        let mut client = connect_registered(&el, &listener);
        // Send a header promising 100 bytes, then stall.
        client.write_all(&100u32.to_be_bytes()).unwrap();
        let start = std::time::Instant::now();
        let mut deadline_hit = false;
        while start.elapsed() < Duration::from_secs(5) {
            if stats.snapshot().timed_out >= 1 {
                deadline_hit = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(deadline_hit, "stalled mid-frame connection must time out");
        // The loop closed the socket: the client sees EOF.
        client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(client.read(&mut buf).unwrap_or(0), 0);
        drop(el);
    }

    #[test]
    fn write_deadline_expires_while_queue_drains_slowly() {
        // Regression: a reader that trickles one small read per sweep
        // keeps the flush making *partial* progress.  The old refresh-on
        // -progress deadline slid forever; the anchored deadline must
        // expire and count `timed_out` even though bytes keep moving.
        let stats = ServerStats::new();
        let cfg = ServerConfig {
            write_timeout: Some(Duration::from_millis(300)),
            read_timeout: Some(Duration::from_secs(30)),
            event_loop_shards: 1,
            max_connections: 8,
            ..ServerConfig::default()
        };
        let (el, listener) = echo_loop(&cfg, stats.clone());
        let client = connect_registered(&el, &listener);

        // Trickle reader: drains ~8 KiB every 25 ms, so the server's
        // flush sees fresh socket-buffer space (partial progress) in
        // every deadline window without ever catching up to 16 MiB.
        let reader = client.try_clone().unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_r = stop.clone();
        let trickle = std::thread::spawn(move || {
            let mut reader = reader;
            let mut buf = vec![0u8; 8 * 1024];
            reader.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
            let mut drained = 0usize;
            while !stop_r.load(Ordering::Acquire) {
                match std::io::Read::read(&mut reader, &mut buf) {
                    Ok(0) => break,
                    Ok(n) => drained += n,
                    Err(_) => {}
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            drained
        });

        // Queue ~16 MiB of echo responses: far beyond what the kernel's
        // loopback buffers can absorb, so the userspace queue stays
        // non-empty.  Writes may fail once the deadline kills the
        // connection mid-burst; that is the success case.
        let mut writer = client;
        let payload = vec![0x5au8; 1 << 20];
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&payload);
        for _ in 0..16 {
            if writer.write_all(&frame).is_err() {
                break;
            }
        }

        let start = std::time::Instant::now();
        while stats.snapshot().timed_out == 0 && start.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Release);
        let drained = trickle.join().unwrap();
        assert_eq!(
            stats.snapshot().timed_out,
            1,
            "anchored write deadline must expire despite partial progress \
             (client drained {drained} bytes)"
        );
        drop(el);
    }

    #[test]
    fn drain_flushes_then_closes() {
        let stats = ServerStats::new();
        let cfg =
            ServerConfig { event_loop_shards: 1, max_connections: 8, ..ServerConfig::default() };
        let (el, listener) = echo_loop(&cfg, stats.clone());
        let mut client = connect_registered(&el, &listener);
        client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(round_trip(&mut client, b"before-drain"), b"before-drain");
        let start = std::time::Instant::now();
        assert!(el.shutdown(Duration::from_secs(5)), "idle connection must drain promptly");
        assert!(start.elapsed() < Duration::from_secs(2), "drain took {:?}", start.elapsed());
        let mut buf = [0u8; 1];
        assert_eq!(client.read(&mut buf).unwrap_or(0), 0, "drained conn must be closed");
    }

    #[test]
    fn handler_error_closes_connection() {
        let stats = ServerStats::new();
        let cfg =
            ServerConfig { event_loop_shards: 1, max_connections: 8, ..ServerConfig::default() };
        let (el, listener) = echo_loop(&cfg, stats.clone());
        let mut client = connect_registered(&el, &listener);
        // Oversized length prefix: the framer (handler) errors out.
        client.write_all(&u32::MAX.to_be_bytes()).unwrap();
        client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(client.read(&mut buf).unwrap_or(0), 0, "protocol error must close");
        drop(el);
    }
}
