//! Nonblocking socket readiness helpers.
//!
//! The event loop never issues a blocking `read`/`write` on a
//! connection socket — `cargo xtask analyze` enforces that for the
//! `event_loop` module.  Instead every socket is switched to
//! nonblocking mode and all I/O funnels through the two helpers here,
//! which translate the `WouldBlock`/`Interrupted` dance into explicit
//! readiness outcomes the per-connection state machine can act on.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Outcome of a readiness-probe read.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were read into the scratch buffer.
    Bytes(usize),
    /// The peer closed its write half (clean EOF).
    Eof,
    /// No bytes available right now; try again on the next sweep.
    NotReady,
}

/// Outcome of a readiness-probe write.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// `n` bytes were accepted by the kernel.
    Wrote(usize),
    /// The socket's send buffer is full; retry on the next sweep.
    NotReady,
}

/// Try to read once from a nonblocking stream into `scratch`.
///
/// `Interrupted` is retried inline; `WouldBlock` maps to
/// [`ReadOutcome::NotReady`]; every other error propagates (the caller
/// closes the connection).
pub fn read_ready(stream: &mut TcpStream, scratch: &mut [u8]) -> io::Result<ReadOutcome> {
    loop {
        match stream.read(scratch) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(n) => return Ok(ReadOutcome::Bytes(n)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadOutcome::NotReady),
            Err(e) => return Err(e),
        }
    }
}

/// Try to write once to a nonblocking stream.
///
/// Partial writes are normal — the caller advances its output cursor by
/// the returned count and retries the remainder on a later sweep.
pub fn write_ready(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<WriteOutcome> {
    loop {
        match stream.write(bytes) {
            Ok(n) => return Ok(WriteOutcome::Wrote(n)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(WriteOutcome::NotReady),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn read_reports_not_ready_then_bytes_then_eof() {
        let (client, mut server) = pair();
        server.set_nonblocking(true).unwrap();
        let mut scratch = [0u8; 64];
        assert_eq!(read_ready(&mut server, &mut scratch).unwrap(), ReadOutcome::NotReady);
        {
            use std::io::Write as _;
            let mut c = &client;
            c.write_all(b"ping").unwrap();
        }
        // The bytes may take a beat to land in the receive buffer.
        let mut got = ReadOutcome::NotReady;
        for _ in 0..200 {
            got = read_ready(&mut server, &mut scratch).unwrap();
            if got != ReadOutcome::NotReady {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, ReadOutcome::Bytes(4));
        assert_eq!(&scratch[..4], b"ping");
        drop(client);
        let mut got = ReadOutcome::NotReady;
        for _ in 0..200 {
            got = read_ready(&mut server, &mut scratch).unwrap();
            if got != ReadOutcome::NotReady {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, ReadOutcome::Eof);
    }

    #[test]
    fn write_eventually_hits_not_ready_against_a_stalled_reader() {
        let (client, mut server) = pair();
        server.set_nonblocking(true).unwrap();
        let chunk = [0u8; 64 * 1024];
        let mut stalled = false;
        for _ in 0..10_000 {
            match write_ready(&mut server, &chunk).unwrap() {
                WriteOutcome::Wrote(_) => {}
                WriteOutcome::NotReady => {
                    stalled = true;
                    break;
                }
            }
        }
        assert!(stalled, "send buffer never filled against an unread peer");
        drop(client);
    }
}
