//! A bounded worker pool for connection serving.
//!
//! Replaces detached thread-per-connection spawns: a fixed set of worker
//! threads pulls accepted connections off a capped queue, so a connection
//! flood costs rejected connects, not unbounded thread stacks.  Shutdown
//! is graceful — in-flight connections are drained (workers finish what
//! they are serving) within a configurable budget before any straggler is
//! detached.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::ServerConfig;
use crate::stats::ServerStats;

struct Shared {
    queue: Mutex<State>,
    /// Signals workers that work (or shutdown) is available.
    work: Condvar,
    /// Signals the shutdown waiter that the pool may have drained.
    drained: Condvar,
    accept_queue: usize,
    max_connections: usize,
    stats: ServerStats,
}

struct State {
    pending: VecDeque<TcpStream>,
    active: usize,
    shutting_down: bool,
}

/// A fixed-size pool of connection-serving workers with a bounded intake
/// queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `cfg.workers` threads, each running `handler` on streams
    /// submitted via [`WorkerPool::submit`].  `stats` receives the
    /// active-connection gauge updates.
    pub fn new(
        name: &str,
        cfg: &ServerConfig,
        stats: ServerStats,
        handler: impl Fn(TcpStream) + Send + Sync + 'static,
    ) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { pending: VecDeque::new(), active: 0, shutting_down: false }),
            work: Condvar::new(),
            drained: Condvar::new(),
            accept_queue: cfg.accept_queue,
            max_connections: cfg.max_connections.max(1),
            stats,
        });
        let handler = Arc::new(handler);
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &*handler))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers: Mutex::new(workers) }
    }

    /// Hand an accepted connection to the pool.  Returns `false` (and
    /// counts a rejection) when the accept queue or the max-connections
    /// bound is full, or the pool is shutting down; the caller should
    /// drop the stream.
    pub fn submit(&self, stream: TcpStream) -> bool {
        let mut state = self.shared.queue.lock().unwrap();
        let in_flight = state.pending.len() + state.active;
        if state.shutting_down
            || state.pending.len() >= self.shared.accept_queue
            || in_flight >= self.shared.max_connections
        {
            self.shared.stats.rejected();
            return false;
        }
        state.pending.push_back(stream);
        drop(state);
        self.shared.work.notify_one();
        true
    }

    /// Connections queued but not yet picked up by a worker.
    pub fn queued_now(&self) -> usize {
        self.shared.queue.lock().unwrap().pending.len()
    }

    /// Graceful shutdown: stop admitting work, let workers finish their
    /// in-flight connections, and drop anything still queued.  Returns
    /// `true` if everything drained inside `budget`; on `false` the
    /// stragglers are detached (their threads keep running to completion,
    /// but the pool no longer waits for them).
    pub fn shutdown(&self, budget: Duration) -> bool {
        let deadline = Instant::now() + budget;
        {
            let mut state = self.shared.queue.lock().unwrap();
            state.shutting_down = true;
            // Queued-but-unserved connections are dropped, not served: the
            // server is going away and its state may already be stale.
            for _ in state.pending.drain(..) {
                self.shared.stats.rejected();
            }
            self.shared.work.notify_all();
            while state.active > 0 {
                let now = Instant::now();
                if now >= deadline {
                    return false;
                }
                let (next, timeout) =
                    self.shared.drained.wait_timeout(state, deadline - now).unwrap();
                state = next;
                if timeout.timed_out() && state.active > 0 {
                    return false;
                }
            }
        }
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
        true
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if !self.workers.get_mut().unwrap().is_empty() {
            self.shutdown(Duration::from_secs(5));
        }
    }
}

/// Tracks the connections workers are currently serving so graceful
/// shutdown can abort their *reads* without clobbering in-flight writes.
///
/// A worker blocked waiting for a peer's next request is "idle in-flight":
/// draining must not wait a full read-deadline for it.  Shutting down the
/// read half makes that blocked read return EOF immediately, while a
/// worker mid-reply keeps its write half and finishes cleanly.
#[derive(Default)]
pub struct ConnTracker {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnTracker {
    /// A fresh tracker.
    pub fn new() -> ConnTracker {
        ConnTracker::default()
    }

    /// Register a connection a worker is about to serve; returns a token
    /// for [`ConnTracker::unregister`].  Streams that cannot be cloned
    /// are simply not tracked.
    pub fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().unwrap().insert(id, clone);
        }
        id
    }

    /// Drop the tracking handle for a finished connection.
    pub fn unregister(&self, id: u64) {
        self.conns.lock().unwrap().remove(&id);
    }

    /// Shut down the read half of every tracked connection, unblocking
    /// workers parked in a read while leaving replies writable.
    pub fn shutdown_reads(&self) {
        for stream in self.conns.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

fn worker_loop(shared: &Shared, handler: &(dyn Fn(TcpStream) + Send + Sync)) {
    loop {
        let stream = {
            let mut state = shared.queue.lock().unwrap();
            loop {
                if let Some(stream) = state.pending.pop_front() {
                    state.active += 1;
                    break stream;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        shared.stats.conn_started();
        handler(stream);
        shared.stats.conn_finished();
        let mut state = shared.queue.lock().unwrap();
        state.active -= 1;
        let drained = state.active == 0 && state.pending.is_empty();
        drop(state);
        if drained {
            shared.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn cfg(workers: usize, queue: usize, max: usize) -> ServerConfig {
        ServerConfig {
            workers,
            accept_queue: queue,
            max_connections: max,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn handles_submitted_connections() {
        let served = Arc::new(AtomicUsize::new(0));
        let served2 = served.clone();
        let pool = WorkerPool::new("t", &cfg(2, 8, 16), ServerStats::new(), move |mut s| {
            let mut b = [0u8; 1];
            let _ = s.read_exact(&mut b);
            served2.fetch_add(1, Ordering::SeqCst);
        });
        let mut clients = Vec::new();
        for _ in 0..4 {
            let (mut client, server) = pair();
            assert!(pool.submit(server));
            client.write_all(b"x").unwrap();
            clients.push(client);
        }
        // Shutdown drops queued-but-unserved connections by design, so
        // wait for the pool to work through the queue first.
        let start = Instant::now();
        while served.load(Ordering::SeqCst) < 4 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.shutdown(Duration::from_secs(5)));
        assert_eq!(served.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn rejects_beyond_bounds() {
        let stats = ServerStats::new();
        // One worker that blocks until its client writes; queue of one.
        let pool = WorkerPool::new("t", &cfg(1, 1, 2), stats.clone(), |mut s| {
            let mut b = [0u8; 1];
            let _ = s.read_exact(&mut b);
        });
        let (busy_client, busy_server) = pair();
        assert!(pool.submit(busy_server));
        // Wait for the worker to pick it up so the queue is empty again.
        let start = Instant::now();
        while stats.active_now() == 0 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let (_q_client, q_server) = pair();
        assert!(pool.submit(q_server), "queue slot should admit one more");
        let (_r_client, r_server) = pair();
        assert!(!pool.submit(r_server), "bound exceeded must reject");
        assert_eq!(stats.snapshot().rejected, 1);
        drop(busy_client);
        drop(pool);
    }

    #[test]
    fn shutdown_drains_in_flight() {
        let pool = WorkerPool::new("t", &cfg(1, 4, 8), ServerStats::new(), |mut s| {
            // Simulate a request in flight: finish after the client's byte.
            let mut b = [0u8; 1];
            let _ = s.read_exact(&mut b);
            let _ = s.write_all(b"done");
        });
        let (mut client, server) = pair();
        assert!(pool.submit(server));
        let waiter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            client.write_all(b"x").unwrap();
            let mut out = Vec::new();
            client.read_to_end(&mut out).unwrap();
            out
        });
        assert!(pool.shutdown(Duration::from_secs(5)), "in-flight work must drain");
        assert_eq!(waiter.join().unwrap(), b"done");
    }

    #[test]
    fn shutdown_gives_up_on_stuck_workers() {
        let hold = Arc::new(Mutex::new(()));
        let guard = hold.lock().unwrap();
        let hold2 = hold.clone();
        let pool = WorkerPool::new("t", &cfg(1, 4, 8), ServerStats::new(), move |_s| {
            let _g = hold2.lock().unwrap();
        });
        let (_client, server) = pair();
        assert!(pool.submit(server));
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        assert!(!pool.shutdown(Duration::from_millis(200)), "stuck worker cannot drain");
        assert!(start.elapsed() < Duration::from_secs(2), "budget must bound the wait");
        drop(guard);
    }
}
