//! A bounded worker pool for connection serving.
//!
//! Replaces detached thread-per-connection spawns: a fixed set of worker
//! threads pulls accepted connections off a capped queue, so a connection
//! flood costs rejected connects, not unbounded thread stacks.  Shutdown
//! is graceful — in-flight connections are drained (workers finish what
//! they are serving) within a configurable budget before any straggler is
//! detached.
//!
//! The pool is generic over its work item (servers submit accepted
//! [`TcpStream`]s, the default; model tests submit plain values), and all
//! locking goes through [`crate::sync`] so `cargo xtask loom` can explore
//! the admission/drain interleavings under loom's primitives.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use openmeta_obs::clock;

use crate::config::ServerConfig;
use crate::stats::ServerStats;
use crate::sync::{self, Condvar, Mutex};

#[cfg(loom)]
use loom::sync::{atomic::AtomicU64, atomic::Ordering, Arc};
#[cfg(not(loom))]
use std::sync::{atomic::AtomicU64, atomic::Ordering, Arc};

struct Shared<T> {
    queue: Mutex<State<T>>,
    /// Signals workers that work (or shutdown) is available.
    work: Condvar,
    /// Signals the shutdown waiter that the pool may have drained.
    drained: Condvar,
    accept_queue: usize,
    max_connections: usize,
    stats: ServerStats,
}

struct State<T> {
    pending: VecDeque<T>,
    active: usize,
    shutting_down: bool,
}

/// A fixed-size pool of workers with a bounded intake queue, serving
/// items of type `T` (accepted connections, by default).
pub struct WorkerPool<T: Send + 'static = TcpStream> {
    shared: Arc<Shared<T>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Spawn one worker thread; named outside loom, anonymous under it
/// (loom's spawn API carries no thread builder).  Shared with the
/// event-loop backend's shard threads.
pub(crate) fn spawn_worker(label: String, body: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    #[cfg(loom)]
    {
        let _ = label;
        loom::thread::spawn(body)
    }
    #[cfg(not(loom))]
    {
        // OS thread spawn only fails on resource exhaustion at startup;
        // a pool that cannot staff itself cannot serve at all.
        std::thread::Builder::new().name(label).spawn(body).expect("spawn worker thread")
    }
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `cfg.workers` threads, each running `handler` on items
    /// submitted via [`WorkerPool::submit`].  `stats` receives the
    /// active-connection gauge updates.
    pub fn new(
        name: &str,
        cfg: &ServerConfig,
        stats: ServerStats,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> WorkerPool<T> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { pending: VecDeque::new(), active: 0, shutting_down: false }),
            work: Condvar::new(),
            drained: Condvar::new(),
            accept_queue: cfg.accept_queue,
            max_connections: cfg.max_connections.max(1),
            stats,
        });
        let handler = Arc::new(handler);
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let handler = handler.clone();
                spawn_worker(format!("{name}-worker-{i}"), move || worker_loop(&shared, &*handler))
            })
            .collect();
        WorkerPool { shared, workers: Mutex::new(workers) }
    }

    /// Hand a work item to the pool.  Returns `false` (and counts a
    /// rejection) when the accept queue or the max-connections bound is
    /// full, or the pool is shutting down; the caller should drop the
    /// item.
    pub fn submit(&self, item: T) -> bool {
        let mut state = sync::lock(&self.shared.queue);
        let in_flight = state.pending.len() + state.active;
        if state.shutting_down
            || state.pending.len() >= self.shared.accept_queue
            || in_flight >= self.shared.max_connections
        {
            self.shared.stats.rejected();
            return false;
        }
        state.pending.push_back(item);
        drop(state);
        self.shared.work.notify_one();
        true
    }

    /// Items queued but not yet picked up by a worker.
    pub fn queued_now(&self) -> usize {
        sync::lock(&self.shared.queue).pending.len()
    }

    /// Graceful shutdown: stop admitting work, let workers finish their
    /// in-flight items, and drop anything still queued.  Returns `true`
    /// if everything drained inside `budget`; on `false` the stragglers
    /// are detached (their threads keep running to completion, but the
    /// pool no longer waits for them).
    pub fn shutdown(&self, budget: Duration) -> bool {
        let deadline = clock::now() + budget;
        {
            let mut state = sync::lock(&self.shared.queue);
            state.shutting_down = true;
            // Queued-but-unserved items are dropped, not served: the
            // server is going away and its state may already be stale.
            for _ in state.pending.drain(..) {
                self.shared.stats.rejected();
            }
            self.shared.work.notify_all();
            while state.active > 0 {
                let now = clock::now();
                if now >= deadline {
                    return false;
                }
                let (next, timed_out) =
                    sync::wait_timeout(&self.shared.drained, state, deadline - now);
                state = next;
                if timed_out && state.active > 0 {
                    return false;
                }
            }
        }
        for w in sync::lock(&self.workers).drain(..) {
            let _ = w.join();
        }
        true
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        if !sync::get_mut(&mut self.workers).is_empty() {
            self.shutdown(Duration::from_secs(5));
        }
    }
}

/// Tracks the connections workers are currently serving so graceful
/// shutdown can abort their *reads* without clobbering in-flight writes.
///
/// A worker blocked waiting for a peer's next request is "idle in-flight":
/// draining must not wait a full read-deadline for it.  Shutting down the
/// read half makes that blocked read return EOF immediately, while a
/// worker mid-reply keeps its write half and finishes cleanly.
#[derive(Default)]
pub struct ConnTracker {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnTracker {
    /// A fresh tracker.
    pub fn new() -> ConnTracker {
        ConnTracker::default()
    }

    /// Register a connection a worker is about to serve; returns a token
    /// for [`ConnTracker::unregister`].  Streams that cannot be cloned
    /// are simply not tracked.
    pub fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            sync::lock(&self.conns).insert(id, clone);
        }
        id
    }

    /// Drop the tracking handle for a finished connection.
    pub fn unregister(&self, id: u64) {
        sync::lock(&self.conns).remove(&id);
    }

    /// Shut down the read half of every tracked connection, unblocking
    /// workers parked in a read while leaving replies writable.
    pub fn shutdown_reads(&self) {
        for stream in sync::lock(&self.conns).values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

fn worker_loop<T>(shared: &Shared<T>, handler: &(dyn Fn(T) + Send + Sync)) {
    loop {
        let item = {
            let mut state = sync::lock(&shared.queue);
            loop {
                if let Some(item) = state.pending.pop_front() {
                    state.active += 1;
                    break item;
                }
                if state.shutting_down {
                    return;
                }
                state = sync::wait(&shared.work, state);
            }
        };
        shared.stats.conn_started();
        handler(item);
        shared.stats.conn_finished();
        let mut state = sync::lock(&shared.queue);
        state.active -= 1;
        let drained = state.active == 0 && state.pending.is_empty();
        drop(state);
        if drained {
            shared.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn cfg(workers: usize, queue: usize, max: usize) -> ServerConfig {
        ServerConfig {
            workers,
            accept_queue: queue,
            max_connections: max,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn handles_submitted_connections() {
        let served = Arc::new(AtomicUsize::new(0));
        let served2 = served.clone();
        let pool =
            WorkerPool::new("t", &cfg(2, 8, 16), ServerStats::new(), move |mut s: TcpStream| {
                let mut b = [0u8; 1];
                let _ = s.read_exact(&mut b);
                served2.fetch_add(1, Ordering::SeqCst);
            });
        let mut clients = Vec::new();
        for _ in 0..4 {
            let (mut client, server) = pair();
            assert!(pool.submit(server));
            client.write_all(b"x").unwrap();
            clients.push(client);
        }
        // Shutdown drops queued-but-unserved connections by design, so
        // wait for the pool to work through the queue first.
        let start = Instant::now();
        while served.load(Ordering::SeqCst) < 4 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.shutdown(Duration::from_secs(5)));
        assert_eq!(served.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn rejects_beyond_bounds() {
        let stats = ServerStats::new();
        // One worker that blocks until its client writes; queue of one.
        let pool = WorkerPool::new("t", &cfg(1, 1, 2), stats.clone(), |mut s: TcpStream| {
            let mut b = [0u8; 1];
            let _ = s.read_exact(&mut b);
        });
        let (busy_client, busy_server) = pair();
        assert!(pool.submit(busy_server));
        // Wait for the worker to pick it up so the queue is empty again.
        let start = Instant::now();
        while stats.active_now() == 0 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let (_q_client, q_server) = pair();
        assert!(pool.submit(q_server), "queue slot should admit one more");
        let (_r_client, r_server) = pair();
        assert!(!pool.submit(r_server), "bound exceeded must reject");
        assert_eq!(stats.snapshot().rejected, 1);
        drop(busy_client);
        drop(pool);
    }

    #[test]
    fn generic_work_items_are_served() {
        let sum = Arc::new(AtomicUsize::new(0));
        let sum2 = sum.clone();
        let pool = WorkerPool::new("t", &cfg(2, 16, 32), ServerStats::new(), move |n: usize| {
            sum2.fetch_add(n, Ordering::SeqCst);
        });
        for n in 1..=10 {
            assert!(pool.submit(n));
        }
        let start = Instant::now();
        while sum.load(Ordering::SeqCst) < 55 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.shutdown(Duration::from_secs(5)));
        assert_eq!(sum.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn shutdown_drains_in_flight() {
        let stats = ServerStats::new();
        let pool = WorkerPool::new("t", &cfg(1, 4, 8), stats.clone(), |mut s: TcpStream| {
            // Simulate a request in flight: finish after the client's byte.
            let mut b = [0u8; 1];
            let _ = s.read_exact(&mut b);
            let _ = s.write_all(b"done");
        });
        let (mut client, server) = pair();
        assert!(pool.submit(server));
        // Shutdown drops queued-but-unserved items by design, so wait for
        // the worker to pick this one up before draining — otherwise it is
        // merely queued, not in flight.
        let start = Instant::now();
        while stats.active_now() == 0 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let waiter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            client.write_all(b"x").unwrap();
            let mut out = Vec::new();
            client.read_to_end(&mut out).unwrap();
            out
        });
        assert!(pool.shutdown(Duration::from_secs(5)), "in-flight work must drain");
        assert_eq!(waiter.join().unwrap(), b"done");
    }

    #[test]
    fn shutdown_gives_up_on_stuck_workers() {
        let hold = Arc::new(std::sync::Mutex::new(()));
        let guard = hold.lock().unwrap();
        let hold2 = hold.clone();
        let pool = WorkerPool::new("t", &cfg(1, 4, 8), ServerStats::new(), move |_s: TcpStream| {
            let _g = hold2.lock().unwrap();
        });
        let (_client, server) = pair();
        assert!(pool.submit(server));
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        assert!(!pool.shutdown(Duration::from_millis(200)), "stuck worker cannot drain");
        assert!(start.elapsed() < Duration::from_secs(2), "budget must bound the wait");
        drop(guard);
    }
}

/// Model tests: `RUSTFLAGS="--cfg loom" cargo test -p openmeta-net`
/// (driven by `cargo xtask loom`).  Each closure runs under
/// `loom::model`, which explores thread interleavings around the pool's
/// admission, drain and tracker-shutdown edges.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(workers: usize, queue: usize, max: usize) -> ServerConfig {
        ServerConfig {
            workers,
            accept_queue: queue,
            max_connections: max,
            ..ServerConfig::default()
        }
    }

    /// Admission and drain: every admitted item is either served or
    /// rejected-on-drain, never lost, and shutdown always drains.
    #[test]
    fn loom_pool_admission_and_drain() {
        loom::model(|| {
            let stats = ServerStats::new();
            let served = std::sync::Arc::new(AtomicUsize::new(0));
            let served2 = served.clone();
            let pool = WorkerPool::new("model", &cfg(2, 8, 16), stats.clone(), move |_n: u8| {
                served2.fetch_add(1, Ordering::SeqCst);
            });
            let mut admitted = 0usize;
            for n in 0..3u8 {
                if pool.submit(n) {
                    admitted += 1;
                }
            }
            assert_eq!(admitted, 3, "bounds are wide enough to admit all");
            assert!(pool.shutdown(Duration::from_secs(30)), "drain must complete");
            let dropped = stats.snapshot().rejected as usize;
            assert_eq!(served.load(Ordering::SeqCst) + dropped, admitted);
        });
    }

    /// After shutdown wins the race, submissions are refused — a
    /// submitter can never sneak an item into a drained pool.
    #[test]
    fn loom_pool_rejects_after_shutdown() {
        loom::model(|| {
            let pool = WorkerPool::new("model", &cfg(1, 4, 8), ServerStats::new(), |_n: u8| {});
            assert!(pool.submit(1));
            assert!(pool.shutdown(Duration::from_secs(30)));
            assert!(!pool.submit(2), "post-shutdown submit must reject");
            assert_eq!(pool.queued_now(), 0);
        });
    }

    /// Concurrent register/unregister racing shutdown_reads never
    /// deadlocks or double-frees a tracked connection.
    #[test]
    fn loom_conn_tracker_shutdown_race() {
        loom::model(|| {
            let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = TcpStream::connect(addr).expect("connect");
            let (server, _) = listener.accept().expect("accept");
            let tracker = std::sync::Arc::new(ConnTracker::new());
            let t2 = tracker.clone();
            let worker = loom::thread::spawn(move || {
                let id = t2.register(&server);
                t2.unregister(id);
            });
            tracker.shutdown_reads();
            worker.join().expect("join");
            tracker.shutdown_reads();
            drop(client);
        });
    }
}
