//! Sans-io incremental frame decoding.
//!
//! Both record-plane protocols frame messages as `len:u32be payload`
//! (`pbio`'s format server) or `len:u32be kind:u8 payload` (`xmit`
//! messaging).  The event-loop backend reads sockets in whatever chunks
//! the kernel delivers, so the decoder must accept arbitrary byte
//! fragments and emit complete frames as they materialize — no blocking
//! reads inside the parser.  [`LengthFramer`] is that decoder; the
//! blocking transports keep their APIs by wrapping it with
//! [`read_frame_blocking`], which reads exactly the bytes the framer
//! still needs (so a blocking caller never over-reads past a frame
//! boundary and pipelined peers stay in sync).
//!
//! The untrusted-length discipline of [`crate::read_exact_capped`]
//! carries over: the framer only ever buffers bytes that actually
//! arrived, and a length prefix beyond `max_frame` is rejected as soon
//! as the header is complete — a malicious 4-byte header can never pin
//! more memory than the peer transmitted.

use std::io::{self, Read};

use crate::framing::READ_CHUNK;

/// How much drained prefix the framer tolerates before compacting its
/// buffer (keeps steady-state keep-alive connections from growing).
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// Incremental decoder for length-prefixed frames.
///
/// Feed bytes with [`LengthFramer::push`] as they arrive (in any
/// fragmentation), then drain complete frames with
/// [`LengthFramer::next_frame`].  Construct with [`LengthFramer::new`]
/// for `len:u32be payload` frames or [`LengthFramer::with_kind_byte`]
/// for `len:u32be kind:u8 payload` frames (the kind byte is *not*
/// counted by `len`, matching the `xmit` wire format).
#[derive(Debug)]
pub struct LengthFramer {
    max_frame: usize,
    kind_byte: bool,
    buf: Vec<u8>,
    pos: usize,
}

impl LengthFramer {
    /// A framer for `len:u32be payload` frames with payloads capped at
    /// `max_frame` bytes.
    pub fn new(max_frame: usize) -> LengthFramer {
        LengthFramer { max_frame, kind_byte: false, buf: Vec::new(), pos: 0 }
    }

    /// A framer for `len:u32be kind:u8 payload` frames (the `xmit`
    /// messaging layout).
    pub fn with_kind_byte(max_frame: usize) -> LengthFramer {
        LengthFramer { max_frame, kind_byte: true, buf: Vec::new(), pos: 0 }
    }

    fn header_len(&self) -> usize {
        4 + usize::from(self.kind_byte)
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet emitted as part of a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when no partial frame is pending — an EOF here is a clean
    /// close, not a mid-frame truncation.
    pub fn is_empty(&self) -> bool {
        self.buffered() == 0
    }

    /// How many more bytes are needed before [`LengthFramer::next_frame`]
    /// can emit (1 when the need is unknowable until more header bytes
    /// arrive is never the case here: the header length is fixed).
    /// Returns 0 when a complete frame is already buffered.
    pub fn bytes_needed(&self) -> usize {
        let avail = self.buffered();
        let header = self.header_len();
        if avail < header {
            return header - avail;
        }
        let len = self.peek_len();
        (header + len).saturating_sub(avail)
    }

    fn peek_len(&self) -> usize {
        let b = &self.buf[self.pos..self.pos + 4];
        u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize
    }

    /// Emit the next complete frame as `(kind, payload)` — `kind` is 0
    /// for framers without a kind byte.  `Ok(None)` means more bytes are
    /// needed; an oversized length prefix is an `InvalidData` error.
    pub fn next_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        let header = self.header_len();
        if self.buffered() < header {
            return Ok(None);
        }
        let len = self.peek_len();
        if len > self.max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        if self.buffered() < header + len {
            return Ok(None);
        }
        let kind = if self.kind_byte { self.buf[self.pos + 4] } else { 0 };
        let start = self.pos + header;
        let payload = self.buf[start..start + len].to_vec();
        self.pos += header + len;
        Ok(Some((kind, payload)))
    }
}

/// Drive a [`LengthFramer`] from a blocking reader: the thin wrapper the
/// pre-event-loop transports keep their APIs with.
///
/// Reads exactly the bytes the framer still needs (in [`READ_CHUNK`]
/// steps, preserving the capped-allocation property), so the reader is
/// never advanced past the frame boundary.  `Ok(None)` reports a clean
/// EOF at a frame boundary; EOF mid-frame is `UnexpectedEof`, and read
/// deadlines surface unchanged (see [`crate::is_timeout`]).
pub fn read_frame_blocking<R: Read + ?Sized>(
    reader: &mut R,
    framer: &mut LengthFramer,
) -> io::Result<Option<(u8, Vec<u8>)>> {
    loop {
        if let Some(frame) = framer.next_frame()? {
            return Ok(Some(frame));
        }
        let need = framer.bytes_needed().min(READ_CHUNK);
        let mut chunk = vec![0u8; need];
        match reader.read(&mut chunk) {
            Ok(0) => {
                if framer.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => framer.push(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_be_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    }

    fn kind_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_be_bytes().to_vec();
        v.push(kind);
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn whole_frame_in_one_push() {
        let mut f = LengthFramer::new(1024);
        f.push(&frame(b"hello"));
        assert_eq!(f.next_frame().unwrap(), Some((0, b"hello".to_vec())));
        assert_eq!(f.next_frame().unwrap(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn byte_at_a_time_reassembles() {
        let wire = kind_frame(7, b"payload");
        let mut f = LengthFramer::with_kind_byte(1024);
        for (i, b) in wire.iter().enumerate() {
            assert_eq!(f.next_frame().unwrap(), None, "premature frame at byte {i}");
            f.push(&[*b]);
        }
        assert_eq!(f.next_frame().unwrap(), Some((7, b"payload".to_vec())));
    }

    #[test]
    fn pipelined_frames_split_cleanly() {
        let mut wire = frame(b"one");
        wire.extend_from_slice(&frame(b""));
        wire.extend_from_slice(&frame(b"three"));
        let mut f = LengthFramer::new(1024);
        f.push(&wire);
        assert_eq!(f.next_frame().unwrap(), Some((0, b"one".to_vec())));
        assert_eq!(f.next_frame().unwrap(), Some((0, Vec::new())));
        assert_eq!(f.next_frame().unwrap(), Some((0, b"three".to_vec())));
        assert_eq!(f.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_rejected_at_header() {
        let mut f = LengthFramer::new(16);
        f.push(&17u32.to_be_bytes());
        let err = f.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bytes_needed_tracks_header_then_payload() {
        let mut f = LengthFramer::with_kind_byte(1024);
        assert_eq!(f.bytes_needed(), 5);
        f.push(&8u32.to_be_bytes());
        assert_eq!(f.bytes_needed(), 1);
        f.push(&[2]);
        assert_eq!(f.bytes_needed(), 8);
        f.push(&[0; 3]);
        assert_eq!(f.bytes_needed(), 5);
        f.push(&[0; 5]);
        assert_eq!(f.bytes_needed(), 0);
        assert!(f.next_frame().unwrap().is_some());
    }

    #[test]
    fn compaction_keeps_buffer_bounded() {
        let mut f = LengthFramer::new(1024);
        let one = frame(&[9u8; 512]);
        for _ in 0..1000 {
            f.push(&one);
            assert!(f.next_frame().unwrap().is_some());
        }
        assert!(f.buf.capacity() < 64 * 1024, "capacity {}", f.buf.capacity());
    }

    #[test]
    fn blocking_wrapper_reads_frames_and_reports_clean_eof() {
        let mut wire = frame(b"alpha");
        wire.extend_from_slice(&frame(b"beta"));
        let mut cursor = Cursor::new(wire);
        let mut f = LengthFramer::new(1024);
        assert_eq!(read_frame_blocking(&mut cursor, &mut f).unwrap(), Some((0, b"alpha".to_vec())));
        assert_eq!(read_frame_blocking(&mut cursor, &mut f).unwrap(), Some((0, b"beta".to_vec())));
        assert_eq!(read_frame_blocking(&mut cursor, &mut f).unwrap(), None);
    }

    #[test]
    fn blocking_wrapper_errors_on_midframe_eof() {
        let mut wire = frame(b"alpha");
        wire.truncate(6); // header + 2 of 5 payload bytes
        let mut cursor = Cursor::new(wire);
        let mut f = LengthFramer::new(1024);
        let err = read_frame_blocking(&mut cursor, &mut f).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn blocking_wrapper_never_overreads_past_the_frame() {
        let mut wire = frame(b"first");
        wire.extend_from_slice(b"LEFTOVER");
        let mut cursor = Cursor::new(wire);
        let mut f = LengthFramer::new(1024);
        assert_eq!(read_frame_blocking(&mut cursor, &mut f).unwrap(), Some((0, b"first".to_vec())));
        let mut rest = Vec::new();
        cursor.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"LEFTOVER");
    }
}
