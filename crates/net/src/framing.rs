//! Hardened frame-payload reads.

use std::io::{self, Read};

/// Growth step for [`read_exact_capped`]: the largest allocation made
/// before any payload byte has arrived.
pub const READ_CHUNK: usize = 64 * 1024;

/// Read exactly `len` bytes, growing the buffer in [`READ_CHUNK`] steps
/// as bytes actually arrive.
///
/// Frame protocols carry an untrusted `len` prefix; `vec![0u8; len]`
/// before reading lets a malicious 4-byte header force a near-max-frame
/// allocation from a peer that never sends a payload byte.  Here the
/// buffer only ever grows ahead of data already received, so the memory
/// a peer can pin is proportional to the bytes it actually transmitted.
pub fn read_exact_capped<R: Read + ?Sized>(reader: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(len.min(READ_CHUNK));
    while buf.len() < len {
        let step = (len - buf.len()).min(READ_CHUNK);
        let start = buf.len();
        buf.resize(start + step, 0);
        reader.read_exact(&mut buf[start..])?;
    }
    Ok(buf)
}

/// Is this error a socket deadline expiry?  (Unix surfaces read/write
/// timeouts as `WouldBlock`, other platforms as `TimedOut`.)
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_exact_payloads_of_any_size() {
        for len in [0usize, 1, READ_CHUNK - 1, READ_CHUNK, READ_CHUNK + 1, 3 * READ_CHUNK + 7] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut cursor = Cursor::new(data.clone());
            assert_eq!(read_exact_capped(&mut cursor, len).unwrap(), data);
        }
    }

    #[test]
    fn truncated_input_errors_without_full_allocation() {
        // A header claiming 64 MiB backed by 10 bytes of payload: the read
        // fails at the first short chunk, having allocated only one step.
        let mut cursor = Cursor::new(vec![0u8; 10]);
        let err = read_exact_capped(&mut cursor, 64 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn timeout_kinds_recognised() {
        assert!(is_timeout(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(is_timeout(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(!is_timeout(&io::Error::from(io::ErrorKind::UnexpectedEof)));
    }
}
