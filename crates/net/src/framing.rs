//! Hardened frame-payload reads and gather-writes.

use std::io::{self, IoSlice, Read, Write};

/// Growth step for [`read_exact_capped`]: the largest allocation made
/// before any payload byte has arrived.
pub const READ_CHUNK: usize = 64 * 1024;

/// Read exactly `len` bytes, growing the buffer in [`READ_CHUNK`] steps
/// as bytes actually arrive.
///
/// Frame protocols carry an untrusted `len` prefix; `vec![0u8; len]`
/// before reading lets a malicious 4-byte header force a near-max-frame
/// allocation from a peer that never sends a payload byte.  Here the
/// buffer only ever grows ahead of data already received, so the memory
/// a peer can pin is proportional to the bytes it actually transmitted.
pub fn read_exact_capped<R: Read + ?Sized>(reader: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(len.min(READ_CHUNK));
    while buf.len() < len {
        let step = (len - buf.len()).min(READ_CHUNK);
        let start = buf.len();
        buf.resize(start + step, 0);
        reader.read_exact(&mut buf[start..])?;
    }
    Ok(buf)
}

/// Is this error a socket deadline expiry?  (Unix surfaces read/write
/// timeouts as `WouldBlock`, other platforms as `TimedOut`.)
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Most parts a single gather-write handles before falling back to
/// sequential writes.  Frames here are header+payload (2) or a pair of
/// frames (4); 8 leaves headroom without growing the stack array.
const MAX_VECTORED_PARTS: usize = 8;

/// Write every byte of every part, preferring one `write_vectored` call.
///
/// This is the frame-send primitive: header and payload leave in a
/// single syscall — so Nagle/delayed-ACK never see a bare header, the
/// kernel sees one contiguous send, and nothing is coalesced into a
/// scratch buffer first.  `std`'s `write_all_vectored` is unstable, so
/// this hand-rolls the partial-write loop: after a short write the
/// remaining byte ranges are recomputed from the original slices (an
/// `IoSlice` cannot be advanced in place on stable).
///
/// Writers whose `write_vectored` only consumes the first buffer (the
/// `dyn Write` default) still terminate: each loop iteration makes
/// progress or errors.  A zero-length write reports `WriteZero`, like
/// `write_all`.
pub fn write_all_vectored<W: Write + ?Sized>(w: &mut W, parts: &[&[u8]]) -> io::Result<()> {
    if parts.len() > MAX_VECTORED_PARTS {
        for p in parts {
            w.write_all(p)?;
        }
        return Ok(());
    }
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut written = 0usize;
    while written < total {
        // Rebuild the IoSlice list for the bytes still outstanding.
        const EMPTY: &[u8] = &[];
        let mut bufs = [IoSlice::new(EMPTY); MAX_VECTORED_PARTS];
        let mut n = 0;
        let mut skip = written;
        for p in parts {
            if skip >= p.len() {
                skip -= p.len();
                continue;
            }
            bufs[n] = IoSlice::new(&p[skip..]);
            skip = 0;
            n += 1;
        }
        match w.write_vectored(&bufs[..n]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole buffer",
                ));
            }
            Ok(k) => written += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_exact_payloads_of_any_size() {
        for len in [0usize, 1, READ_CHUNK - 1, READ_CHUNK, READ_CHUNK + 1, 3 * READ_CHUNK + 7] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut cursor = Cursor::new(data.clone());
            assert_eq!(read_exact_capped(&mut cursor, len).unwrap(), data);
        }
    }

    #[test]
    fn truncated_input_errors_without_full_allocation() {
        // A header claiming 64 MiB backed by 10 bytes of payload: the read
        // fails at the first short chunk, having allocated only one step.
        let mut cursor = Cursor::new(vec![0u8; 10]);
        let err = read_exact_capped(&mut cursor, 64 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn timeout_kinds_recognised() {
        assert!(is_timeout(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(is_timeout(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(!is_timeout(&io::Error::from(io::ErrorKind::UnexpectedEof)));
    }

    /// A writer that accepts at most `cap` bytes per call, so every
    /// vectored write is partial and the rebuild loop is exercised.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.calls += 1;
            let mut room = self.cap;
            let mut n = 0;
            for b in bufs {
                if room == 0 {
                    break;
                }
                let take = b.len().min(room);
                self.out.extend_from_slice(&b[..take]);
                room -= take;
                n += take;
            }
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_completes_across_partial_writes() {
        let header = [1u8, 2, 3, 4, 5];
        let payload: Vec<u8> = (0..1000).map(|i| (i % 253) as u8).collect();
        for cap in [1usize, 3, 7, 128, 4096] {
            let mut w = Dribble { out: Vec::new(), cap, calls: 0 };
            write_all_vectored(&mut w, &[&header, &payload]).unwrap();
            let mut want = header.to_vec();
            want.extend_from_slice(&payload);
            assert_eq!(w.out, want, "cap={cap}");
        }
    }

    #[test]
    fn unsplit_writer_sends_frame_in_one_call() {
        let mut w = Dribble { out: Vec::new(), cap: usize::MAX, calls: 0 };
        write_all_vectored(&mut w, &[b"head", b"body", b"tail"]).unwrap();
        assert_eq!(w.calls, 1, "whole frame should leave in one gather-write");
        assert_eq!(w.out, b"headbodytail");
    }

    #[test]
    fn empty_parts_are_skipped() {
        let mut w = Dribble { out: Vec::new(), cap: 2, calls: 0 };
        write_all_vectored(&mut w, &[b"", b"ab", b"", b"cd", b""]).unwrap();
        assert_eq!(w.out, b"abcd");
        let mut none = Dribble { out: Vec::new(), cap: 2, calls: 0 };
        write_all_vectored(&mut none, &[]).unwrap();
        assert!(none.out.is_empty());
    }

    #[test]
    fn many_parts_fall_back_to_sequential_writes() {
        let parts: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 3]).collect();
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let mut w = Dribble { out: Vec::new(), cap: usize::MAX, calls: 0 };
        write_all_vectored(&mut w, &refs).unwrap();
        let want: Vec<u8> = parts.concat();
        assert_eq!(w.out, want);
    }

    #[test]
    fn stalled_writer_reports_write_zero() {
        let mut w = Dribble { out: Vec::new(), cap: 0, calls: 0 };
        let err = write_all_vectored(&mut w, &[b"data"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }
}
