//! Escaping and unescaping of XML character data and attribute values.
//!
//! XML defines five predefined entities (`&lt; &gt; &amp; &apos; &quot;`)
//! plus numeric character references (`&#10;`, `&#x1F;`).  The XMIT wire
//! comparator (XML-as-wire-format) spends a large part of its encode budget
//! here, which is precisely the cost the paper's Figure 8 measures.

use std::borrow::Cow;

use crate::error::{ErrorKind, Position, XmlError};

/// Escape character data for use as element text content.
///
/// Only `&`, `<` and `>` are escaped; quotes are legal inside text.
/// Returns `Cow::Borrowed` when no escaping is required so the common
/// all-clean case allocates nothing.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, |c| matches!(c, '&' | '<' | '>'))
}

/// Escape a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, |c| matches!(c, '&' | '<' | '>' | '"' | '\''))
}

fn escape_with(s: &str, needs: impl Fn(char) -> bool) -> Cow<'_, str> {
    let first = match s.char_indices().find(|&(_, c)| needs(c)) {
        None => return Cow::Borrowed(s),
        Some((i, _)) => i,
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        if needs(c) {
            match c {
                '&' => out.push_str("&amp;"),
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '"' => out.push_str("&quot;"),
                '\'' => out.push_str("&apos;"),
                _ => unreachable!("escape predicate only selects markup chars"),
            }
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

/// Resolve one entity or character reference.
///
/// `body` is the text between `&` and `;` (e.g. `"amp"`, `"#x41"`).
pub(crate) fn resolve_reference(body: &str, at: Position) -> Result<char, XmlError> {
    let err = |msg: String| XmlError::new(ErrorKind::BadReference, msg, at);
    if let Some(num) = body.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16)
                .map_err(|_| err(format!("bad hex character reference '&#{num};'")))?
        } else {
            num.parse::<u32>()
                .map_err(|_| err(format!("bad decimal character reference '&#{num};'")))?
        };
        let ch = char::from_u32(code)
            .ok_or_else(|| err(format!("character reference U+{code:X} is not a valid char")))?;
        if !is_xml_char(ch) {
            return Err(err(format!("character reference U+{code:X} is not an XML Char")));
        }
        return Ok(ch);
    }
    match body {
        "amp" => Ok('&'),
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        other => Err(err(format!("unknown entity '&{other};' (DTD entities are not supported)"))),
    }
}

/// Unescape entity and character references in `s`.
///
/// Returns `Cow::Borrowed` when the input contains no `&`.
pub fn unescape(s: &str) -> Result<Cow<'_, str>, XmlError> {
    unescape_at(s, Position::start())
}

pub(crate) fn unescape_at(s: &str, base: Position) -> Result<Cow<'_, str>, XmlError> {
    let Some(first) = s.find('&') else { return Ok(Cow::Borrowed(s)) };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut rest = &s[first..];
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(XmlError::new(
                ErrorKind::BadReference,
                "'&' not followed by a terminated reference",
                base,
            ));
        };
        out.push(resolve_reference(&after[..semi], base)?);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

/// Is `c` a legal XML 1.0 `Char`?
pub(crate) fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_borrows() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(unescape("hello").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_markup_characters_in_text() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        // Quotes legal in text content.
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn escapes_quotes_in_attributes() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
    }

    #[test]
    fn unescapes_predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;").unwrap(), "<>&'\"");
    }

    #[test]
    fn unescapes_character_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("snow&#x2603;man").unwrap(), "snow\u{2603}man");
    }

    #[test]
    fn round_trip_text() {
        let original = "x < y && y > \"z\"";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn rejects_unknown_entity() {
        let e = unescape("&nbsp;").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadReference);
    }

    #[test]
    fn rejects_unterminated_reference() {
        assert!(unescape("a & b").is_err());
        assert!(unescape("tail&amp").is_err());
    }

    #[test]
    fn rejects_out_of_range_character_reference() {
        assert!(unescape("&#x110000;").is_err()); // beyond Unicode
        assert!(unescape("&#0;").is_err()); // NUL is not an XML Char
        assert!(unescape("&#xD800;").is_err()); // surrogate
    }

    #[test]
    fn xml_char_predicate() {
        assert!(is_xml_char('\t'));
        assert!(is_xml_char('\n'));
        assert!(is_xml_char('A'));
        assert!(!is_xml_char('\u{0}'));
        assert!(!is_xml_char('\u{B}'));
        assert!(!is_xml_char('\u{FFFE}'));
    }
}
