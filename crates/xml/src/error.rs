//! Error and source-position types for the XML parser.

use std::fmt;

/// A 1-based line/column position within an XML source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 1-based line number (0 means "unknown").
    pub line: u32,
    /// 1-based column number in characters (0 means "unknown").
    pub column: u32,
    /// Byte offset from the start of the input.
    pub offset: usize,
}

impl Position {
    /// The position of the first character of a document.
    pub fn start() -> Self {
        Position { line: 1, column: 1, offset: 0 }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced while parsing or building an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Machine-readable error category.
    pub kind: ErrorKind,
    /// Human-readable detail (what was found, what was expected).
    pub message: String,
    /// Where in the source the error was detected.
    pub position: Position,
}

/// Categories of XML parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A token violated XML 1.0 grammar.
    Syntax,
    /// An element or attribute name is not a valid (qualified) name.
    InvalidName,
    /// Close tag does not match the open tag, or tags left open at EOF.
    TagMismatch,
    /// The same attribute appears twice on one element.
    DuplicateAttribute,
    /// A character or entity reference is malformed or out of range.
    BadReference,
    /// A namespace prefix was used without being declared.
    UndeclaredPrefix,
    /// Document-level structure violation (e.g. two root elements).
    Structure,
}

impl XmlError {
    /// Construct an error (public so event consumers layering their own
    /// resolution on [`crate::Reader`] can report matching diagnostics).
    pub fn new(kind: ErrorKind, message: impl Into<String>, position: Position) -> Self {
        XmlError { kind, message: message.into(), position }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_and_column() {
        let p = Position { line: 3, column: 14, offset: 60 };
        assert_eq!(p.to_string(), "3:14");
    }

    #[test]
    fn error_display_includes_position_and_message() {
        let e = XmlError::new(ErrorKind::Syntax, "expected '>'", Position::start());
        assert_eq!(e.to_string(), "XML error at 1:1: expected '>'");
    }

    #[test]
    fn start_position_is_one_one() {
        assert_eq!(Position::start(), Position { line: 1, column: 1, offset: 0 });
    }
}
