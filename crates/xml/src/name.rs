//! Qualified names and namespace constants.

use std::fmt;

/// The reserved namespace URI bound to the `xml` prefix.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
/// The reserved namespace URI bound to the `xmlns` prefix.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";

/// A namespace-resolved qualified name.
///
/// `prefix` preserves the lexical prefix as written in the document (so the
/// serializer can round-trip), while `namespace` holds the expanded URI the
/// prefix was bound to at that point in the tree, or `None` for names in no
/// namespace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// Lexical prefix as written (empty string if unprefixed).
    pub prefix: String,
    /// Local part of the name.
    pub local: String,
    /// Resolved namespace URI, if the name is in a namespace.
    pub namespace: Option<String>,
}

impl QName {
    /// An unprefixed name in no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        QName { prefix: String::new(), local: local.into(), namespace: None }
    }

    /// A name with an explicit prefix and resolved namespace URI.
    pub fn prefixed(
        prefix: impl Into<String>,
        local: impl Into<String>,
        namespace: impl Into<String>,
    ) -> Self {
        QName { prefix: prefix.into(), local: local.into(), namespace: Some(namespace.into()) }
    }

    /// The name as written in the source: `prefix:local` or `local`.
    pub fn lexical(&self) -> String {
        if self.prefix.is_empty() {
            self.local.clone()
        } else {
            format!("{}:{}", self.prefix, self.local)
        }
    }

    /// Does this name match `(namespace, local)`?
    pub fn is(&self, namespace: Option<&str>, local: &str) -> bool {
        self.local == local && self.namespace.as_deref() == namespace
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            write!(f, "{}", self.local)
        } else {
            write!(f, "{}:{}", self.prefix, self.local)
        }
    }
}

/// Is `c` a legal first character of an XML `Name`?
pub(crate) fn is_name_start(c: char) -> bool {
    matches!(c,
        ':' | '_' | 'A'..='Z' | 'a'..='z'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// Is `c` a legal non-first character of an XML `Name`?
pub(crate) fn is_name_char(c: char) -> bool {
    is_name_start(c)
        || matches!(c, '-' | '.' | '0'..='9' | '\u{B7}' | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// Split a lexical name into `(prefix, local)` at the first colon.
///
/// Returns `("", name)` when unprefixed.  A name with more than one colon or
/// an empty prefix/local part is reported as `None`.
pub fn split_prefix(name: &str) -> Option<(&str, &str)> {
    match name.find(':') {
        None => Some(("", name)),
        Some(i) => {
            let (p, l) = (&name[..i], &name[i + 1..]);
            if p.is_empty() || l.is_empty() || l.contains(':') {
                None
            } else {
                Some((p, l))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_form() {
        assert_eq!(QName::local("foo").lexical(), "foo");
        assert_eq!(QName::prefixed("xsd", "element", "urn:x").lexical(), "xsd:element");
    }

    #[test]
    fn matches_by_namespace_and_local() {
        let q = QName::prefixed("xsd", "element", "urn:x");
        assert!(q.is(Some("urn:x"), "element"));
        assert!(!q.is(None, "element"));
        assert!(!q.is(Some("urn:x"), "attribute"));
    }

    #[test]
    fn name_char_classes() {
        assert!(is_name_start('_'));
        assert!(is_name_start('A'));
        assert!(!is_name_start('-'));
        assert!(!is_name_start('3'));
        assert!(is_name_char('-'));
        assert!(is_name_char('3'));
        assert!(is_name_char('.'));
        assert!(!is_name_char(' '));
    }

    #[test]
    fn split_prefix_variants() {
        assert_eq!(split_prefix("a"), Some(("", "a")));
        assert_eq!(split_prefix("xsd:element"), Some(("xsd", "element")));
        assert_eq!(split_prefix(":x"), None);
        assert_eq!(split_prefix("x:"), None);
        assert_eq!(split_prefix("a:b:c"), None);
    }

    #[test]
    fn display_matches_lexical() {
        let q = QName::prefixed("p", "n", "u");
        assert_eq!(q.to_string(), q.lexical());
    }
}
