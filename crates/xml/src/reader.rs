//! A streaming pull parser for XML 1.0 documents.
//!
//! [`Reader`] walks the input once, producing borrowed [`Event`]s.  It checks
//! well-formedness as it goes: tag nesting, attribute uniqueness, legal
//! names, legal characters, reference syntax, and document structure
//! (exactly one root element, nothing but misc after it).  Namespace
//! resolution is layered on top by the DOM builder ([`crate::dom::build`]).

use std::borrow::Cow;

use crate::error::{ErrorKind, Position, XmlError};
use crate::escape::{is_xml_char, unescape_at};
use crate::name::{is_name_char, is_name_start};

/// A raw (namespace-unresolved) attribute as it appears in a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAttribute<'a> {
    /// Lexical attribute name, possibly prefixed (`xsd:type`).
    pub name: &'a str,
    /// Attribute value with references already resolved.
    pub value: Cow<'a, str>,
}

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// The `<?xml version=... ?>` declaration, if present (first event only).
    Declaration {
        /// XML version, e.g. `"1.0"`.
        version: &'a str,
        /// Declared encoding, if any.
        encoding: Option<&'a str>,
        /// Declared standalone flag, if any.
        standalone: Option<bool>,
    },
    /// `<name attr="v" ...>` or `<name/>`.
    StartElement {
        /// Lexical element name, possibly prefixed.
        name: &'a str,
        /// Attributes in document order.
        attributes: Vec<RawAttribute<'a>>,
        /// `true` for `<name/>`; the matching [`Event::EndElement`] is still
        /// delivered immediately after.
        self_closing: bool,
    },
    /// `</name>`, or the synthetic close of a self-closing element.
    EndElement {
        /// Lexical element name.
        name: &'a str,
    },
    /// Character data between tags, references resolved.
    Text(Cow<'a, str>),
    /// A `<![CDATA[...]]>` section (content verbatim).
    CData(&'a str),
    /// A `<!-- ... -->` comment (content verbatim).
    Comment(&'a str),
    /// A `<?target data?>` processing instruction.
    ProcessingInstruction {
        /// PI target.
        target: &'a str,
        /// PI data (possibly empty).
        data: &'a str,
    },
    /// A `<!DOCTYPE ...>` declaration, skipped verbatim (no interpretation).
    Doctype(&'a str),
    /// End of input; returned exactly once, after which the reader is done.
    Eof,
}

/// Streaming XML pull parser over a `&str`.
pub struct Reader<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    /// Stack of open element names, for tag-matching.
    stack: Vec<&'a str>,
    /// Byte offsets into `src` of the open-tag positions (for errors).
    stack_pos: Vec<Position>,
    seen_root: bool,
    root_closed: bool,
    started: bool,
    done: bool,
    /// Deferred synthetic end event for a self-closing element.
    pending_end: Option<&'a str>,
}

impl<'a> Reader<'a> {
    /// Create a reader over a full document text.
    pub fn new(src: &'a str) -> Self {
        Reader {
            src,
            pos: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            stack_pos: Vec::new(),
            seen_root: false,
            root_closed: false,
            started: false,
            done: false,
            pending_end: None,
        }
    }

    /// Current source position (position of the next unread character).
    pub fn source_position(&self) -> Position {
        Position { line: self.line, column: self.col, offset: self.pos }
    }

    /// Nesting depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, kind: ErrorKind, msg: impl Into<String>) -> XmlError {
        XmlError::new(kind, msg, self.source_position())
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.rest().starts_with(lit) {
            for _ in lit.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), XmlError> {
        if self.eat(lit) {
            Ok(())
        } else {
            let found: String = self.rest().chars().take(8).collect();
            Err(self.err(ErrorKind::Syntax, format!("expected '{lit}', found '{found}'")))
        }
    }

    fn skip_ws(&mut self) -> usize {
        let mut n = 0;
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
            n += 1;
        }
        n
    }

    /// Consume an XML `Name` token.
    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(self.err(ErrorKind::InvalidName, format!("'{c}' cannot start a name")))
            }
            None => return Err(self.err(ErrorKind::UnexpectedEof, "expected a name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(&self.src[start..self.pos])
    }

    /// Scan until `terminator`, returning the text before it (consumes it).
    fn read_until(&mut self, terminator: &str, what: &str) -> Result<&'a str, XmlError> {
        match self.rest().find(terminator) {
            Some(i) => {
                let s = &self.rest()[..i];
                for _ in s.chars().chain(terminator.chars()) {
                    self.bump();
                }
                Ok(s)
            }
            None => Err(self.err(ErrorKind::UnexpectedEof, format!("unterminated {what}"))),
        }
    }

    /// Pull the next event.
    pub fn next_event(&mut self) -> Result<Event<'a>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.pop_tag(name)?;
            return Ok(Event::EndElement { name });
        }
        if self.done {
            return Ok(Event::Eof);
        }
        if !self.started {
            self.started = true;
            if self.rest().starts_with("<?xml") {
                return self.read_declaration();
            }
        }
        if self.pos >= self.src.len() {
            if let Some(open) = self.stack.last() {
                return Err(XmlError::new(
                    ErrorKind::TagMismatch,
                    format!("end of input with <{open}> still open"),
                    *self.stack_pos.last().expect("stack_pos parallels stack"),
                ));
            }
            if !self.seen_root {
                return Err(self.err(ErrorKind::Structure, "document has no root element"));
            }
            self.done = true;
            return Ok(Event::Eof);
        }
        if self.peek() == Some('<') {
            self.bump();
            match self.peek() {
                Some('?') => {
                    self.bump();
                    self.read_pi()
                }
                Some('!') => {
                    self.bump();
                    if self.eat("--") {
                        self.read_comment()
                    } else if self.eat("[CDATA[") {
                        self.read_cdata()
                    } else if self.eat("DOCTYPE") {
                        self.read_doctype()
                    } else {
                        Err(self.err(ErrorKind::Syntax, "unrecognized markup after '<!'"))
                    }
                }
                Some('/') => {
                    self.bump();
                    self.read_end_tag()
                }
                _ => self.read_start_tag(),
            }
        } else {
            self.read_text()
        }
    }

    fn read_declaration(&mut self) -> Result<Event<'a>, XmlError> {
        self.expect("<?xml")?;
        let body = self.read_until("?>", "XML declaration")?;
        // The declaration grammar is tiny; parse it as pseudo-attributes.
        let mut version = None;
        let mut encoding = None;
        let mut standalone = None;
        let mut rest = body.trim();
        while !rest.is_empty() {
            let eq = rest.find('=').ok_or_else(|| {
                self.err(ErrorKind::Syntax, "malformed XML declaration (missing '=')")
            })?;
            let key = rest[..eq].trim();
            let after = rest[eq + 1..].trim_start();
            let quote =
                after.chars().next().filter(|&q| q == '"' || q == '\'').ok_or_else(|| {
                    self.err(ErrorKind::Syntax, "XML declaration value must be quoted")
                })?;
            let val_end = after[1..]
                .find(quote)
                .ok_or_else(|| self.err(ErrorKind::Syntax, "unterminated declaration value"))?;
            let value = &after[1..1 + val_end];
            match key {
                "version" => version = Some(value),
                "encoding" => encoding = Some(value),
                "standalone" => {
                    standalone = Some(match value {
                        "yes" => true,
                        "no" => false,
                        other => {
                            return Err(self.err(
                                ErrorKind::Syntax,
                                format!("standalone must be yes/no, got '{other}'"),
                            ))
                        }
                    })
                }
                other => {
                    return Err(
                        self.err(ErrorKind::Syntax, format!("unknown declaration item '{other}'"))
                    )
                }
            }
            rest = after[1 + val_end + 1..].trim_start();
        }
        let version = version
            .ok_or_else(|| self.err(ErrorKind::Syntax, "XML declaration lacks a version"))?;
        Ok(Event::Declaration { version, encoding, standalone })
    }

    fn read_pi(&mut self) -> Result<Event<'a>, XmlError> {
        let target = self.read_name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err(ErrorKind::Syntax, "PI target 'xml' is reserved"));
        }
        self.skip_ws();
        let data = self.read_until("?>", "processing instruction")?;
        Ok(Event::ProcessingInstruction { target, data })
    }

    fn read_comment(&mut self) -> Result<Event<'a>, XmlError> {
        let body = self.read_until("-->", "comment")?;
        if body.contains("--") {
            return Err(self.err(ErrorKind::Syntax, "'--' is not allowed inside a comment"));
        }
        Ok(Event::Comment(body))
    }

    fn read_cdata(&mut self) -> Result<Event<'a>, XmlError> {
        if self.stack.is_empty() {
            return Err(self.err(ErrorKind::Structure, "CDATA outside the root element"));
        }
        let body = self.read_until("]]>", "CDATA section")?;
        Ok(Event::CData(body))
    }

    fn read_doctype(&mut self) -> Result<Event<'a>, XmlError> {
        if self.seen_root {
            return Err(self.err(ErrorKind::Structure, "DOCTYPE after the root element"));
        }
        // Skip to the matching '>', tolerating one level of internal subset.
        let start = self.pos;
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => {
                    return Ok(Event::Doctype(self.src[start..self.pos - 1].trim()))
                }
                Some(_) => {}
                None => return Err(self.err(ErrorKind::UnexpectedEof, "unterminated DOCTYPE")),
            }
        }
    }

    fn read_start_tag(&mut self) -> Result<Event<'a>, XmlError> {
        let open_pos = self.source_position();
        let name = self.read_name()?;
        if self.root_closed {
            return Err(self.err(ErrorKind::Structure, "content after the root element"));
        }
        if self.stack.is_empty() && self.seen_root {
            return Err(self.err(ErrorKind::Structure, "multiple root elements"));
        }
        let mut attributes = Vec::new();
        loop {
            let had_ws = self.skip_ws() > 0;
            match self.peek() {
                Some('>') => {
                    self.bump();
                    self.seen_root = true;
                    self.stack.push(name);
                    self.stack_pos.push(open_pos);
                    return Ok(Event::StartElement { name, attributes, self_closing: false });
                }
                Some('/') => {
                    self.bump();
                    self.expect(">")?;
                    self.seen_root = true;
                    self.stack.push(name);
                    self.stack_pos.push(open_pos);
                    self.pending_end = Some(name);
                    return Ok(Event::StartElement { name, attributes, self_closing: true });
                }
                Some(_) => {
                    if !had_ws {
                        return Err(
                            self.err(ErrorKind::Syntax, "attributes must be whitespace-separated")
                        );
                    }
                    let attr = self.read_attribute()?;
                    if attributes.iter().any(|a: &RawAttribute<'_>| a.name == attr.name) {
                        return Err(self.err(
                            ErrorKind::DuplicateAttribute,
                            format!("duplicate attribute '{}'", attr.name),
                        ));
                    }
                    attributes.push(attr);
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof, "unterminated start tag")),
            }
        }
    }

    fn read_attribute(&mut self) -> Result<RawAttribute<'a>, XmlError> {
        let name = self.read_name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.err(ErrorKind::Syntax, "attribute value must be quoted")),
        };
        let at = self.source_position();
        let start = self.pos;
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    let raw = &self.src[start..self.pos];
                    self.bump();
                    if raw.contains('<') {
                        return Err(
                            self.err(ErrorKind::Syntax, "'<' is not allowed in attribute values")
                        );
                    }
                    // Attribute-value normalization (XML 1.0 §3.3.3):
                    // literal whitespace becomes a space, while whitespace
                    // written as character references survives — so
                    // normalize the raw text before resolving references.
                    let value = if raw.contains(['\t', '\n', '\r']) {
                        let normalized: String = raw
                            .chars()
                            .map(|c| if matches!(c, '\t' | '\n' | '\r') { ' ' } else { c })
                            .collect();
                        std::borrow::Cow::Owned(unescape_at(&normalized, at)?.into_owned())
                    } else {
                        unescape_at(raw, at)?
                    };
                    return Ok(RawAttribute { name, value });
                }
                Some(c) if !is_xml_char(c) => {
                    return Err(
                        self.err(ErrorKind::Syntax, format!("illegal character U+{:X}", c as u32))
                    )
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(self.err(ErrorKind::UnexpectedEof, "unterminated attribute value"))
                }
            }
        }
    }

    fn pop_tag(&mut self, name: &'a str) -> Result<(), XmlError> {
        match self.stack.pop() {
            Some(open) if open == name => {
                self.stack_pos.pop();
                if self.stack.is_empty() {
                    self.root_closed = true;
                }
                Ok(())
            }
            Some(open) => Err(self.err(
                ErrorKind::TagMismatch,
                format!("closing tag </{name}> does not match open <{open}>"),
            )),
            None => Err(self
                .err(ErrorKind::TagMismatch, format!("closing tag </{name}> with nothing open"))),
        }
    }

    fn read_end_tag(&mut self) -> Result<Event<'a>, XmlError> {
        let name = self.read_name()?;
        self.skip_ws();
        self.expect(">")?;
        self.pop_tag(name)?;
        Ok(Event::EndElement { name })
    }

    fn read_text(&mut self) -> Result<Event<'a>, XmlError> {
        let at = self.source_position();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '<' {
                break;
            }
            if !is_xml_char(c) {
                return Err(
                    self.err(ErrorKind::Syntax, format!("illegal character U+{:X}", c as u32))
                );
            }
            self.bump();
        }
        let raw = &self.src[start..self.pos];
        if raw.contains("]]>") {
            return Err(self.err(ErrorKind::Syntax, "']]>' is not allowed in character data"));
        }
        if self.stack.is_empty() {
            // Outside the root element only whitespace is allowed.
            if raw.trim().is_empty() {
                return self.next_event();
            }
            return Err(self.err(ErrorKind::Structure, "character data outside the root element"));
        }
        Ok(Event::Text(unescape_at(raw, at)?))
    }
}

/// Iterator adapter: yields events until `Eof` or the first error.
impl<'a> Iterator for Reader<'a> {
    type Item = Result<Event<'a>, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Event::Eof) => None,
            Ok(e) => Some(Ok(e)),
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event<'_>> {
        Reader::new(src).collect::<Result<Vec<_>, _>>().unwrap()
    }

    fn parse_err(src: &str) -> XmlError {
        Reader::new(src).collect::<Result<Vec<_>, _>>().expect_err("expected a parse error")
    }

    #[test]
    fn empty_element() {
        let ev = events("<a/>");
        assert_eq!(
            ev,
            vec![
                Event::StartElement { name: "a", attributes: vec![], self_closing: true },
                Event::EndElement { name: "a" },
            ]
        );
    }

    #[test]
    fn nested_elements_with_text() {
        let ev = events("<a><b>hi</b></a>");
        assert_eq!(ev.len(), 5);
        assert!(matches!(&ev[2], Event::Text(t) if t == "hi"));
    }

    #[test]
    fn attributes_parse_and_unescape() {
        let ev = events(r#"<a x="1" y='two &amp; three'/>"#);
        let Event::StartElement { attributes, .. } = &ev[0] else { panic!() };
        assert_eq!(attributes[0], RawAttribute { name: "x", value: "1".into() });
        assert_eq!(attributes[1].value, "two & three");
    }

    #[test]
    fn declaration_is_parsed() {
        let ev = events("<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?><a/>");
        assert_eq!(
            ev[0],
            Event::Declaration { version: "1.0", encoding: Some("UTF-8"), standalone: Some(true) }
        );
    }

    #[test]
    fn comments_pis_cdata() {
        let ev = events("<!--c--><a><?go now?><![CDATA[<raw>]]></a>");
        assert!(matches!(ev[0], Event::Comment("c")));
        assert!(matches!(ev[2], Event::ProcessingInstruction { target: "go", data: "now" }));
        assert!(matches!(ev[3], Event::CData("<raw>")));
    }

    #[test]
    fn doctype_is_skipped() {
        let ev = events("<!DOCTYPE note [ <!ELEMENT note (#PCDATA)> ]><note/>");
        assert!(matches!(ev[0], Event::Doctype(_)));
    }

    #[test]
    fn text_references_resolved() {
        let ev = events("<a>1 &lt; 2 &#38; 3 &gt; 2</a>");
        assert!(matches!(&ev[1], Event::Text(t) if t == "1 < 2 & 3 > 2"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let e = parse_err("<a><b></a></b>");
        assert_eq!(e.kind, ErrorKind::TagMismatch);
    }

    #[test]
    fn unclosed_root_rejected() {
        let e = parse_err("<a><b></b>");
        assert_eq!(e.kind, ErrorKind::TagMismatch);
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let e = parse_err(r#"<a x="1" x="2"/>"#);
        assert_eq!(e.kind, ErrorKind::DuplicateAttribute);
    }

    #[test]
    fn multiple_roots_rejected() {
        let e = parse_err("<a/><b/>");
        assert_eq!(e.kind, ErrorKind::Structure);
    }

    #[test]
    fn text_outside_root_rejected() {
        let e = parse_err("<a/>trailing");
        assert_eq!(e.kind, ErrorKind::Structure);
        // Whitespace is fine.
        events("  <a/>  \n");
    }

    #[test]
    fn empty_document_rejected() {
        assert_eq!(parse_err("").kind, ErrorKind::Structure);
        assert_eq!(parse_err("   \n ").kind, ErrorKind::Structure);
    }

    #[test]
    fn bad_names_rejected() {
        assert_eq!(parse_err("<1a/>").kind, ErrorKind::InvalidName);
        assert_eq!(parse_err("<a -b=\"1\"/>").kind, ErrorKind::InvalidName);
    }

    #[test]
    fn unquoted_attribute_rejected() {
        assert_eq!(parse_err("<a x=1/>").kind, ErrorKind::Syntax);
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert_eq!(parse_err("<a x=\"a<b\"/>").kind, ErrorKind::Syntax);
    }

    #[test]
    fn cdata_terminator_in_text_rejected() {
        assert_eq!(parse_err("<a>oops ]]> here</a>").kind, ErrorKind::Syntax);
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        assert_eq!(parse_err("<a><!-- a -- b --></a>").kind, ErrorKind::Syntax);
    }

    #[test]
    fn position_tracking() {
        let e = parse_err("<a>\n  <b></c>\n</a>");
        assert_eq!(e.position.line, 2);
    }

    #[test]
    fn whitespace_in_end_tag_tolerated() {
        events("<a></a >");
    }

    #[test]
    fn depth_reporting() {
        let mut r = Reader::new("<a><b/></a>");
        r.next_event().unwrap();
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b/> start
        assert_eq!(r.depth(), 2);
        r.next_event().unwrap(); // synthetic </b>
        assert_eq!(r.depth(), 1);
    }
}
