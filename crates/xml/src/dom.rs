//! Arena-based DOM tree with namespace resolution.
//!
//! Nodes live in a flat `Vec` inside [`Document`] and are referenced by
//! [`NodeId`] indices, which keeps the tree cache-friendly and avoids
//! interior mutability.  The shape mirrors what XMIT's metadata generator
//! needs: selective traversal of element subtrees (`complexType` →
//! `element`) with attribute lookup.

use std::fmt;

use crate::error::{ErrorKind, Position, XmlError};
use crate::name::{split_prefix, QName, XMLNS_NS, XML_NS};
use crate::reader::{Event, Reader};
use crate::writer::{WriteStyle, Writer};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A namespace-resolved attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Resolved attribute name.  Per the namespaces spec, unprefixed
    /// attributes are in *no* namespace (they do not inherit the default).
    pub name: QName,
    /// Attribute value (references already resolved).
    pub value: String,
}

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with resolved name and attributes.
    Element {
        /// Resolved element name.
        name: QName,
        /// Attributes in document order, `xmlns` declarations included.
        attributes: Vec<Attribute>,
    },
    /// Character data (adjacent text and CDATA are merged).
    Text(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

/// One node in the arena: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node payload.
    pub kind: NodeKind,
    /// Parent node, `None` for top-level nodes.
    pub parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    /// Source position of the construct that produced this node.
    pub position: Position,
}

/// A parsed XML document.
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
    /// Top-level nodes in order (comments/PIs and the single root element).
    top: Vec<NodeId>,
    root: Option<NodeId>,
    /// Declared encoding, from the XML declaration if present.
    pub encoding: Option<String>,
}

impl Document {
    /// The single root element.
    pub fn root_element(&self) -> Option<NodeId> {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the document holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The resolved name of an element node.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    pub fn name(&self, id: NodeId) -> &QName {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => name,
            other => panic!("node is not an element: {other:?}"),
        }
    }

    /// All attributes of an element (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Look up an attribute value by *local* name, ignoring namespaces.
    ///
    /// This matches how XMIT reads schema attributes (`name`, `type`,
    /// `maxOccurs`): schema documents leave them unprefixed.
    pub fn attribute(&self, id: NodeId, local: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name.local == local && a.name.namespace.is_none())
            .map(|a| a.value.as_str())
    }

    /// Look up an attribute by namespace URI + local name.
    pub fn attribute_ns(&self, id: NodeId, ns: Option<&str>, local: &str) -> Option<&str> {
        self.attributes(id).iter().find(|a| a.name.is(ns, local)).map(|a| a.value.as_str())
    }

    /// Iterate over the direct children of `id`.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { doc: self, next: self.node(id).first_child }
    }

    /// Iterate over the direct *element* children of `id`.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(|&c| matches!(self.node(c).kind, NodeKind::Element { .. }))
    }

    /// Find direct element children whose local name is `local`.
    pub fn children_named<'d>(
        &'d self,
        id: NodeId,
        local: &'d str,
    ) -> impl Iterator<Item = NodeId> + 'd {
        self.child_elements(id).filter(move |&c| self.name(c).local == local)
    }

    /// Depth-first pre-order traversal of the subtree rooted at `id`
    /// (including `id` itself).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![id] }
    }

    /// Every element in the document, in document order.
    pub fn all_elements(&self) -> Vec<NodeId> {
        let Some(root) = self.root else { return Vec::new() };
        self.descendants(root)
            .filter(|&n| matches!(self.node(n).kind, NodeKind::Element { .. }))
            .collect()
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeKind::Text(t) = &self.node(n).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// Top-level nodes (prolog comments/PIs, the root element, epilog misc).
    pub fn top_level(&self) -> &[NodeId] {
        &self.top
    }

    /// Serialize compactly (no added whitespace).
    pub fn to_string_compact(&self) -> String {
        Writer::new(WriteStyle::Compact).document(self)
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        Writer::new(WriteStyle::Pretty { indent: 2 }).document(self)
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena exceeds u32 range"));
        self.nodes.push(node);
        id
    }

    fn attach(&mut self, parent: Option<NodeId>, id: NodeId) {
        match parent {
            None => self.top.push(id),
            Some(p) => {
                let prev_last = self.nodes[p.index()].last_child.replace(id);
                match prev_last {
                    None => self.nodes[p.index()].first_child = Some(id),
                    Some(prev) => self.nodes[prev.index()].next_sibling = Some(id),
                }
            }
        }
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Iterator over direct children.
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(id)
    }
}

/// Depth-first pre-order iterator.
pub struct Descendants<'d> {
    doc: &'d Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children: Vec<NodeId> = self.doc.children(id).collect();
        self.stack.extend(children.into_iter().rev());
        Some(id)
    }
}

/// Namespace scope: a stack of prefix bindings.
struct NsScope {
    /// `(prefix, uri, depth)`; empty `uri` undeclares the binding.
    bindings: Vec<(String, String, usize)>,
    default: Vec<(String, usize)>,
}

impl NsScope {
    fn new() -> Self {
        NsScope {
            bindings: vec![
                ("xml".to_string(), XML_NS.to_string(), 0),
                ("xmlns".to_string(), XMLNS_NS.to_string(), 0),
            ],
            default: Vec::new(),
        }
    }

    fn resolve(&self, prefix: &str) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|(p, _, _)| p == prefix)
            .map(|(_, u, _)| u.as_str())
            .filter(|u| !u.is_empty())
    }

    fn default_ns(&self) -> Option<&str> {
        self.default.last().map(|(u, _)| u.as_str()).filter(|u| !u.is_empty())
    }

    fn pop_to(&mut self, depth: usize) {
        while matches!(self.bindings.last(), Some(&(_, _, d)) if d >= depth) {
            self.bindings.pop();
        }
        while matches!(self.default.last(), Some(&(_, d)) if d >= depth) {
            self.default.pop();
        }
    }
}

/// Build a [`Document`] from source text, resolving namespaces.
pub fn build(text: &str) -> Result<Document, XmlError> {
    let mut doc = Document::default();
    let mut reader = Reader::new(text);
    let mut scope = NsScope::new();
    let mut parents: Vec<NodeId> = Vec::new();
    let mut depth = 0usize;

    loop {
        let at = reader.source_position();
        let event = reader.next_event()?;
        match event {
            Event::Eof => break,
            Event::Declaration { encoding, .. } => {
                doc.encoding = encoding.map(str::to_string);
            }
            Event::Doctype(_) => {}
            Event::Comment(c) => {
                let id = doc.push_node(Node {
                    kind: NodeKind::Comment(c.to_string()),
                    parent: parents.last().copied(),
                    first_child: None,
                    last_child: None,
                    next_sibling: None,
                    position: at,
                });
                doc.attach(parents.last().copied(), id);
            }
            Event::ProcessingInstruction { target, data } => {
                let id = doc.push_node(Node {
                    kind: NodeKind::ProcessingInstruction {
                        target: target.to_string(),
                        data: data.to_string(),
                    },
                    parent: parents.last().copied(),
                    first_child: None,
                    last_child: None,
                    next_sibling: None,
                    position: at,
                });
                doc.attach(parents.last().copied(), id);
            }
            Event::Text(_) | Event::CData(_) => {
                let t: std::borrow::Cow<'_, str> = match event {
                    Event::Text(t) => t,
                    Event::CData(t) => std::borrow::Cow::Borrowed(t),
                    _ => unreachable!("outer match arm guarantees text"),
                };
                let parent = parents.last().copied();
                // Merge adjacent text nodes.
                let merged = parent.and_then(|p| doc.node(p).last_child).and_then(|last| {
                    matches!(doc.node(last).kind, NodeKind::Text(_)).then_some(last)
                });
                match merged {
                    Some(last) => {
                        if let NodeKind::Text(existing) = &mut doc.nodes[last.index()].kind {
                            existing.push_str(&t);
                        }
                    }
                    None => {
                        let id = doc.push_node(Node {
                            kind: NodeKind::Text(t.into_owned()),
                            parent,
                            first_child: None,
                            last_child: None,
                            next_sibling: None,
                            position: at,
                        });
                        doc.attach(parent, id);
                    }
                }
            }
            Event::StartElement { name, attributes, .. } => {
                depth += 1;
                // First pass: record namespace declarations for this scope.
                for a in &attributes {
                    if a.name == "xmlns" {
                        scope.default.push((a.value.to_string(), depth));
                    } else if let Some(p) = a.name.strip_prefix("xmlns:") {
                        if p.is_empty() {
                            return Err(XmlError::new(
                                ErrorKind::InvalidName,
                                "empty prefix in xmlns declaration",
                                at,
                            ));
                        }
                        scope.bindings.push((p.to_string(), a.value.to_string(), depth));
                    }
                }
                // Second pass: resolve element and attribute names.
                let (prefix, local) = split_prefix(name).ok_or_else(|| {
                    XmlError::new(ErrorKind::InvalidName, format!("bad QName '{name}'"), at)
                })?;
                let ns = if prefix.is_empty() {
                    scope.default_ns().map(str::to_string)
                } else {
                    Some(
                        scope
                            .resolve(prefix)
                            .ok_or_else(|| {
                                XmlError::new(
                                    ErrorKind::UndeclaredPrefix,
                                    format!("undeclared namespace prefix '{prefix}'"),
                                    at,
                                )
                            })?
                            .to_string(),
                    )
                };
                let qname =
                    QName { prefix: prefix.to_string(), local: local.to_string(), namespace: ns };
                let mut resolved = Vec::with_capacity(attributes.len());
                for a in &attributes {
                    let (ap, al) = split_prefix(a.name).ok_or_else(|| {
                        XmlError::new(
                            ErrorKind::InvalidName,
                            format!("bad attribute QName '{}'", a.name),
                            at,
                        )
                    })?;
                    let ans = if a.name == "xmlns" {
                        Some(XMLNS_NS.to_string())
                    } else if ap.is_empty() {
                        None // unprefixed attributes take no namespace
                    } else {
                        Some(
                            scope
                                .resolve(ap)
                                .ok_or_else(|| {
                                    XmlError::new(
                                        ErrorKind::UndeclaredPrefix,
                                        format!("undeclared namespace prefix '{ap}'"),
                                        at,
                                    )
                                })?
                                .to_string(),
                        )
                    };
                    resolved.push(Attribute {
                        name: QName {
                            prefix: ap.to_string(),
                            local: al.to_string(),
                            namespace: ans,
                        },
                        value: a.value.to_string(),
                    });
                }
                let parent = parents.last().copied();
                let id = doc.push_node(Node {
                    kind: NodeKind::Element { name: qname, attributes: resolved },
                    parent,
                    first_child: None,
                    last_child: None,
                    next_sibling: None,
                    position: at,
                });
                doc.attach(parent, id);
                if parent.is_none() {
                    doc.root = Some(id);
                }
                parents.push(id);
            }
            Event::EndElement { .. } => {
                parents.pop();
                scope.pop_to(depth);
                depth = depth.saturating_sub(1);
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn builds_tree_shape() {
        let doc = parse("<a><b/><c><d/></c></a>").unwrap();
        let root = doc.root_element().unwrap();
        let kids: Vec<_> = doc.child_elements(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.name(kids[0]).local, "b");
        assert_eq!(doc.name(kids[1]).local, "c");
        assert_eq!(doc.child_elements(kids[1]).count(), 1);
        assert_eq!(doc.node(kids[0]).parent, Some(root));
    }

    #[test]
    fn default_namespace_applies_to_elements_not_attributes() {
        let doc = parse(r#"<a xmlns="urn:d"><b x="1"/></a>"#).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).namespace.as_deref(), Some("urn:d"));
        let b = doc.child_elements(root).next().unwrap();
        assert_eq!(doc.name(b).namespace.as_deref(), Some("urn:d"));
        let attr = &doc.attributes(b)[0];
        assert_eq!(attr.name.namespace, None);
    }

    #[test]
    fn prefixed_namespaces_resolve() {
        let doc = parse(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
                 <xsd:element name="f" xsd:kind="k"/>
               </xsd:schema>"#,
        )
        .unwrap();
        let root = doc.root_element().unwrap();
        let ns = "http://www.w3.org/2001/XMLSchema";
        assert!(doc.name(root).is(Some(ns), "schema"));
        let el = doc.child_elements(root).next().unwrap();
        assert!(doc.name(el).is(Some(ns), "element"));
        assert_eq!(doc.attribute(el, "name"), Some("f"));
        assert_eq!(doc.attribute_ns(el, Some(ns), "kind"), Some("k"));
    }

    #[test]
    fn namespace_scoping_pops_after_element() {
        let doc = parse(r#"<a><b xmlns:p="urn:p"><p:c/></b><d/></a>"#).unwrap();
        let root = doc.root_element().unwrap();
        let kids: Vec<_> = doc.child_elements(root).collect();
        let c = doc.child_elements(kids[0]).next().unwrap();
        assert_eq!(doc.name(c).namespace.as_deref(), Some("urn:p"));
        assert_eq!(doc.name(kids[1]).namespace, None);
    }

    #[test]
    fn inner_declaration_shadows_outer() {
        let doc = parse(r#"<p:a xmlns:p="urn:1"><p:b xmlns:p="urn:2"/></p:a>"#).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).namespace.as_deref(), Some("urn:1"));
        let b = doc.child_elements(root).next().unwrap();
        assert_eq!(doc.name(b).namespace.as_deref(), Some("urn:2"));
    }

    #[test]
    fn undeclared_prefix_rejected() {
        let err = parse("<p:a/>").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UndeclaredPrefix);
    }

    #[test]
    fn adjacent_text_and_cdata_merge() {
        let doc = parse("<a>one <![CDATA[& two]]> three</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).count(), 1);
        assert_eq!(doc.text_content(root), "one & two three");
    }

    #[test]
    fn descendants_pre_order() {
        let doc = parse("<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<_> = doc
            .descendants(doc.root_element().unwrap())
            .map(|n| doc.name(n).local.clone())
            .collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn children_named_filters() {
        let doc = parse("<t><element a=\"1\"/><other/><element a=\"2\"/></t>").unwrap();
        let root = doc.root_element().unwrap();
        let els: Vec<_> = doc.children_named(root, "element").collect();
        assert_eq!(els.len(), 2);
        assert_eq!(doc.attribute(els[1], "a"), Some("2"));
    }

    #[test]
    fn top_level_includes_prolog_misc() {
        let doc = parse("<!--pre--><a/><!--post-->").unwrap();
        assert_eq!(doc.top_level().len(), 3);
        assert!(matches!(doc.node(doc.top_level()[0]).kind, NodeKind::Comment(_)));
    }

    #[test]
    fn encoding_recorded() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>").unwrap();
        assert_eq!(doc.encoding.as_deref(), Some("UTF-8"));
    }

    #[test]
    fn xml_prefix_is_predeclared() {
        let doc = parse(r#"<a xml:lang="en"/>"#).unwrap();
        let root = doc.root_element().unwrap();
        let attr = &doc.attributes(root)[0];
        assert_eq!(attr.name.namespace.as_deref(), Some(XML_NS));
    }
}
