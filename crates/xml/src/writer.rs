//! Serialization of [`Document`] trees back to XML text.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};

/// Output formatting style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStyle {
    /// No whitespace added; text nodes reproduced exactly.  A compact write
    /// of a freshly parsed compact document reproduces the input (modulo
    /// attribute quoting style and resolved references).
    Compact,
    /// Children indented; whitespace-only text dropped.  Intended for
    /// human-facing output such as generated schema documents.
    Pretty {
        /// Spaces per indentation level.
        indent: usize,
    },
}

/// Serializer for DOM documents and subtrees.
pub struct Writer {
    style: WriteStyle,
}

impl Writer {
    /// Create a writer with the given style.
    pub fn new(style: WriteStyle) -> Self {
        Writer { style }
    }

    /// Serialize a whole document (all top-level nodes).
    pub fn document(&self, doc: &Document) -> String {
        let mut out = String::new();
        for &id in doc.top_level() {
            self.node(doc, id, 0, &mut out);
        }
        if matches!(self.style, WriteStyle::Pretty { .. }) {
            while out.ends_with('\n') {
                out.pop();
            }
        }
        out
    }

    /// Serialize the subtree rooted at `id`.
    pub fn subtree(&self, doc: &Document, id: NodeId) -> String {
        let mut out = String::new();
        self.node(doc, id, 0, &mut out);
        out
    }

    fn indent(&self, depth: usize, out: &mut String) {
        if let WriteStyle::Pretty { indent } = self.style {
            for _ in 0..depth * indent {
                out.push(' ');
            }
        }
    }

    fn node(&self, doc: &Document, id: NodeId, depth: usize, out: &mut String) {
        match &doc.node(id).kind {
            NodeKind::Text(t) => {
                if matches!(self.style, WriteStyle::Pretty { .. }) && t.trim().is_empty() {
                    return;
                }
                self.indent(depth, out);
                out.push_str(&escape_text(t));
                if matches!(self.style, WriteStyle::Pretty { .. }) {
                    out.push('\n');
                }
            }
            NodeKind::Comment(c) => {
                self.indent(depth, out);
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
                if matches!(self.style, WriteStyle::Pretty { .. }) {
                    out.push('\n');
                }
            }
            NodeKind::ProcessingInstruction { target, data } => {
                self.indent(depth, out);
                out.push_str("<?");
                out.push_str(target);
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
                if matches!(self.style, WriteStyle::Pretty { .. }) {
                    out.push('\n');
                }
            }
            NodeKind::Element { name, attributes } => {
                self.indent(depth, out);
                out.push('<');
                out.push_str(&name.lexical());
                for a in attributes {
                    out.push(' ');
                    out.push_str(&a.name.lexical());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&a.value));
                    out.push('"');
                }
                let children: Vec<NodeId> = doc.children(id).collect();
                let visible = match self.style {
                    WriteStyle::Compact => children.clone(),
                    WriteStyle::Pretty { .. } => children
                        .iter()
                        .copied()
                        .filter(|&c| match &doc.node(c).kind {
                            NodeKind::Text(t) => !t.trim().is_empty(),
                            _ => true,
                        })
                        .collect(),
                };
                if visible.is_empty() {
                    out.push_str("/>");
                    if matches!(self.style, WriteStyle::Pretty { .. }) {
                        out.push('\n');
                    }
                    return;
                }
                out.push('>');
                // Pretty style keeps a single text child inline.
                let inline_text = matches!(self.style, WriteStyle::Pretty { .. })
                    && visible.len() == 1
                    && matches!(doc.node(visible[0]).kind, NodeKind::Text(_));
                if inline_text {
                    if let NodeKind::Text(t) = &doc.node(visible[0]).kind {
                        out.push_str(&escape_text(t));
                    }
                } else {
                    if matches!(self.style, WriteStyle::Pretty { .. }) {
                        out.push('\n');
                    }
                    for c in visible {
                        self.node(doc, c, depth + 1, out);
                    }
                    self.indent(depth, out);
                }
                out.push_str("</");
                out.push_str(&name.lexical());
                out.push('>');
                if matches!(self.style, WriteStyle::Pretty { .. }) {
                    out.push('\n');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_round_trip() {
        for src in [
            "<a/>",
            "<a x=\"1\" y=\"2\"/>",
            "<a><b>text</b><c/></a>",
            "<r><x>1 &lt; 2</x></r>",
            "<!--c--><a/>",
        ] {
            let doc = parse(src).unwrap();
            assert_eq!(doc.to_string_compact(), src, "round trip of {src}");
        }
    }

    #[test]
    fn attribute_values_escaped_on_output() {
        let doc = parse("<a v=\"x &amp; &quot;y&quot;\"/>").unwrap();
        assert_eq!(doc.to_string_compact(), "<a v=\"x &amp; &quot;y&quot;\"/>");
    }

    #[test]
    fn pretty_indents_children() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let pretty = doc.to_string_pretty();
        assert_eq!(pretty, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
    }

    #[test]
    fn pretty_keeps_single_text_inline() {
        let doc = parse("<a><b>hi</b></a>").unwrap();
        assert_eq!(doc.to_string_pretty(), "<a>\n  <b>hi</b>\n</a>");
    }

    #[test]
    fn pretty_drops_whitespace_only_text() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.to_string_pretty(), "<a>\n  <b/>\n</a>");
    }

    #[test]
    fn subtree_serialization() {
        let doc = parse("<a><b x=\"1\"/></a>").unwrap();
        let b = doc.child_elements(doc.root_element().unwrap()).next().unwrap();
        let w = Writer::new(WriteStyle::Compact);
        assert_eq!(w.subtree(&doc, b), "<b x=\"1\"/>");
    }

    #[test]
    fn pi_serialization() {
        let doc = parse("<a><?go now?></a>").unwrap();
        assert_eq!(doc.to_string_compact(), "<a><?go now?></a>");
    }

    #[test]
    fn reparse_of_compact_output_is_identical_tree() {
        let src = "<a p=\"&lt;&gt;\"><b>1</b> tail <c/></a>";
        let doc = parse(src).unwrap();
        let again = parse(&doc.to_string_compact()).unwrap();
        assert_eq!(doc.to_string_compact(), again.to_string_compact());
    }
}
