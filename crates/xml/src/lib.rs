//! A from-scratch XML 1.0 (+ Namespaces) parser, DOM, and serializer.
//!
//! The HPDC 2001 XMIT system used the Xerces-C parser to turn XML Schema
//! documents into DOM trees that were then traversed to build native (PBIO)
//! metadata.  This crate is the equivalent substrate for the reproduction:
//! it provides
//!
//! * a streaming **pull parser** ([`Reader`]) producing [`Event`]s,
//! * an arena-based **DOM** ([`Document`], [`NodeId`]) built by [`parse`],
//! * **namespace** resolution per the *Namespaces in XML* recommendation,
//! * a **serializer** ([`Writer`]) that round-trips documents, and
//! * entity escaping/unescaping for the five predefined entities plus
//!   decimal/hex character references.
//!
//! The supported language is the subset exercised by schema documents and
//! XML-as-wire-format messages: elements, attributes, character data, CDATA
//! sections, comments, processing instructions, and the XML declaration.
//! DTDs are recognized and skipped (internal subsets are tolerated but not
//! interpreted); custom general entities are therefore not expanded.
//!
//! # Example
//!
//! ```
//! let doc = openmeta_xml::parse(
//!     "<xsd:complexType name=\"JoinRequest\" xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\
//!        <xsd:element name=\"name\" type=\"xsd:string\"/>\
//!      </xsd:complexType>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.name(root).local, "complexType");
//! assert_eq!(doc.attribute(root, "name"), Some("JoinRequest"));
//! assert_eq!(doc.children(root).count(), 1);
//! ```

#![deny(unsafe_code)]

pub mod dom;
pub mod error;
pub mod escape;
pub mod name;
pub mod reader;
pub mod writer;

pub use dom::{Attribute, Document, Node, NodeId, NodeKind};
pub use error::{ErrorKind, Position, XmlError};
pub use escape::{escape_attr, escape_text, unescape};
pub use name::{split_prefix, QName, XMLNS_NS, XML_NS};
pub use reader::{Event, RawAttribute, Reader};
pub use writer::{WriteStyle, Writer};

/// Parse a complete XML document into a [`Document`] DOM tree.
///
/// Namespace declarations are resolved during the build: every element and
/// attribute [`QName`] carries its expanded namespace URI (if any).
pub fn parse(text: &str) -> Result<Document, XmlError> {
    dom::build(text)
}

#[cfg(test)]
mod tests {
    #[test]
    fn crate_level_round_trip() {
        let src = "<a><b x=\"1\">hi</b><c/></a>";
        let doc = super::parse(src).unwrap();
        assert_eq!(doc.to_string_compact(), src);
    }
}
