//! Property-based tests for the XML parser and serializer.
//!
//! Strategy: generate random well-formed documents structurally, serialize
//! them, and require that parsing the serialization reproduces the same
//! tree.  Also: arbitrary *text* never panics the parser (it may error),
//! and escape/unescape is an identity on arbitrary strings.

use proptest::prelude::*;

use openmeta_xml::{escape_attr, escape_text, parse, unescape, Document, NodeId, NodeKind};

/// A generated XML tree, independent of the crate's DOM.
#[derive(Debug, Clone)]
enum Tree {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Tree> },
    Text(String),
    Comment(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,11}"
        .prop_filter("xml-reserved names", |s| !s.to_ascii_lowercase().starts_with("xml"))
}

/// Attribute/text payload: printable, no control chars (those require
/// references that the serializer does not emit).
fn payload_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range(' ', '~'),
            proptest::char::range('\u{A0}', '\u{2FF}'),
            Just('\u{2603}'),
        ],
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Non-empty so compact round-trips do not merge-or-drop empties;
    // ']]>' would be rejected by the writer-side parser.
    payload_strategy()
        .prop_filter("non-empty, no cdata-end", |s| !s.is_empty() && !s.contains("]]>"))
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        name_strategy().prop_map(|n| Tree::Element { name: n, attrs: vec![], children: vec![] }),
        payload_strategy()
            .prop_filter("comment body", |s| !s.contains("--") && !s.ends_with('-'))
            .prop_map(Tree::Comment),
    ];
    leaf.prop_recursive(4, 32, 5, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), payload_strategy()), 0..4),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, mut attrs, children)| {
                attrs.dedup_by(|a, b| a.0 == b.0);
                let mut seen = std::collections::HashSet::new();
                attrs.retain(|(k, _)| seen.insert(k.clone()));
                // Adjacent text children would merge on reparse; keep one.
                let mut out: Vec<Tree> = Vec::new();
                for c in children {
                    if matches!(c, Tree::Text(_)) && matches!(out.last(), Some(Tree::Text(_))) {
                        continue;
                    }
                    out.push(c);
                }
                Tree::Element { name, attrs, children: out }
            })
    })
}

fn root_strategy() -> impl Strategy<Value = Tree> {
    tree_strategy().prop_map(|t| match t {
        e @ Tree::Element { .. } => e,
        other => Tree::Element { name: "root".into(), attrs: vec![], children: vec![other] },
    })
}

fn serialize(t: &Tree, out: &mut String) {
    match t {
        Tree::Text(s) => out.push_str(&escape_text(s)),
        Tree::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Tree::Element { name, attrs, children } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    serialize(c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn assert_same(doc: &Document, id: NodeId, tree: &Tree) {
    match (&doc.node(id).kind, tree) {
        (NodeKind::Text(a), Tree::Text(b)) => assert_eq!(a, b),
        (NodeKind::Comment(a), Tree::Comment(b)) => assert_eq!(a, b),
        (NodeKind::Element { name, attributes }, Tree::Element { name: n, attrs, children }) => {
            assert_eq!(&name.local, n);
            assert_eq!(attributes.len(), attrs.len());
            for (attr, (k, v)) in attributes.iter().zip(attrs) {
                assert_eq!(&attr.name.local, k);
                assert_eq!(&attr.value, v);
            }
            let kids: Vec<NodeId> = doc.children(id).collect();
            assert_eq!(kids.len(), children.len(), "child count under <{n}>");
            for (kid, sub) in kids.iter().zip(children) {
                assert_same(doc, *kid, sub);
            }
        }
        (got, want) => panic!("node kind mismatch: got {got:?}, want {want:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_round_trip(tree in root_strategy()) {
        let mut text = String::new();
        serialize(&tree, &mut text);
        let doc = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {text}"));
        let root = doc.root_element().expect("root element");
        assert_same(&doc, root, &tree);
        // And the DOM's own serializer round-trips again.
        let re = doc.to_string_compact();
        let doc2 = parse(&re).expect("reparse of compact output");
        assert_same(&doc2, doc2.root_element().unwrap(), &tree);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_markup_soup(
        s in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()), Just(">".to_string()), Just("/".to_string()),
                Just("&".to_string()), Just("\"".to_string()), Just("a".to_string()),
                Just("<a>".to_string()), Just("</a>".to_string()), Just("=".to_string()),
                Just("<!--".to_string()), Just("-->".to_string()), Just("]]>".to_string()),
                Just("<![CDATA[".to_string()), Just("&#x41;".to_string()),
            ],
            0..30,
        ).prop_map(|v| v.concat())
    ) {
        let _ = parse(&s);
    }

    #[test]
    fn escape_unescape_identity_text(s in "\\PC{0,100}") {
        let escaped = escape_text(&s);
        let back = unescape(&escaped).unwrap();
        prop_assert_eq!(back.as_ref(), s.as_str());
    }

    #[test]
    fn escape_unescape_identity_attr(s in "\\PC{0,100}") {
        let escaped = escape_attr(&s);
        let back = unescape(&escaped).unwrap();
        prop_assert_eq!(back.as_ref(), s.as_str());
    }
}
