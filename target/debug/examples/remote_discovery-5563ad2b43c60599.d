/root/repo/target/debug/examples/remote_discovery-5563ad2b43c60599.d: examples/remote_discovery.rs

/root/repo/target/debug/examples/remote_discovery-5563ad2b43c60599: examples/remote_discovery.rs

examples/remote_discovery.rs:
