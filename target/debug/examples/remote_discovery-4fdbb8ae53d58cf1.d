/root/repo/target/debug/examples/remote_discovery-4fdbb8ae53d58cf1.d: examples/remote_discovery.rs Cargo.toml

/root/repo/target/debug/examples/libremote_discovery-4fdbb8ae53d58cf1.rmeta: examples/remote_discovery.rs Cargo.toml

examples/remote_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
