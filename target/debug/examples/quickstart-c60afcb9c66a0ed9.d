/root/repo/target/debug/examples/quickstart-c60afcb9c66a0ed9.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c60afcb9c66a0ed9.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
