/root/repo/target/debug/examples/interop_gateway-902bd366ea5ab262.d: examples/interop_gateway.rs

/root/repo/target/debug/examples/interop_gateway-902bd366ea5ab262: examples/interop_gateway.rs

examples/interop_gateway.rs:
