/root/repo/target/debug/examples/handheld_projection-45929b974229b223.d: examples/handheld_projection.rs Cargo.toml

/root/repo/target/debug/examples/libhandheld_projection-45929b974229b223.rmeta: examples/handheld_projection.rs Cargo.toml

examples/handheld_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
