/root/repo/target/debug/examples/hydrology_pipeline-06a3dc20a0425f8a.d: examples/hydrology_pipeline.rs

/root/repo/target/debug/examples/hydrology_pipeline-06a3dc20a0425f8a: examples/hydrology_pipeline.rs

examples/hydrology_pipeline.rs:
