/root/repo/target/debug/examples/handheld_projection-8104b9889969d620.d: examples/handheld_projection.rs

/root/repo/target/debug/examples/handheld_projection-8104b9889969d620: examples/handheld_projection.rs

examples/handheld_projection.rs:
