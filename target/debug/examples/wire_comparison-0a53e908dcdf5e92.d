/root/repo/target/debug/examples/wire_comparison-0a53e908dcdf5e92.d: examples/wire_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libwire_comparison-0a53e908dcdf5e92.rmeta: examples/wire_comparison.rs Cargo.toml

examples/wire_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
