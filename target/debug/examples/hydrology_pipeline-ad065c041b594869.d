/root/repo/target/debug/examples/hydrology_pipeline-ad065c041b594869.d: examples/hydrology_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libhydrology_pipeline-ad065c041b594869.rmeta: examples/hydrology_pipeline.rs Cargo.toml

examples/hydrology_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
