/root/repo/target/debug/examples/interop_gateway-91670f2d75015bc1.d: examples/interop_gateway.rs Cargo.toml

/root/repo/target/debug/examples/libinterop_gateway-91670f2d75015bc1.rmeta: examples/interop_gateway.rs Cargo.toml

examples/interop_gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
