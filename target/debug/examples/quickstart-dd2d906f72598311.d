/root/repo/target/debug/examples/quickstart-dd2d906f72598311.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dd2d906f72598311: examples/quickstart.rs

examples/quickstart.rs:
