/root/repo/target/debug/examples/wire_comparison-b10afa6479300d65.d: examples/wire_comparison.rs

/root/repo/target/debug/examples/wire_comparison-b10afa6479300d65: examples/wire_comparison.rs

examples/wire_comparison.rs:
