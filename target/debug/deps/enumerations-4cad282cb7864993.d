/root/repo/target/debug/deps/enumerations-4cad282cb7864993.d: crates/xmit/tests/enumerations.rs

/root/repo/target/debug/deps/enumerations-4cad282cb7864993: crates/xmit/tests/enumerations.rs

crates/xmit/tests/enumerations.rs:
