/root/repo/target/debug/deps/openmeta_ohttp-82d1fbeb13d59db6.d: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_ohttp-82d1fbeb13d59db6.rmeta: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs Cargo.toml

crates/ohttp/src/lib.rs:
crates/ohttp/src/client.rs:
crates/ohttp/src/error.rs:
crates/ohttp/src/server.rs:
crates/ohttp/src/source.rs:
crates/ohttp/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
