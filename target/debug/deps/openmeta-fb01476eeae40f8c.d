/root/repo/target/debug/deps/openmeta-fb01476eeae40f8c.d: crates/tools/src/bin/openmeta.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta-fb01476eeae40f8c.rmeta: crates/tools/src/bin/openmeta.rs Cargo.toml

crates/tools/src/bin/openmeta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
