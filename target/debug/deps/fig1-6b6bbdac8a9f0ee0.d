/root/repo/target/debug/deps/fig1-6b6bbdac8a9f0ee0.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-6b6bbdac8a9f0ee0.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
