/root/repo/target/debug/deps/differential-29aff78c2c2d3389.d: crates/wire/tests/differential.rs

/root/repo/target/debug/deps/differential-29aff78c2c2d3389: crates/wire/tests/differential.rs

crates/wire/tests/differential.rs:
