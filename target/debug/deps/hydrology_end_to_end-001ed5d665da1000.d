/root/repo/target/debug/deps/hydrology_end_to_end-001ed5d665da1000.d: tests/hydrology_end_to_end.rs

/root/repo/target/debug/deps/hydrology_end_to_end-001ed5d665da1000: tests/hydrology_end_to_end.rs

tests/hydrology_end_to_end.rs:
