/root/repo/target/debug/deps/proptests-4f24c0f2e549e514.d: crates/schema/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4f24c0f2e549e514: crates/schema/tests/proptests.rs

crates/schema/tests/proptests.rs:
