/root/repo/target/debug/deps/fig3-4fcf3c0e7289c65a.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-4fcf3c0e7289c65a.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
