/root/repo/target/debug/deps/fig1-6f169f52db40acf0.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-6f169f52db40acf0.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
