/root/repo/target/debug/deps/matching_wire-621c6f96a3c7a51b.d: tests/matching_wire.rs Cargo.toml

/root/repo/target/debug/deps/libmatching_wire-621c6f96a3c7a51b.rmeta: tests/matching_wire.rs Cargo.toml

tests/matching_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
