/root/repo/target/debug/deps/openmeta_repro-b81ae0d82f92a1c3.d: src/lib.rs

/root/repo/target/debug/deps/libopenmeta_repro-b81ae0d82f92a1c3.rlib: src/lib.rs

/root/repo/target/debug/deps/libopenmeta_repro-b81ae0d82f92a1c3.rmeta: src/lib.rs

src/lib.rs:
