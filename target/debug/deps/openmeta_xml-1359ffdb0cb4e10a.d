/root/repo/target/debug/deps/openmeta_xml-1359ffdb0cb4e10a.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_xml-1359ffdb0cb4e10a.rmeta: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/name.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
