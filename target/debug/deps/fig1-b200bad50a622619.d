/root/repo/target/debug/deps/fig1-b200bad50a622619.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-b200bad50a622619: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
