/root/repo/target/debug/deps/openmeta_ohttp-1cd489bbdd851799.d: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

/root/repo/target/debug/deps/libopenmeta_ohttp-1cd489bbdd851799.rlib: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

/root/repo/target/debug/deps/libopenmeta_ohttp-1cd489bbdd851799.rmeta: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

crates/ohttp/src/lib.rs:
crates/ohttp/src/client.rs:
crates/ohttp/src/error.rs:
crates/ohttp/src/server.rs:
crates/ohttp/src/source.rs:
crates/ohttp/src/url.rs:
