/root/repo/target/debug/deps/proptests-b47c8114f243dcbc.d: crates/schema/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b47c8114f243dcbc.rmeta: crates/schema/tests/proptests.rs Cargo.toml

crates/schema/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
