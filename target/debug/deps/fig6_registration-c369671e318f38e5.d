/root/repo/target/debug/deps/fig6_registration-c369671e318f38e5.d: crates/bench/benches/fig6_registration.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_registration-c369671e318f38e5.rmeta: crates/bench/benches/fig6_registration.rs Cargo.toml

crates/bench/benches/fig6_registration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
