/root/repo/target/debug/deps/enumerations-0eab644304916dab.d: crates/xmit/tests/enumerations.rs Cargo.toml

/root/repo/target/debug/deps/libenumerations-0eab644304916dab.rmeta: crates/xmit/tests/enumerations.rs Cargo.toml

crates/xmit/tests/enumerations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
