/root/repo/target/debug/deps/asdoff-3ff1c6e7f93c2449.d: crates/xmit/tests/asdoff.rs Cargo.toml

/root/repo/target/debug/deps/libasdoff-3ff1c6e7f93c2449.rmeta: crates/xmit/tests/asdoff.rs Cargo.toml

crates/xmit/tests/asdoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
