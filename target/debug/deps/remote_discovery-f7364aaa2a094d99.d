/root/repo/target/debug/deps/remote_discovery-f7364aaa2a094d99.d: tests/remote_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libremote_discovery-f7364aaa2a094d99.rmeta: tests/remote_discovery.rs Cargo.toml

tests/remote_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
