/root/repo/target/debug/deps/proptests-2f66be474c01255d.d: crates/xml/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2f66be474c01255d: crates/xml/tests/proptests.rs

crates/xml/tests/proptests.rs:
