/root/repo/target/debug/deps/full_stack-7aa235b56376a268.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-7aa235b56376a268.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
