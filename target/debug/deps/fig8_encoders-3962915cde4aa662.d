/root/repo/target/debug/deps/fig8_encoders-3962915cde4aa662.d: crates/bench/benches/fig8_encoders.rs

/root/repo/target/debug/deps/fig8_encoders-3962915cde4aa662: crates/bench/benches/fig8_encoders.rs

crates/bench/benches/fig8_encoders.rs:
