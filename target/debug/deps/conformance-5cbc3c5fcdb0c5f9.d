/root/repo/target/debug/deps/conformance-5cbc3c5fcdb0c5f9.d: crates/xml/tests/conformance.rs Cargo.toml

/root/repo/target/debug/deps/libconformance-5cbc3c5fcdb0c5f9.rmeta: crates/xml/tests/conformance.rs Cargo.toml

crates/xml/tests/conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
