/root/repo/target/debug/deps/openmeta_tools-e88e5180e8b96890.d: crates/tools/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_tools-e88e5180e8b96890.rmeta: crates/tools/src/lib.rs Cargo.toml

crates/tools/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
