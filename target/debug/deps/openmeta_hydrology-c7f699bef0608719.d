/root/repo/target/debug/deps/openmeta_hydrology-c7f699bef0608719.d: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_hydrology-c7f699bef0608719.rmeta: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs Cargo.toml

crates/hydrology/src/lib.rs:
crates/hydrology/src/components.rs:
crates/hydrology/src/dataset.rs:
crates/hydrology/src/messages.rs:
crates/hydrology/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
