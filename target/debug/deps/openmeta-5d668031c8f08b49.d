/root/repo/target/debug/deps/openmeta-5d668031c8f08b49.d: crates/tools/src/bin/openmeta.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta-5d668031c8f08b49.rmeta: crates/tools/src/bin/openmeta.rs Cargo.toml

crates/tools/src/bin/openmeta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
