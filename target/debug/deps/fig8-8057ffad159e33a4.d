/root/repo/target/debug/deps/fig8-8057ffad159e33a4.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-8057ffad159e33a4: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
