/root/repo/target/debug/deps/fig8-6110ba1158f4a0e2.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-6110ba1158f4a0e2: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
