/root/repo/target/debug/deps/format_server_integration-d77543306081f2ca.d: crates/xmit/tests/format_server_integration.rs Cargo.toml

/root/repo/target/debug/deps/libformat_server_integration-d77543306081f2ca.rmeta: crates/xmit/tests/format_server_integration.rs Cargo.toml

crates/xmit/tests/format_server_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
