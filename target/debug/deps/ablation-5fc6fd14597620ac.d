/root/repo/target/debug/deps/ablation-5fc6fd14597620ac.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-5fc6fd14597620ac.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
