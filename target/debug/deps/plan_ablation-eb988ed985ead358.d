/root/repo/target/debug/deps/plan_ablation-eb988ed985ead358.d: crates/bench/src/bin/plan_ablation.rs

/root/repo/target/debug/deps/plan_ablation-eb988ed985ead358: crates/bench/src/bin/plan_ablation.rs

crates/bench/src/bin/plan_ablation.rs:
