/root/repo/target/debug/deps/plan_ablation-45ceb030c80fa0f8.d: crates/bench/src/bin/plan_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libplan_ablation-45ceb030c80fa0f8.rmeta: crates/bench/src/bin/plan_ablation.rs Cargo.toml

crates/bench/src/bin/plan_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
