/root/repo/target/debug/deps/openmeta_bench-7284537c92f5ac95.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/openmeta_bench-7284537c92f5ac95: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
