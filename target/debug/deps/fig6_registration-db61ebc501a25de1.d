/root/repo/target/debug/deps/fig6_registration-db61ebc501a25de1.d: crates/bench/benches/fig6_registration.rs

/root/repo/target/debug/deps/fig6_registration-db61ebc501a25de1: crates/bench/benches/fig6_registration.rs

crates/bench/benches/fig6_registration.rs:
