/root/repo/target/debug/deps/nested_proptests-25bd0a7c37f35508.d: crates/pbio/tests/nested_proptests.rs

/root/repo/target/debug/deps/nested_proptests-25bd0a7c37f35508: crates/pbio/tests/nested_proptests.rs

crates/pbio/tests/nested_proptests.rs:
