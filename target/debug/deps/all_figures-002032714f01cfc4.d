/root/repo/target/debug/deps/all_figures-002032714f01cfc4.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-002032714f01cfc4: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
