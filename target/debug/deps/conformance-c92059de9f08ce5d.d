/root/repo/target/debug/deps/conformance-c92059de9f08ce5d.d: crates/xml/tests/conformance.rs

/root/repo/target/debug/deps/conformance-c92059de9f08ce5d: crates/xml/tests/conformance.rs

crates/xml/tests/conformance.rs:
