/root/repo/target/debug/deps/proptests-da40fc2d7e23c718.d: crates/xml/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-da40fc2d7e23c718.rmeta: crates/xml/tests/proptests.rs Cargo.toml

crates/xml/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
