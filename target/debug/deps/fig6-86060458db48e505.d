/root/repo/target/debug/deps/fig6-86060458db48e505.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-86060458db48e505.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
