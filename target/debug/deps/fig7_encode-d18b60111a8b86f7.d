/root/repo/target/debug/deps/fig7_encode-d18b60111a8b86f7.d: crates/bench/benches/fig7_encode.rs

/root/repo/target/debug/deps/fig7_encode-d18b60111a8b86f7: crates/bench/benches/fig7_encode.rs

crates/bench/benches/fig7_encode.rs:
