/root/repo/target/debug/deps/openmeta_tools-f2791ae4ac0c5818.d: crates/tools/src/lib.rs

/root/repo/target/debug/deps/libopenmeta_tools-f2791ae4ac0c5818.rlib: crates/tools/src/lib.rs

/root/repo/target/debug/deps/libopenmeta_tools-f2791ae4ac0c5818.rmeta: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
