/root/repo/target/debug/deps/openmeta_repro-c8a6199afd5fd328.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_repro-c8a6199afd5fd328.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
