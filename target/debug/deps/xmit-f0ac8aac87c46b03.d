/root/repo/target/debug/deps/xmit-f0ac8aac87c46b03.d: crates/xmit/src/lib.rs crates/xmit/src/codegen/mod.rs crates/xmit/src/codegen/c.rs crates/xmit/src/codegen/cpp.rs crates/xmit/src/codegen/java.rs crates/xmit/src/codegen/jvm.rs crates/xmit/src/error.rs crates/xmit/src/evolution.rs crates/xmit/src/mapping.rs crates/xmit/src/matching.rs crates/xmit/src/messaging.rs crates/xmit/src/projection.rs crates/xmit/src/toolkit.rs crates/xmit/src/watcher.rs

/root/repo/target/debug/deps/xmit-f0ac8aac87c46b03: crates/xmit/src/lib.rs crates/xmit/src/codegen/mod.rs crates/xmit/src/codegen/c.rs crates/xmit/src/codegen/cpp.rs crates/xmit/src/codegen/java.rs crates/xmit/src/codegen/jvm.rs crates/xmit/src/error.rs crates/xmit/src/evolution.rs crates/xmit/src/mapping.rs crates/xmit/src/matching.rs crates/xmit/src/messaging.rs crates/xmit/src/projection.rs crates/xmit/src/toolkit.rs crates/xmit/src/watcher.rs

crates/xmit/src/lib.rs:
crates/xmit/src/codegen/mod.rs:
crates/xmit/src/codegen/c.rs:
crates/xmit/src/codegen/cpp.rs:
crates/xmit/src/codegen/java.rs:
crates/xmit/src/codegen/jvm.rs:
crates/xmit/src/error.rs:
crates/xmit/src/evolution.rs:
crates/xmit/src/mapping.rs:
crates/xmit/src/matching.rs:
crates/xmit/src/messaging.rs:
crates/xmit/src/projection.rs:
crates/xmit/src/toolkit.rs:
crates/xmit/src/watcher.rs:
