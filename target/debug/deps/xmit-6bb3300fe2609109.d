/root/repo/target/debug/deps/xmit-6bb3300fe2609109.d: crates/xmit/src/lib.rs crates/xmit/src/codegen/mod.rs crates/xmit/src/codegen/c.rs crates/xmit/src/codegen/cpp.rs crates/xmit/src/codegen/java.rs crates/xmit/src/codegen/jvm.rs crates/xmit/src/error.rs crates/xmit/src/evolution.rs crates/xmit/src/mapping.rs crates/xmit/src/matching.rs crates/xmit/src/messaging.rs crates/xmit/src/projection.rs crates/xmit/src/toolkit.rs crates/xmit/src/watcher.rs Cargo.toml

/root/repo/target/debug/deps/libxmit-6bb3300fe2609109.rmeta: crates/xmit/src/lib.rs crates/xmit/src/codegen/mod.rs crates/xmit/src/codegen/c.rs crates/xmit/src/codegen/cpp.rs crates/xmit/src/codegen/java.rs crates/xmit/src/codegen/jvm.rs crates/xmit/src/error.rs crates/xmit/src/evolution.rs crates/xmit/src/mapping.rs crates/xmit/src/matching.rs crates/xmit/src/messaging.rs crates/xmit/src/projection.rs crates/xmit/src/toolkit.rs crates/xmit/src/watcher.rs Cargo.toml

crates/xmit/src/lib.rs:
crates/xmit/src/codegen/mod.rs:
crates/xmit/src/codegen/c.rs:
crates/xmit/src/codegen/cpp.rs:
crates/xmit/src/codegen/java.rs:
crates/xmit/src/codegen/jvm.rs:
crates/xmit/src/error.rs:
crates/xmit/src/evolution.rs:
crates/xmit/src/mapping.rs:
crates/xmit/src/matching.rs:
crates/xmit/src/messaging.rs:
crates/xmit/src/projection.rs:
crates/xmit/src/toolkit.rs:
crates/xmit/src/watcher.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
