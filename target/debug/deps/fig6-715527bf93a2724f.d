/root/repo/target/debug/deps/fig6-715527bf93a2724f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-715527bf93a2724f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
