/root/repo/target/debug/deps/plan_differential-9341b47985967627.d: crates/pbio/tests/plan_differential.rs Cargo.toml

/root/repo/target/debug/deps/libplan_differential-9341b47985967627.rmeta: crates/pbio/tests/plan_differential.rs Cargo.toml

crates/pbio/tests/plan_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
