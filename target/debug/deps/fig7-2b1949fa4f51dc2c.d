/root/repo/target/debug/deps/fig7-2b1949fa4f51dc2c.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-2b1949fa4f51dc2c: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
