/root/repo/target/debug/deps/asdoff-b6d750fc1c00b17a.d: crates/xmit/tests/asdoff.rs

/root/repo/target/debug/deps/asdoff-b6d750fc1c00b17a: crates/xmit/tests/asdoff.rs

crates/xmit/tests/asdoff.rs:
