/root/repo/target/debug/deps/openmeta_xml-c8b3e5b33691fe8d.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libopenmeta_xml-c8b3e5b33691fe8d.rlib: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libopenmeta_xml-c8b3e5b33691fe8d.rmeta: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/name.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
