/root/repo/target/debug/deps/plan_differential-0518c1e29cdddbdc.d: crates/pbio/tests/plan_differential.rs

/root/repo/target/debug/deps/plan_differential-0518c1e29cdddbdc: crates/pbio/tests/plan_differential.rs

crates/pbio/tests/plan_differential.rs:
