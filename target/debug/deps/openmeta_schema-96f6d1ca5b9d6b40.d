/root/repo/target/debug/deps/openmeta_schema-96f6d1ca5b9d6b40.d: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

/root/repo/target/debug/deps/libopenmeta_schema-96f6d1ca5b9d6b40.rlib: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

/root/repo/target/debug/deps/libopenmeta_schema-96f6d1ca5b9d6b40.rmeta: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

crates/schema/src/lib.rs:
crates/schema/src/error.rs:
crates/schema/src/model.rs:
crates/schema/src/parse.rs:
crates/schema/src/write.rs:
crates/schema/src/xsd.rs:
