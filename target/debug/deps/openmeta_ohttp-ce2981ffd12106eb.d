/root/repo/target/debug/deps/openmeta_ohttp-ce2981ffd12106eb.d: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_ohttp-ce2981ffd12106eb.rmeta: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs Cargo.toml

crates/ohttp/src/lib.rs:
crates/ohttp/src/client.rs:
crates/ohttp/src/error.rs:
crates/ohttp/src/server.rs:
crates/ohttp/src/source.rs:
crates/ohttp/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
