/root/repo/target/debug/deps/hydrology_end_to_end-ed1e762419d9225a.d: tests/hydrology_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libhydrology_end_to_end-ed1e762419d9225a.rmeta: tests/hydrology_end_to_end.rs Cargo.toml

tests/hydrology_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
