/root/repo/target/debug/deps/fig7-1d6c98a5ad814955.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-1d6c98a5ad814955: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
