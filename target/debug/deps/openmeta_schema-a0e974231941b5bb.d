/root/repo/target/debug/deps/openmeta_schema-a0e974231941b5bb.d: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_schema-a0e974231941b5bb.rmeta: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs Cargo.toml

crates/schema/src/lib.rs:
crates/schema/src/error.rs:
crates/schema/src/model.rs:
crates/schema/src/parse.rs:
crates/schema/src/write.rs:
crates/schema/src/xsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
