/root/repo/target/debug/deps/fig7-cd59280b29c848bd.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-cd59280b29c848bd.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
