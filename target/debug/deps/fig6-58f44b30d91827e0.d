/root/repo/target/debug/deps/fig6-58f44b30d91827e0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-58f44b30d91827e0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
