/root/repo/target/debug/deps/openmeta_repro-13902f9e55b5f7df.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_repro-13902f9e55b5f7df.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
