/root/repo/target/debug/deps/format_evolution-3d7963d1ad53344c.d: tests/format_evolution.rs

/root/repo/target/debug/deps/format_evolution-3d7963d1ad53344c: tests/format_evolution.rs

tests/format_evolution.rs:
