/root/repo/target/debug/deps/fig3-b4327ddb5711e485.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-b4327ddb5711e485: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
