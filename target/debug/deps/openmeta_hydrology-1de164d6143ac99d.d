/root/repo/target/debug/deps/openmeta_hydrology-1de164d6143ac99d.d: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

/root/repo/target/debug/deps/openmeta_hydrology-1de164d6143ac99d: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

crates/hydrology/src/lib.rs:
crates/hydrology/src/components.rs:
crates/hydrology/src/dataset.rs:
crates/hydrology/src/messages.rs:
crates/hydrology/src/pipeline.rs:
