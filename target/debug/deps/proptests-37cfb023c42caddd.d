/root/repo/target/debug/deps/proptests-37cfb023c42caddd.d: crates/pbio/tests/proptests.rs

/root/repo/target/debug/deps/proptests-37cfb023c42caddd: crates/pbio/tests/proptests.rs

crates/pbio/tests/proptests.rs:
