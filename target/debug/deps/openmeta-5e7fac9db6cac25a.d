/root/repo/target/debug/deps/openmeta-5e7fac9db6cac25a.d: crates/tools/src/bin/openmeta.rs

/root/repo/target/debug/deps/openmeta-5e7fac9db6cac25a: crates/tools/src/bin/openmeta.rs

crates/tools/src/bin/openmeta.rs:
