/root/repo/target/debug/deps/fig8_encoders-87214db4f8d78088.d: crates/bench/benches/fig8_encoders.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_encoders-87214db4f8d78088.rmeta: crates/bench/benches/fig8_encoders.rs Cargo.toml

crates/bench/benches/fig8_encoders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
