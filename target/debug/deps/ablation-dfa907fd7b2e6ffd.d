/root/repo/target/debug/deps/ablation-dfa907fd7b2e6ffd.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-dfa907fd7b2e6ffd: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
