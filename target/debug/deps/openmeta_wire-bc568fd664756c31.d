/root/repo/target/debug/deps/openmeta_wire-bc568fd664756c31.d: crates/wire/src/lib.rs crates/wire/src/cdr.rs crates/wire/src/error.rs crates/wire/src/giop.rs crates/wire/src/mpipack.rs crates/wire/src/pbiowire.rs crates/wire/src/soap.rs crates/wire/src/traits.rs crates/wire/src/util.rs crates/wire/src/xdr.rs crates/wire/src/xmlrpc.rs crates/wire/src/xmlwire.rs

/root/repo/target/debug/deps/openmeta_wire-bc568fd664756c31: crates/wire/src/lib.rs crates/wire/src/cdr.rs crates/wire/src/error.rs crates/wire/src/giop.rs crates/wire/src/mpipack.rs crates/wire/src/pbiowire.rs crates/wire/src/soap.rs crates/wire/src/traits.rs crates/wire/src/util.rs crates/wire/src/xdr.rs crates/wire/src/xmlrpc.rs crates/wire/src/xmlwire.rs

crates/wire/src/lib.rs:
crates/wire/src/cdr.rs:
crates/wire/src/error.rs:
crates/wire/src/giop.rs:
crates/wire/src/mpipack.rs:
crates/wire/src/pbiowire.rs:
crates/wire/src/soap.rs:
crates/wire/src/traits.rs:
crates/wire/src/util.rs:
crates/wire/src/xdr.rs:
crates/wire/src/xmlrpc.rs:
crates/wire/src/xmlwire.rs:
