/root/repo/target/debug/deps/plan_ablation-e1ec0e40499c3556.d: crates/bench/src/bin/plan_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libplan_ablation-e1ec0e40499c3556.rmeta: crates/bench/src/bin/plan_ablation.rs Cargo.toml

crates/bench/src/bin/plan_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
