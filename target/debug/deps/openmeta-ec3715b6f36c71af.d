/root/repo/target/debug/deps/openmeta-ec3715b6f36c71af.d: crates/tools/src/bin/openmeta.rs

/root/repo/target/debug/deps/openmeta-ec3715b6f36c71af: crates/tools/src/bin/openmeta.rs

crates/tools/src/bin/openmeta.rs:
