/root/repo/target/debug/deps/format_evolution-12f93ef7090e1af6.d: tests/format_evolution.rs Cargo.toml

/root/repo/target/debug/deps/libformat_evolution-12f93ef7090e1af6.rmeta: tests/format_evolution.rs Cargo.toml

tests/format_evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
