/root/repo/target/debug/deps/openmeta_wire-ea9e290d8868956c.d: crates/wire/src/lib.rs crates/wire/src/cdr.rs crates/wire/src/error.rs crates/wire/src/giop.rs crates/wire/src/mpipack.rs crates/wire/src/pbiowire.rs crates/wire/src/soap.rs crates/wire/src/traits.rs crates/wire/src/util.rs crates/wire/src/xdr.rs crates/wire/src/xmlrpc.rs crates/wire/src/xmlwire.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_wire-ea9e290d8868956c.rmeta: crates/wire/src/lib.rs crates/wire/src/cdr.rs crates/wire/src/error.rs crates/wire/src/giop.rs crates/wire/src/mpipack.rs crates/wire/src/pbiowire.rs crates/wire/src/soap.rs crates/wire/src/traits.rs crates/wire/src/util.rs crates/wire/src/xdr.rs crates/wire/src/xmlrpc.rs crates/wire/src/xmlwire.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/cdr.rs:
crates/wire/src/error.rs:
crates/wire/src/giop.rs:
crates/wire/src/mpipack.rs:
crates/wire/src/pbiowire.rs:
crates/wire/src/soap.rs:
crates/wire/src/traits.rs:
crates/wire/src/util.rs:
crates/wire/src/xdr.rs:
crates/wire/src/xmlrpc.rs:
crates/wire/src/xmlwire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
