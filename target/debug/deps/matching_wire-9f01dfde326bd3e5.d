/root/repo/target/debug/deps/matching_wire-9f01dfde326bd3e5.d: tests/matching_wire.rs

/root/repo/target/debug/deps/matching_wire-9f01dfde326bd3e5: tests/matching_wire.rs

tests/matching_wire.rs:
