/root/repo/target/debug/deps/fig1-834b37bb5e268df8.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-834b37bb5e268df8: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
