/root/repo/target/debug/deps/full_stack-16db04db83e30a10.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-16db04db83e30a10: tests/full_stack.rs

tests/full_stack.rs:
