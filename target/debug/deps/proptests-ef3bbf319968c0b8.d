/root/repo/target/debug/deps/proptests-ef3bbf319968c0b8.d: crates/pbio/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ef3bbf319968c0b8.rmeta: crates/pbio/tests/proptests.rs Cargo.toml

crates/pbio/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
