/root/repo/target/debug/deps/nested_proptests-ca768bb397dcf6ca.d: crates/pbio/tests/nested_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libnested_proptests-ca768bb397dcf6ca.rmeta: crates/pbio/tests/nested_proptests.rs Cargo.toml

crates/pbio/tests/nested_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
