/root/repo/target/debug/deps/openmeta_hydrology-f6da8b98507fa0a0.d: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

/root/repo/target/debug/deps/libopenmeta_hydrology-f6da8b98507fa0a0.rlib: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

/root/repo/target/debug/deps/libopenmeta_hydrology-f6da8b98507fa0a0.rmeta: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

crates/hydrology/src/lib.rs:
crates/hydrology/src/components.rs:
crates/hydrology/src/dataset.rs:
crates/hydrology/src/messages.rs:
crates/hydrology/src/pipeline.rs:
