/root/repo/target/debug/deps/openmeta_schema-7af71836476eba8e.d: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

/root/repo/target/debug/deps/openmeta_schema-7af71836476eba8e: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

crates/schema/src/lib.rs:
crates/schema/src/error.rs:
crates/schema/src/model.rs:
crates/schema/src/parse.rs:
crates/schema/src/write.rs:
crates/schema/src/xsd.rs:
