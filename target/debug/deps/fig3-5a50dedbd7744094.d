/root/repo/target/debug/deps/fig3-5a50dedbd7744094.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5a50dedbd7744094: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
