/root/repo/target/debug/deps/fig7_encode-1640159860425631.d: crates/bench/benches/fig7_encode.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_encode-1640159860425631.rmeta: crates/bench/benches/fig7_encode.rs Cargo.toml

crates/bench/benches/fig7_encode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
