/root/repo/target/debug/deps/openmeta_bench-35caa21ee6aa7746.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_bench-35caa21ee6aa7746.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
