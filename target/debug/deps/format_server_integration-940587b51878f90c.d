/root/repo/target/debug/deps/format_server_integration-940587b51878f90c.d: crates/xmit/tests/format_server_integration.rs

/root/repo/target/debug/deps/format_server_integration-940587b51878f90c: crates/xmit/tests/format_server_integration.rs

crates/xmit/tests/format_server_integration.rs:
