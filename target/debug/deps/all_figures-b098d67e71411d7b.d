/root/repo/target/debug/deps/all_figures-b098d67e71411d7b.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-b098d67e71411d7b: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
