/root/repo/target/debug/deps/fig3_registration-0c4905eb2ffaecdb.d: crates/bench/benches/fig3_registration.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_registration-0c4905eb2ffaecdb.rmeta: crates/bench/benches/fig3_registration.rs Cargo.toml

crates/bench/benches/fig3_registration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
