/root/repo/target/debug/deps/openmeta_bench-bd9d1529b2a23dd5.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_bench-bd9d1529b2a23dd5.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
