/root/repo/target/debug/deps/differential-049576a45ac89bae.d: crates/wire/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-049576a45ac89bae.rmeta: crates/wire/tests/differential.rs Cargo.toml

crates/wire/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
