/root/repo/target/debug/deps/openmeta_pbio-9e3255d07445dcbf.d: crates/pbio/src/lib.rs crates/pbio/src/codec.rs crates/pbio/src/convert.rs crates/pbio/src/error.rs crates/pbio/src/field.rs crates/pbio/src/file.rs crates/pbio/src/format.rs crates/pbio/src/layout.rs crates/pbio/src/machine.rs crates/pbio/src/marshal.rs crates/pbio/src/plan.rs crates/pbio/src/record.rs crates/pbio/src/registry.rs crates/pbio/src/server.rs crates/pbio/src/types.rs crates/pbio/src/value.rs

/root/repo/target/debug/deps/libopenmeta_pbio-9e3255d07445dcbf.rlib: crates/pbio/src/lib.rs crates/pbio/src/codec.rs crates/pbio/src/convert.rs crates/pbio/src/error.rs crates/pbio/src/field.rs crates/pbio/src/file.rs crates/pbio/src/format.rs crates/pbio/src/layout.rs crates/pbio/src/machine.rs crates/pbio/src/marshal.rs crates/pbio/src/plan.rs crates/pbio/src/record.rs crates/pbio/src/registry.rs crates/pbio/src/server.rs crates/pbio/src/types.rs crates/pbio/src/value.rs

/root/repo/target/debug/deps/libopenmeta_pbio-9e3255d07445dcbf.rmeta: crates/pbio/src/lib.rs crates/pbio/src/codec.rs crates/pbio/src/convert.rs crates/pbio/src/error.rs crates/pbio/src/field.rs crates/pbio/src/file.rs crates/pbio/src/format.rs crates/pbio/src/layout.rs crates/pbio/src/machine.rs crates/pbio/src/marshal.rs crates/pbio/src/plan.rs crates/pbio/src/record.rs crates/pbio/src/registry.rs crates/pbio/src/server.rs crates/pbio/src/types.rs crates/pbio/src/value.rs

crates/pbio/src/lib.rs:
crates/pbio/src/codec.rs:
crates/pbio/src/convert.rs:
crates/pbio/src/error.rs:
crates/pbio/src/field.rs:
crates/pbio/src/file.rs:
crates/pbio/src/format.rs:
crates/pbio/src/layout.rs:
crates/pbio/src/machine.rs:
crates/pbio/src/marshal.rs:
crates/pbio/src/plan.rs:
crates/pbio/src/record.rs:
crates/pbio/src/registry.rs:
crates/pbio/src/server.rs:
crates/pbio/src/types.rs:
crates/pbio/src/value.rs:
