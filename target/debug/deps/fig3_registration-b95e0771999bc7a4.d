/root/repo/target/debug/deps/fig3_registration-b95e0771999bc7a4.d: crates/bench/benches/fig3_registration.rs

/root/repo/target/debug/deps/fig3_registration-b95e0771999bc7a4: crates/bench/benches/fig3_registration.rs

crates/bench/benches/fig3_registration.rs:
