/root/repo/target/debug/deps/openmeta_xml-1a8bb71cb75306e5.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/openmeta_xml-1a8bb71cb75306e5: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/name.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
