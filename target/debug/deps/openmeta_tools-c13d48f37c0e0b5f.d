/root/repo/target/debug/deps/openmeta_tools-c13d48f37c0e0b5f.d: crates/tools/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_tools-c13d48f37c0e0b5f.rmeta: crates/tools/src/lib.rs Cargo.toml

crates/tools/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
