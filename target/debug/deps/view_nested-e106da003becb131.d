/root/repo/target/debug/deps/view_nested-e106da003becb131.d: crates/pbio/tests/view_nested.rs

/root/repo/target/debug/deps/view_nested-e106da003becb131: crates/pbio/tests/view_nested.rs

crates/pbio/tests/view_nested.rs:
