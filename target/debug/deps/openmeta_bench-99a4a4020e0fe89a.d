/root/repo/target/debug/deps/openmeta_bench-99a4a4020e0fe89a.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libopenmeta_bench-99a4a4020e0fe89a.rlib: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libopenmeta_bench-99a4a4020e0fe89a.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
