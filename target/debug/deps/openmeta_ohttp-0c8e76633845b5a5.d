/root/repo/target/debug/deps/openmeta_ohttp-0c8e76633845b5a5.d: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

/root/repo/target/debug/deps/openmeta_ohttp-0c8e76633845b5a5: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

crates/ohttp/src/lib.rs:
crates/ohttp/src/client.rs:
crates/ohttp/src/error.rs:
crates/ohttp/src/server.rs:
crates/ohttp/src/source.rs:
crates/ohttp/src/url.rs:
