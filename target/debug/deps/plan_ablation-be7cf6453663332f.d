/root/repo/target/debug/deps/plan_ablation-be7cf6453663332f.d: crates/bench/src/bin/plan_ablation.rs

/root/repo/target/debug/deps/plan_ablation-be7cf6453663332f: crates/bench/src/bin/plan_ablation.rs

crates/bench/src/bin/plan_ablation.rs:
