/root/repo/target/debug/deps/view_nested-dc8fa24cb7b15aaa.d: crates/pbio/tests/view_nested.rs Cargo.toml

/root/repo/target/debug/deps/libview_nested-dc8fa24cb7b15aaa.rmeta: crates/pbio/tests/view_nested.rs Cargo.toml

crates/pbio/tests/view_nested.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
