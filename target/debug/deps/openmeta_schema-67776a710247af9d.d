/root/repo/target/debug/deps/openmeta_schema-67776a710247af9d.d: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs Cargo.toml

/root/repo/target/debug/deps/libopenmeta_schema-67776a710247af9d.rmeta: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs Cargo.toml

crates/schema/src/lib.rs:
crates/schema/src/error.rs:
crates/schema/src/model.rs:
crates/schema/src/parse.rs:
crates/schema/src/write.rs:
crates/schema/src/xsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
