/root/repo/target/debug/deps/remote_discovery-914475f389e1ea00.d: tests/remote_discovery.rs

/root/repo/target/debug/deps/remote_discovery-914475f389e1ea00: tests/remote_discovery.rs

tests/remote_discovery.rs:
