/root/repo/target/debug/deps/openmeta_repro-12bc1b5492a6076c.d: src/lib.rs

/root/repo/target/debug/deps/openmeta_repro-12bc1b5492a6076c: src/lib.rs

src/lib.rs:
