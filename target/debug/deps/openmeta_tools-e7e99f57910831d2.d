/root/repo/target/debug/deps/openmeta_tools-e7e99f57910831d2.d: crates/tools/src/lib.rs

/root/repo/target/debug/deps/openmeta_tools-e7e99f57910831d2: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
