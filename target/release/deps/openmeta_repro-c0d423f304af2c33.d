/root/repo/target/release/deps/openmeta_repro-c0d423f304af2c33.d: src/lib.rs

/root/repo/target/release/deps/libopenmeta_repro-c0d423f304af2c33.rlib: src/lib.rs

/root/repo/target/release/deps/libopenmeta_repro-c0d423f304af2c33.rmeta: src/lib.rs

src/lib.rs:
