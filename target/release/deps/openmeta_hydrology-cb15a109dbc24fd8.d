/root/repo/target/release/deps/openmeta_hydrology-cb15a109dbc24fd8.d: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

/root/repo/target/release/deps/libopenmeta_hydrology-cb15a109dbc24fd8.rlib: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

/root/repo/target/release/deps/libopenmeta_hydrology-cb15a109dbc24fd8.rmeta: crates/hydrology/src/lib.rs crates/hydrology/src/components.rs crates/hydrology/src/dataset.rs crates/hydrology/src/messages.rs crates/hydrology/src/pipeline.rs

crates/hydrology/src/lib.rs:
crates/hydrology/src/components.rs:
crates/hydrology/src/dataset.rs:
crates/hydrology/src/messages.rs:
crates/hydrology/src/pipeline.rs:
