/root/repo/target/release/deps/fig8-7145dfe89ec2e3af.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-7145dfe89ec2e3af: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
