/root/repo/target/release/deps/all_figures-c1c7df718294fcd4.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-c1c7df718294fcd4: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
