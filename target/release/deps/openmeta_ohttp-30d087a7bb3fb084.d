/root/repo/target/release/deps/openmeta_ohttp-30d087a7bb3fb084.d: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

/root/repo/target/release/deps/libopenmeta_ohttp-30d087a7bb3fb084.rlib: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

/root/repo/target/release/deps/libopenmeta_ohttp-30d087a7bb3fb084.rmeta: crates/ohttp/src/lib.rs crates/ohttp/src/client.rs crates/ohttp/src/error.rs crates/ohttp/src/server.rs crates/ohttp/src/source.rs crates/ohttp/src/url.rs

crates/ohttp/src/lib.rs:
crates/ohttp/src/client.rs:
crates/ohttp/src/error.rs:
crates/ohttp/src/server.rs:
crates/ohttp/src/source.rs:
crates/ohttp/src/url.rs:
