/root/repo/target/release/deps/fig6-074a65dfd80e2455.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-074a65dfd80e2455: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
