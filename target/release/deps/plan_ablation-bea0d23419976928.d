/root/repo/target/release/deps/plan_ablation-bea0d23419976928.d: crates/bench/src/bin/plan_ablation.rs

/root/repo/target/release/deps/plan_ablation-bea0d23419976928: crates/bench/src/bin/plan_ablation.rs

crates/bench/src/bin/plan_ablation.rs:
