/root/repo/target/release/deps/openmeta_schema-c63da6836b29da64.d: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

/root/repo/target/release/deps/libopenmeta_schema-c63da6836b29da64.rlib: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

/root/repo/target/release/deps/libopenmeta_schema-c63da6836b29da64.rmeta: crates/schema/src/lib.rs crates/schema/src/error.rs crates/schema/src/model.rs crates/schema/src/parse.rs crates/schema/src/write.rs crates/schema/src/xsd.rs

crates/schema/src/lib.rs:
crates/schema/src/error.rs:
crates/schema/src/model.rs:
crates/schema/src/parse.rs:
crates/schema/src/write.rs:
crates/schema/src/xsd.rs:
