/root/repo/target/release/deps/fig3-0f03bd829ccc9a6d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-0f03bd829ccc9a6d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
