/root/repo/target/release/deps/rand-b774234bb46940ff.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-b774234bb46940ff.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-b774234bb46940ff.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
