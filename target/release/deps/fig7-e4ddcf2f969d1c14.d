/root/repo/target/release/deps/fig7-e4ddcf2f969d1c14.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-e4ddcf2f969d1c14: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
