/root/repo/target/release/deps/openmeta_bench-df0198a88d0a13f7.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libopenmeta_bench-df0198a88d0a13f7.rlib: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libopenmeta_bench-df0198a88d0a13f7.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
