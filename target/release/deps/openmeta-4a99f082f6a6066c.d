/root/repo/target/release/deps/openmeta-4a99f082f6a6066c.d: crates/tools/src/bin/openmeta.rs

/root/repo/target/release/deps/openmeta-4a99f082f6a6066c: crates/tools/src/bin/openmeta.rs

crates/tools/src/bin/openmeta.rs:
