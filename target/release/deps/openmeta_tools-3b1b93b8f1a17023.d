/root/repo/target/release/deps/openmeta_tools-3b1b93b8f1a17023.d: crates/tools/src/lib.rs

/root/repo/target/release/deps/libopenmeta_tools-3b1b93b8f1a17023.rlib: crates/tools/src/lib.rs

/root/repo/target/release/deps/libopenmeta_tools-3b1b93b8f1a17023.rmeta: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
