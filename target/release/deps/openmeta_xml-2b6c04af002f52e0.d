/root/repo/target/release/deps/openmeta_xml-2b6c04af002f52e0.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libopenmeta_xml-2b6c04af002f52e0.rlib: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libopenmeta_xml-2b6c04af002f52e0.rmeta: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/name.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/name.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
