//! The Hydrology application of the paper's §4.5 / Figure 5, end to end:
//!
//! ```text
//! data file → presend → flow2d → coupler → Vis5D ×2
//! ```
//!
//! Every component discovers the shared message formats from a local HTTP
//! metadata server at startup; frames flow over TCP as PBIO-encoded
//! `FlowField2D` records, and Vis5D sink 0 sends a `ControlMsg` back to
//! presend mid-run asking it to thin the stream.
//!
//! ```text
//! cargo run --example hydrology_pipeline
//! ```

use std::time::Duration;

use openmeta_hydrology::{Pipeline, PipelineConfig};

fn main() {
    let config = PipelineConfig {
        nx: 32,
        ny: 32,
        timesteps: 24,
        seed: 2001,
        decimation: 2,
        sinks: 2,
        control_switch: Some((4, 6)), // after 4 frames, ask for 1-in-6
        pace: Some(Duration::from_millis(2)),
        source_file: None,
    };
    println!(
        "running hydrology pipeline: {}x{} grid, {} timesteps, decimation {}, {} sinks",
        config.nx, config.ny, config.timesteps, config.decimation, config.sinks
    );
    let report = Pipeline::new(config).run();

    println!("\nmetadata served from: {}", report.metadata_url);
    println!("frames produced by data source : {}", report.produced);
    println!("frames forwarded by presend    : {}", report.forwarded);
    println!("frames transformed by flow2d   : {}", report.transformed);
    for sink in &report.sinks {
        println!("\n{} (components announced: {:?})", sink.name, sink.joined_from);
        println!("  step |      min |      max |     mean   (momentum field)");
        for f in &sink.frames {
            println!("  {:>4} | {:>8.4} | {:>8.4} | {:>8.4}", f.timestep, f.min, f.max, f.mean);
        }
    }
}
