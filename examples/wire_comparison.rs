//! Encode one record under every wire format the paper compares
//! (Figure 8 / §4.1): PBIO, MPI-style pack, CORBA CDR, XDR, and XML as
//! ASCII text — and print sizes plus a preview of the bytes.
//!
//! ```text
//! cargo run --example wire_comparison
//! ```

use std::sync::Arc;

use openmeta_wire::all_formats;
use xmit::{FormatRegistry, FormatSpec, IOField, MachineModel, RawRecord};

fn preview(bytes: &[u8]) -> String {
    let head: String = bytes
        .iter()
        .take(24)
        .map(|&b| {
            if (0x20..0x7f).contains(&b) {
                (b as char).to_string()
            } else {
                format!("\\x{b:02x}")
            }
        })
        .collect();
    format!("{head}{}", if bytes.len() > 24 { "…" } else { "" })
}

fn main() {
    let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
    let fmt = registry
        .register(FormatSpec::new(
            "SimpleData",
            vec![
                IOField::auto("timestep", "integer", 4),
                IOField::auto("size", "integer", 4),
                IOField::auto("data", "float[size]", 4),
            ],
        ))
        .unwrap();
    let mut rec = RawRecord::new(fmt.clone());
    rec.set_i64("timestep", 9999).unwrap();
    rec.set_f64_array("data", &[12.345f64; 16].map(|x| x as f32 as f64)).unwrap();

    println!("SimpleData with 16 floats, encoded under each wire format:\n");
    println!("{:<6} {:>7}  first bytes", "format", "bytes");
    let mut pbio_size = 0usize;
    for wire in all_formats(registry.clone()) {
        let bytes = wire.encode_vec(&rec).expect("encodes");
        if wire.name() == "pbio" {
            pbio_size = bytes.len();
        }
        println!("{:<6} {:>7}  {}", wire.name(), bytes.len(), preview(&bytes));
        // Round-trip sanity: every format reproduces the record.
        let back = wire.decode(&bytes, &fmt).expect("decodes");
        assert_eq!(back.get_i64("timestep").unwrap(), 9999);
        assert_eq!(back.get_f64_array("data").unwrap().len(), 16);
    }
    let xml = all_formats(registry.clone())
        .into_iter()
        .find(|w| w.name() == "xml")
        .unwrap()
        .encode_vec(&rec)
        .unwrap();
    println!(
        "\nXML expansion factor vs PBIO: {:.1}x (the paper reports 3x for\n\
         SimpleData and cites 6-8x as typical for mixed messages)",
        xml.len() as f64 / pbio_size as f64
    );
}
