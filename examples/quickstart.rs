//! Quickstart: define a message format in XML Schema, bind it through
//! XMIT, and exchange binary records — no compiled-in metadata anywhere.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xmit::{MachineModel, Xmit};

fn main() {
    // 1. The message format, as the paper's Figure 2 writes it: an XML
    //    Schema complexType.  In production this text lives on an HTTP
    //    server; here we load it directly.
    let metadata = r#"
      <xsd:complexType name="ASDOffEvent"
          xmlns:xsd="http://www.w3.org/2001/XMLSchema">
        <xsd:element name="centerID" type="xsd:string" />
        <xsd:element name="airline" type="xsd:string" />
        <xsd:element name="flightNum" type="xsd:integer" />
        <xsd:element name="off" type="xsd:unsignedLong" />
      </xsd:complexType>"#;

    // 2. Discovery + binding: parse the metadata and generate native
    //    (PBIO) format descriptors for this machine.
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(metadata).expect("valid metadata");
    let token = toolkit.bind("ASDOffEvent").expect("bindable");
    println!("bound '{}' -> format id {}", token.type_name, token.id());
    println!("native struct layout: {} bytes", token.format.record_size);
    for f in &token.format.fields {
        println!(
            "  .{:<10} offset {:>3}, {} bytes ({})",
            f.name,
            f.offset,
            f.size,
            f.kind.describe()
        );
    }

    // 3. Marshal a record to the binary wire format.
    let mut rec = token.new_record();
    rec.set_string("centerID", "ZTL").unwrap();
    rec.set_string("airline", "DAL").unwrap();
    rec.set_i64("flightNum", 1573).unwrap();
    rec.set_u64("off", 991_234_567).unwrap();
    let wire = xmit::encode(&rec).expect("encodes");
    println!("\nencoded {} bytes (binary, not XML text)", wire.len());

    // 4. Unmarshal on the receiving side (same registry here; across
    //    machines the format id resolves via a format server).
    let back = xmit::decode(&wire, toolkit.registry()).expect("decodes");
    println!(
        "decoded: centerID={} airline={} flightNum={} off={}",
        back.get_string("centerID").unwrap(),
        back.get_string("airline").unwrap(),
        back.get_i64("flightNum").unwrap(),
        back.get_u64("off").unwrap(),
    );

    // 5. Bonus: the same metadata generates language bindings.
    let ct = toolkit.definition("ASDOffEvent").unwrap();
    println!("\n--- generated Java class ---");
    print!("{}", xmit::codegen::java::generate_class(&ct, None).unwrap());
    println!("--- generated C header (Figure 2 inverse) ---");
    print!("{}", xmit::codegen::c::generate_header(&ct).unwrap());
}
