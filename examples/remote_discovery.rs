//! Remote metadata discovery and live format evolution.
//!
//! A metadata document hosted on an HTTP server defines the message
//! format.  A "SPARC32" sender (the paper's testbed machine model) and a
//! native receiver each discover it independently, exchange a record
//! across the byte-order/width gap, and then the format **evolves on the
//! server** — the sender refreshes, starts sending v2 messages with an
//! extra field, and the unchanged v1 receiver keeps decoding (PBIO's
//! restricted format evolution).
//!
//! ```text
//! cargo run --example remote_discovery
//! ```

use xmit::{HttpServer, MachineModel, Xmit};

const V1: &str = r#"
  <xsd:complexType name="Reading"
      xmlns:xsd="http://www.w3.org/2001/XMLSchema">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="level" type="xsd:double" />
  </xsd:complexType>"#;

const V2: &str = r#"
  <xsd:complexType name="Reading"
      xmlns:xsd="http://www.w3.org/2001/XMLSchema">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="level" type="xsd:double" />
    <xsd:element name="turbidity" type="xsd:double" />
  </xsd:complexType>"#;

fn main() {
    // A central metadata server: "changes to the message formats used by
    // distributed programs can be centralized" (§3).
    let server = HttpServer::start().expect("http server");
    server.put_xml("/formats/reading.xsd", V1);
    let url = server.url_for("/formats/reading.xsd");
    println!("metadata hosted at {url}");

    // The sender models the paper's big-endian 32-bit SPARC.
    let sender = Xmit::new(MachineModel::SPARC32);
    sender.load_url(&url).expect("sender discovery");
    let tok_v1 = sender.bind("Reading").expect("sender bind");

    // The receiver is this machine, with its own independent discovery.
    let receiver = Xmit::new(MachineModel::native());
    receiver.load_url(&url).expect("receiver discovery");
    receiver.bind("Reading").expect("receiver bind");

    // v1 exchange: the receiver needs the sender's descriptor once, out
    // of band (in the full system a format server supplies it by id).
    receiver.registry().register_descriptor((*tok_v1.format).clone());
    let mut rec = tok_v1.new_record();
    rec.set_string("station", "chattahoochee-02").unwrap();
    rec.set_f64("level", 3.85).unwrap();
    let wire = xmit::encode(&rec).unwrap();
    let got = xmit::decode(&wire, receiver.registry()).unwrap();
    println!(
        "\nv1 exchange (SPARC32 BE -> native): station={} level={}",
        got.get_string("station").unwrap(),
        got.get_f64("level").unwrap()
    );

    // The format evolves centrally; only the sender refreshes.
    server.put_xml("/formats/reading.xsd", V2);
    sender.refresh(&url).expect("sender refresh");
    let tok_v2 = sender.bind("Reading").expect("sender rebind");
    println!("\nformat evolved on the server: v1 id {} -> v2 id {}", tok_v1.id(), tok_v2.id());

    receiver.registry().register_descriptor((*tok_v2.format).clone());
    let mut rec = tok_v2.new_record();
    rec.set_string("station", "chattahoochee-02").unwrap();
    rec.set_f64("level", 4.10).unwrap();
    rec.set_f64("turbidity", 12.5).unwrap();
    let wire = xmit::encode(&rec).unwrap();

    // The receiver still holds its v1 binding — the new field is simply
    // not visible to it, and nothing breaks or recompiles.
    let got = xmit::decode(&wire, receiver.registry()).unwrap();
    println!(
        "v2 message read by v1 receiver: station={} level={} (turbidity ignored: {})",
        got.get_string("station").unwrap(),
        got.get_f64("level").unwrap(),
        got.get_f64("turbidity").is_err(),
    );
    println!("\nHTTP metadata fetches served: {}", server.hit_count());
}
