//! An interoperability gateway: XML at the edge, binary in the core —
//! the paper's thesis in one program.
//!
//! Loosely-coupled external parties speak the text protocols of 2001
//! (SOAP envelopes, XML-RPC calls, bare XML).  The gateway:
//!
//! 1. uses XMIT's **schema matching** (§3) to figure out which loaded
//!    format an incoming message matches,
//! 2. decodes it from whichever text dialect it arrived in,
//! 3. re-encodes it as a **PBIO binary** record for the high-performance
//!    core, reporting the size/cost difference.
//!
//! ```text
//! cargo run --example interop_gateway
//! ```

use openmeta_wire::{SoapWire, WireFormat, XmlRpcWire, XmlWire};
use xmit::{MachineModel, RawRecord, Xmit};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:schema xmlns:xsd="{XSD}">
             <xsd:complexType name="SimpleData">
               <xsd:element name="timestep" type="xsd:integer" />
               <xsd:element name="size" type="xsd:integer" />
               <xsd:element name="data" type="xsd:float" maxOccurs="*"
                   dimensionName="size" />
             </xsd:complexType>
             <xsd:complexType name="JoinRequest">
               <xsd:element name="name" type="xsd:string" />
               <xsd:element name="server" type="xsd:unsignedLong" />
               <xsd:element name="pid" type="xsd:unsignedLong" />
             </xsd:complexType>
           </xsd:schema>"#
    )
}

/// Incoming traffic from three different text-speaking parties.
fn edge_traffic() -> Vec<(&'static str, String)> {
    vec![
        (
            "bare XML",
            "<SimpleData><timestep>42</timestep><size>3</size>\
             <data>1.5</data><data>2.5</data><data>3.5</data></SimpleData>"
                .to_string(),
        ),
        (
            "SOAP envelope",
            "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\">\
             <SOAP-ENV:Body><JoinRequest><name>vis-client-7</name>\
             <server>1</server><pid>31337</pid></JoinRequest>\
             </SOAP-ENV:Body></SOAP-ENV:Envelope>"
                .to_string(),
        ),
        (
            "XML-RPC call",
            "<methodCall><methodName>xmit.deliver.SimpleData</methodName>\
             <params><param><value><struct>\
             <member><name>timestep</name><value><i4>43</i4></value></member>\
             <member><name>size</name><value><i4>2</i4></value></member>\
             <member><name>data</name><value><array><data>\
             <value><double>9.5</double></value><value><double>10.5</double></value>\
             </data></array></value></member>\
             </struct></value></param></params></methodCall>"
                .to_string(),
        ),
    ]
}

/// Strip protocol envelopes down to the payload element for matching.
fn payload_of(message: &str) -> String {
    if message.starts_with("<SOAP-ENV:") {
        // Matching runs on the Body's first child.
        let start = message.find("<SOAP-ENV:Body>").map(|i| i + "<SOAP-ENV:Body>".len());
        let end = message.find("</SOAP-ENV:Body>");
        if let (Some(s), Some(e)) = (start, end) {
            return message[s..e].to_string();
        }
    }
    if message.starts_with("<methodCall>") {
        // XML-RPC names the format in the method itself; synthesize a
        // minimal element for the matcher.
        if let Some(rest) = message.split("<methodName>xmit.deliver.").nth(1) {
            if let Some(name) = rest.split("</methodName>").next() {
                return format!("<{name}/>");
            }
        }
    }
    message.to_string()
}

fn main() {
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&metadata()).expect("metadata loads");
    let candidates: Vec<xmit::ComplexType> =
        toolkit.loaded_types().into_iter().filter_map(|n| toolkit.definition(&n)).collect();

    println!("gateway formats loaded: {:?}\n", toolkit.loaded_types());
    for (dialect, message) in edge_traffic() {
        // 1. Which format is this? (schema-checking live messages, §3)
        let payload = payload_of(&message);
        let matched = xmit::best_match(&payload, &candidates, 0.4)
            .expect("matching runs")
            .expect("a candidate clears the threshold");
        let token = toolkit.bind(&matched.name).expect("binds");

        // 2. Decode from the arriving dialect.
        let record: RawRecord = if message.starts_with("<SOAP-ENV:") {
            SoapWire::new().decode(message.as_bytes(), &token.format).expect("soap")
        } else if message.starts_with("<methodCall>") {
            XmlRpcWire::new().decode(message.as_bytes(), &token.format).expect("xmlrpc")
        } else {
            XmlWire::new().decode(message.as_bytes(), &token.format).expect("xml")
        };

        // 3. Re-encode as binary for the core.
        let binary = xmit::encode(&record).expect("binary encode");
        println!(
            "{dialect:<14} -> matched {:<12} {:>5} text bytes -> {:>3} binary bytes ({:.1}x smaller)",
            matched.name,
            message.len(),
            binary.len(),
            message.len() as f64 / binary.len() as f64,
        );
        // Prove the hop was lossless for the interesting fields.
        match matched.name.as_str() {
            "SimpleData" => {
                println!(
                    "                 timestep={} data={:?}",
                    record.get_i64("timestep").unwrap(),
                    record.get_f64_array("data").unwrap()
                );
            }
            "JoinRequest" => {
                println!(
                    "                 name={} pid={}",
                    record.get_string("name").unwrap(),
                    record.get_u64("pid").unwrap()
                );
            }
            _ => {}
        }
    }
}
