//! The paper's §1 future-work scenario, running: "less capable
//! visualization engines such as handhelds can customize remote metadata
//! for their own needs."
//!
//! A simulation server publishes full-fat `FlowField2D` frames (doubles,
//! all fields).  A handheld client *projects* the remote metadata down to
//! the three fields it can afford — narrowed to 32-bit floats — binds the
//! projection, and decodes the **same wire bytes** the big clients get.
//! The sender never learns the handheld exists.
//!
//! ```text
//! cargo run --example handheld_projection
//! ```

use openmeta_hydrology::components::build_flow_record;
use openmeta_hydrology::{hydrology_schema_xml, FlowDataset};
use xmit::{project_type, HttpServer, MachineModel, Projection, Xmit};

fn main() {
    // The metadata server and a full-capability sender.
    let http = HttpServer::start().expect("http server");
    http.put_xml("/formats/hydrology.xsd", hydrology_schema_xml());
    let url = http.url_for("/formats/hydrology.xsd");

    let server = Xmit::new(MachineModel::native());
    server.load_url(&url).expect("server discovery");
    let full = server.bind("FlowField2D").expect("server bind");

    let frame = FlowDataset::new(48, 48, 2001).frame_at(9);
    let rec = build_flow_record(&full, &frame).expect("build frame");
    let wire = xmit::encode(&rec).expect("encode");
    println!(
        "server format : {} fields, {} bytes/record, wire message {} bytes",
        full.format.total_field_count(),
        full.format.record_size,
        wire.len()
    );

    // The handheld: discovers the same metadata, derives its own view.
    let handheld = Xmit::new(MachineModel::native());
    handheld.load_url(&url).expect("handheld discovery");
    let remote = handheld.definition("FlowField2D").expect("loaded");
    // Composed fields (the GridMetadata header) are not projectable —
    // the handheld keeps only the depth surface, narrowed to f32.
    let projected = project_type(&remote, &Projection::keeping(["depth"]).with_narrowing())
        .expect("projection");
    let doc = openmeta_schema::to_xml(&openmeta_schema::SchemaDocument {
        types: vec![projected],
        enums: vec![],
    });
    handheld.load_str(&doc).expect("projection loads");
    let small = handheld.bind("FlowField2DProjected").expect("handheld bind");
    println!(
        "handheld view : {} fields, {} bytes/record ({}% of the full layout)",
        small.format.total_field_count(),
        small.format.record_size,
        small.format.record_size * 100 / full.format.record_size.max(1)
    );

    // Same bytes, narrower view.
    handheld.registry().register_descriptor((*full.format).clone());
    let got = xmit::decode_with(&wire, handheld.registry(), &small.format)
        .expect("decode through projection");
    let depth = got.get_f64_array("depth").expect("depth present");
    let (min, max) = depth
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!(
        "handheld sees : {} depth samples at f32 precision, range {min:.3}..{max:.3}",
        depth.len()
    );
    assert!(got.get_f64_array("velocity").is_err(), "velocity dropped by projection");
    println!("velocity field: dropped by the projection, exactly as requested");
}
