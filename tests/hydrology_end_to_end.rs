//! Experiment E7 (DESIGN.md): the Figure 5 Hydrology pipeline end to
//! end — five components in threads, TCP data plane, HTTP metadata
//! discovery, Vis5D feedback control.

use openmeta_hydrology::components::{build_flow_record, extract_frame, flow2d_transform};
use openmeta_hydrology::{FlowDataset, Pipeline, PipelineConfig};
use xmit::{MachineModel, Xmit};

#[test]
fn pipeline_delivers_transformed_frames_to_all_sinks() {
    let report = Pipeline::new(PipelineConfig {
        nx: 20,
        ny: 10,
        timesteps: 6,
        sinks: 3,
        ..PipelineConfig::default()
    })
    .run();
    assert_eq!(report.produced, 6);
    assert_eq!(report.transformed, 6);
    assert_eq!(report.sinks.len(), 3);
    for sink in &report.sinks {
        assert_eq!(sink.frames.len(), 6);
    }
    // All sinks agree exactly (same records fanned out by the coupler).
    for s in &report.sinks[1..] {
        assert_eq!(s.frames, report.sinks[0].frames);
    }
}

#[test]
fn sink_statistics_match_an_out_of_band_computation() {
    // What the pipeline delivers must equal running the transform locally
    // on the same deterministic dataset: marshaling is lossless.
    let (nx, ny, seed) = (16, 12, 77);
    let report = Pipeline::new(PipelineConfig {
        nx,
        ny,
        timesteps: 5,
        seed,
        sinks: 1,
        ..PipelineConfig::default()
    })
    .run();
    let ds = FlowDataset::new(nx, ny, seed);
    for (t, stat) in report.sinks[0].frames.iter().enumerate() {
        let expected = flow2d_transform(&ds.frame_at(t as i64));
        let (min, max, mean) = {
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for &v in &expected.depth {
                mn = mn.min(v);
                mx = mx.max(v);
                sum += v;
            }
            (mn, mx, sum / expected.depth.len() as f64)
        };
        assert_eq!(stat.timestep, t as i64);
        assert_eq!(stat.min, min);
        assert_eq!(stat.max, max);
        assert!((stat.mean - mean).abs() < 1e-12);
    }
}

/// §1's server-scalability scenario: "server-based applications in which
/// single servers must provide information to large numbers of clients."
/// One coupler fans identical frames out to a dozen Vis5D clients, each
/// of which independently discovered the formats over HTTP.
#[test]
fn coupler_scales_to_many_clients() {
    let sinks = 12;
    let report = Pipeline::new(PipelineConfig {
        nx: 12,
        ny: 12,
        timesteps: 4,
        sinks,
        ..PipelineConfig::default()
    })
    .run();
    assert_eq!(report.sinks.len(), sinks);
    for s in &report.sinks {
        assert_eq!(s.frames.len(), 4, "{} dropped frames", s.name);
        assert_eq!(s.frames, report.sinks[0].frames, "{} diverged", s.name);
    }
}

#[test]
fn flow_records_survive_a_simulated_heterogeneous_hop() {
    // The same FlowField2D record sent from a big-endian 32-bit machine
    // model decodes bit-exactly on the native model.
    let sparc = Xmit::new(MachineModel::SPARC32);
    sparc.load_str(&openmeta_hydrology::hydrology_schema_xml()).unwrap();
    let s_token = sparc.bind("FlowField2D").unwrap();

    let native = Xmit::new(MachineModel::native());
    native.load_str(&openmeta_hydrology::hydrology_schema_xml()).unwrap();
    native.bind("FlowField2D").unwrap();
    native.registry().register_descriptor((*s_token.format).clone());

    let frame = FlowDataset::new(9, 7, 5).frame_at(2);
    let rec = build_flow_record(&s_token, &frame).unwrap();
    let wire = xmit::encode(&rec).unwrap();
    let got = xmit::decode(&wire, native.registry()).unwrap();
    assert_eq!(got.format().machine, MachineModel::native());
    assert_eq!(extract_frame(&got).unwrap(), frame);
}
