//! Mixed-version fleet interop: every compatible version pairing of the
//! `Telemetry` format negotiates at connection setup and interoperates,
//! over raw XMIT links and over ECho channels on both transport
//! backends; the one breaking variant is bounced at the handshake —
//! before any record crosses the wire — and reconnections ride the pair
//! cache with zero plan recompiles and zero steady-state allocations.

use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use openmeta_echo::{Backend, ChannelConfig, ChannelHost, ChannelSubscriber, EchoError};
use openmeta_net::TransportConfig;
use openmeta_pbio::{FormatDescriptor, FormatRegistry, MachineModel};
use xmit::{NegotiationCache, PairVerdict, Xmit, XmitError, XmitReceiver, XmitSender};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

/// One version of the fleet's shared `Telemetry` format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// The baseline everyone started from.
    V1,
    /// Gained a trailing `tag` field.
    Grown,
    /// Lost the `station` field.
    Shrunk,
    /// Same fields, `station` moved ahead of `reading`.
    Reordered,
    /// `reading` widened from float to double.
    Widened,
    /// `timestep` retyped to a string — breaking.
    Retyped,
}

const COMPATIBLE: [Variant; 5] =
    [Variant::V1, Variant::Grown, Variant::Shrunk, Variant::Reordered, Variant::Widened];

fn xml(v: Variant) -> String {
    let timestep = match v {
        Variant::Retyped => r#"<xsd:element name="timestep" type="xsd:string" />"#,
        _ => r#"<xsd:element name="timestep" type="xsd:integer" />"#,
    };
    let reading = match v {
        Variant::Widened => r#"<xsd:element name="reading" type="xsd:double" />"#,
        _ => r#"<xsd:element name="reading" type="xsd:float" />"#,
    };
    let station = r#"<xsd:element name="station" type="xsd:string" />"#;
    let samples = r#"<xsd:element name="samples" type="xsd:double" minOccurs="0"
        maxOccurs="*" dimensionPlacement="before" dimensionName="nsamples" />"#;
    let tag = r#"<xsd:element name="tag" type="xsd:long" />"#;
    let body = match v {
        Variant::Shrunk => format!("{timestep}{reading}{samples}"),
        Variant::Reordered => format!("{timestep}{station}{reading}{samples}"),
        Variant::Grown => format!("{timestep}{reading}{samples}{station}{tag}"),
        _ => format!("{timestep}{reading}{samples}{station}"),
    };
    format!(r#"<xsd:complexType name="Telemetry" xmlns:xsd="{XSD}">{body}</xsd:complexType>"#)
}

fn bind(v: Variant, machine: MachineModel) -> (Xmit, Arc<FormatDescriptor>) {
    let xm = Xmit::new(machine);
    xm.load_str(&xml(v)).unwrap();
    let format = xm.bind("Telemetry").unwrap().format.clone();
    (xm, format)
}

/// The verdict negotiation must reach for an ordered (sender, receiver)
/// variant pairing.
fn expected_verdict(s: Variant, r: Variant) -> PairVerdict {
    if s == r {
        PairVerdict::Identical
    } else if s == Variant::Widened || r == Variant::Widened {
        PairVerdict::Widening
    } else {
        PairVerdict::Projectable
    }
}

fn fill(xm: &Xmit, v: Variant, t: i64) -> openmeta_pbio::RawRecord {
    let token = xm.bind("Telemetry").unwrap();
    let mut rec = token.new_record();
    rec.set_i64("timestep", t).unwrap();
    rec.set_f64("reading", t as f64 * 0.5).unwrap();
    rec.set_f64_array("samples", &[1.0, 2.0, 3.0]).unwrap();
    if v != Variant::Shrunk {
        rec.set_string("station", "fleet").unwrap();
    }
    if v == Variant::Grown {
        rec.set_i64("tag", 99).unwrap();
    }
    rec
}

/// Every ordered pairing of the five compatible variants (both
/// directions of every version skew) negotiates and delivers records.
#[test]
fn point_to_point_matrix_interoperates_across_versions() {
    for s in COMPATIBLE {
        for r in COMPATIBLE {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let rx_thread = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let (rx_xmit, _) = bind(r, MachineModel::native());
                let mut rx = XmitReceiver::new(stream, rx_xmit.registry().clone());
                rx.set_negotiation_cache(Arc::new(NegotiationCache::new()));
                let mut seen = Vec::new();
                while let Some(rec) = rx.recv().unwrap() {
                    seen.push(rec.get_i64("timestep").unwrap());
                }
                seen
            });

            let (tx_xmit, format) = bind(s, MachineModel::native());
            let mut tx = XmitSender::connect(addr).unwrap();
            let accept = tx.negotiate(&[&format]).unwrap();
            assert_eq!(
                accept.verdict_for(format.id()),
                Some(expected_verdict(s, r)),
                "pairing {s:?} -> {r:?}"
            );
            for t in 0..3 {
                tx.send(&fill(&tx_xmit, s, t)).unwrap();
            }
            drop(tx);
            assert_eq!(rx_thread.join().unwrap(), vec![0, 1, 2], "pairing {s:?} -> {r:?}");
        }
    }
}

/// The breaking variant is refused during the handshake, in both
/// directions, before a single record is accepted.
#[test]
fn incompatible_pairing_is_rejected_at_handshake() {
    for (s, r) in [(Variant::V1, Variant::Retyped), (Variant::Retyped, Variant::V1)] {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let rx_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (rx_xmit, _) = bind(r, MachineModel::native());
            let mut rx = XmitReceiver::new(stream, rx_xmit.registry().clone());
            rx.set_negotiation_cache(Arc::new(NegotiationCache::new()));
            (rx.recv().map(|_| ()), 0u32)
        });

        let (_tx_xmit, format) = bind(s, MachineModel::native());
        let mut tx = XmitSender::connect(addr).unwrap();
        let err = tx.negotiate(&[&format]).unwrap_err();
        match &err {
            XmitError::Negotiation(reason) => {
                assert!(
                    reason.contains("incompatible versions"),
                    "pairing {s:?} -> {r:?}: unexpected reason: {reason}"
                );
            }
            other => panic!("pairing {s:?} -> {r:?}: expected Negotiation, got {other}"),
        }
        let (rx_outcome, records) = rx_thread.join().unwrap();
        assert!(rx_outcome.is_err(), "receiver must surface the rejection");
        assert_eq!(records, 0, "no record may precede the rejection");
    }
}

/// Reconnections are steady state: one pair-cache miss ever, every
/// later handshake a hit, no convert plan recompiles, and the marshal
/// path stays allocation-free.
#[test]
fn reconnect_loop_rides_the_pair_cache() {
    const RECONNECTS: usize = 6;
    let (rx_xmit, _) = bind(Variant::Grown, MachineModel::native());
    let registry: Arc<FormatRegistry> = rx_xmit.registry().clone();
    let cache = Arc::new(NegotiationCache::new());

    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let (ack_tx, ack_rx) = mpsc::channel::<u64>();
    let thread_registry = registry.clone();
    let thread_cache = cache.clone();
    let rx_thread = std::thread::spawn(move || {
        for _ in 0..RECONNECTS {
            let (stream, _) = listener.accept().unwrap();
            let mut rx = XmitReceiver::new(stream, thread_registry.clone());
            rx.set_negotiation_cache(thread_cache.clone());
            let mut n = 0u64;
            while rx.recv().unwrap().is_some() {
                n += 1;
            }
            ack_tx.send(n).unwrap();
        }
    });

    let (tx_xmit, format) = bind(Variant::V1, MachineModel::native());
    let rec = fill(&tx_xmit, Variant::V1, 7);
    let mut plan_misses_after_first = 0u64;
    for h in 0..RECONNECTS {
        let mut tx = XmitSender::connect(addr).unwrap();
        let accept = tx.negotiate(&[&format]).unwrap();
        assert_eq!(accept.verdict_for(format.id()), Some(PairVerdict::Projectable));
        for _ in 0..4 {
            tx.send(&rec).unwrap();
        }
        let warm = tx.marshal_stats().allocs;
        for _ in 0..16 {
            tx.send(&rec).unwrap();
        }
        assert_eq!(tx.marshal_stats().allocs, warm, "steady sends must not allocate");
        drop(tx);
        assert_eq!(ack_rx.recv().unwrap(), 20);
        let plan_misses =
            registry.plan_cache_stats().misses + tx_xmit.registry().plan_cache_stats().misses;
        if h == 0 {
            plan_misses_after_first = plan_misses;
        } else {
            assert_eq!(plan_misses, plan_misses_after_first, "reconnect {h} recompiled a plan");
        }
    }
    rx_thread.join().unwrap();

    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "one first contact");
    assert_eq!(stats.hits, (RECONNECTS - 1) as u64, "every reconnect a cache hit");
    assert_eq!(stats.rejected, 0);
}

/// A mixed-version ECho fleet: the host publishes its v1 channel, five
/// versions of subscriber (two seats each) negotiate their own formats
/// at SUBSCRIBE time, the breaking version bounces with SUB_ERR, and
/// the host's pair cache amortizes repeated versions.
fn echo_fleet(backend: Backend) {
    const EVENTS: usize = 8;
    let host = ChannelHost::start(ChannelConfig { backend, ..ChannelConfig::default() }).unwrap();
    let mut doc = openmeta_schema::parse_str(&xml(Variant::V1)).unwrap();
    let channel = host.create_channel(&doc.types.remove(0)).unwrap();
    let addr = host.addr();
    let id = channel.format_id();

    let versions = [Variant::Grown, Variant::Shrunk, Variant::Reordered, Variant::Widened];
    let mut handles = Vec::new();
    for v in versions {
        for _ in 0..2 {
            handles.push(std::thread::spawn(move || -> Result<Vec<i64>, String> {
                let (_xm, format) = bind(v, MachineModel::native());
                let mut sub = ChannelSubscriber::connect_versioned(
                    addr,
                    id,
                    &format,
                    &TransportConfig::default(),
                )
                .map_err(|e| format!("{v:?}: subscribe: {e}"))?;
                let mut seen = Vec::new();
                while let Some(rec) = sub.recv().map_err(|e| format!("{v:?}: recv: {e}"))? {
                    seen.push(rec.get_i64("timestep").map_err(|e| format!("{v:?}: {e}"))?);
                }
                Ok(seen)
            }));
        }
    }
    // An unversioned (old-protocol) subscriber rides along untouched.
    handles.push(std::thread::spawn(move || -> Result<Vec<i64>, String> {
        let mut sub =
            ChannelSubscriber::connect(addr, id, None).map_err(|e| format!("identity: {e}"))?;
        let mut seen = Vec::new();
        while let Some(rec) = sub.recv().map_err(|e| format!("identity: {e}"))? {
            seen.push(rec.get_i64("timestep").map_err(|e| e.to_string())?);
        }
        Ok(seen)
    }));

    let expected_subs = versions.len() * 2 + 1;
    let ramp = std::time::Instant::now();
    while channel.subscriber_count() < expected_subs {
        assert!(
            ramp.elapsed() < Duration::from_secs(10),
            "only {}/{expected_subs} subscribers attached",
            channel.subscriber_count()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The breaking version is refused a seat at the handshake.
    let (_xm, retyped) = bind(Variant::Retyped, MachineModel::native());
    let refused =
        ChannelSubscriber::connect_versioned(addr, id, &retyped, &TransportConfig::default());
    match refused.map(|_| ()) {
        Err(EchoError::Rejected(reason)) => {
            assert!(reason.contains("incompatible versions"), "reason: {reason}")
        }
        other => panic!("breaking version must be rejected, got {other:?}"),
    }

    let mut rec = channel.new_record();
    rec.set_f64("reading", 0.5).unwrap();
    rec.set_f64_array("samples", &[4.0; 5]).unwrap();
    rec.set_string("station", "host").unwrap();
    for t in 0..EVENTS {
        rec.set_i64("timestep", t as i64).unwrap();
        channel.publish(&rec).unwrap();
    }
    drop(channel);
    let stats = host.negotiation_stats();
    drop(host);

    let want: Vec<i64> = (0..EVENTS as i64).collect();
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), want, "backend {backend:?}");
    }
    // One miss per distinct version, plus the retyped first contact
    // (a rejection is classified once, then cached like any pair).
    assert_eq!(stats.misses, versions.len() as u64 + 1);
    assert_eq!(stats.hits, versions.len() as u64, "second seat of each version hits");
    assert_eq!(stats.rejected, 1, "the retyped offer");
}

#[test]
fn echo_fleet_mixed_versions_threaded_backend() {
    echo_fleet(Backend::Threaded);
}

#[test]
fn echo_fleet_mixed_versions_event_loop_backend() {
    echo_fleet(Backend::EventLoop);
}
