//! Experiment E6 (DESIGN.md): PBIO's restricted format evolution through
//! the full XMIT stack — "elements may be added to message formats
//! without causing receivers of previous versions of the message to
//! fail" (§5).

use xmit::{HttpServer, MachineModel, Xmit};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn doc(extra_fields: &str) -> String {
    format!(
        r#"<xsd:complexType name="Sample" xmlns:xsd="{XSD}">
             <xsd:element name="station" type="xsd:string" />
             <xsd:element name="level" type="xsd:double" />
             {extra_fields}
           </xsd:complexType>"#
    )
}

#[test]
fn v2_sender_to_v1_receiver_and_back() {
    // Receiver binds v1 and never changes.
    let receiver = Xmit::new(MachineModel::native());
    receiver.load_str(&doc("")).unwrap();
    let v1 = receiver.bind("Sample").unwrap();

    // Sender binds v2 with two added fields.
    let sender = Xmit::new(MachineModel::native());
    sender
        .load_str(&doc(r#"<xsd:element name="turbidity" type="xsd:double" />
               <xsd:element name="operator" type="xsd:string" />"#))
        .unwrap();
    let v2 = sender.bind("Sample").unwrap();
    assert_ne!(v1.id(), v2.id());

    // v2 → v1: extra fields are ignored.
    let mut rec = v2.new_record();
    rec.set_string("station", "upstream-7").unwrap();
    rec.set_f64("level", 2.25).unwrap();
    rec.set_f64("turbidity", 40.0).unwrap();
    rec.set_string("operator", "pmw").unwrap();
    let wire = xmit::encode(&rec).unwrap();
    receiver.registry().register_descriptor((*v2.format).clone());
    let got = xmit::decode(&wire, receiver.registry()).unwrap();
    assert_eq!(got.format().fields.len(), 2, "receiver stays on v1");
    assert_eq!(got.get_string("station").unwrap(), "upstream-7");
    assert_eq!(got.get_f64("level").unwrap(), 2.25);
    assert!(got.get_f64("turbidity").is_err());

    // v1 → v2: missing fields default to zero, nothing fails.
    let mut old = v1.new_record();
    old.set_string("station", "downstream-1").unwrap();
    old.set_f64("level", 1.5).unwrap();
    let wire = xmit::encode(&old).unwrap();
    sender.registry().register_descriptor((*v1.format).clone());
    let got = xmit::decode(&wire, sender.registry()).unwrap();
    assert_eq!(got.get_string("station").unwrap(), "downstream-1");
    assert_eq!(got.get_f64("turbidity").unwrap(), 0.0);
    assert_eq!(got.get_string("operator").unwrap(), "");
}

#[test]
fn central_format_change_without_receiver_restart() {
    // The paper's usability story: the format changes on the server; the
    // sender refreshes; a receiver that never re-fetched keeps working.
    let server = HttpServer::start().unwrap();
    server.put_xml("/s.xsd", doc(""));
    let url = server.url_for("/s.xsd");

    let sender = Xmit::new(MachineModel::native());
    sender.load_url(&url).unwrap();
    let receiver = Xmit::new(MachineModel::native());
    receiver.load_url(&url).unwrap();
    receiver.bind("Sample").unwrap();

    // Exchange under v1.
    let t1 = sender.bind("Sample").unwrap();
    receiver.registry().register_descriptor((*t1.format).clone());
    let mut rec = t1.new_record();
    rec.set_f64("level", 9.0).unwrap();
    let got = xmit::decode(&xmit::encode(&rec).unwrap(), receiver.registry()).unwrap();
    assert_eq!(got.get_f64("level").unwrap(), 9.0);

    // Evolve centrally; only the sender refreshes.
    server.put_xml("/s.xsd", doc(r#"<xsd:element name="flags" type="xsd:int" />"#));
    sender.refresh(&url).unwrap();
    let t2 = sender.bind("Sample").unwrap();
    assert_ne!(t1.id(), t2.id());
    receiver.registry().register_descriptor((*t2.format).clone());
    let mut rec = t2.new_record();
    rec.set_f64("level", 10.5).unwrap();
    rec.set_i64("flags", 3).unwrap();
    let got = xmit::decode(&xmit::encode(&rec).unwrap(), receiver.registry()).unwrap();
    assert_eq!(got.get_f64("level").unwrap(), 10.5);
    assert!(got.get_i64("flags").is_err(), "receiver still speaks v1");
}

#[test]
fn renamed_field_is_a_clean_default_not_corruption() {
    // Evolution by rename: the old name vanishes (defaults), the new name
    // is invisible to old receivers — values never silently cross wires.
    let a = Xmit::new(MachineModel::native());
    a.load_str(&doc("")).unwrap();
    let ta = a.bind("Sample").unwrap();

    let b = Xmit::new(MachineModel::native());
    b.load_str(&format!(
        r#"<xsd:complexType name="Sample" xmlns:xsd="{XSD}">
                 <xsd:element name="station" type="xsd:string" />
                 <xsd:element name="depth_m" type="xsd:double" />
               </xsd:complexType>"#
    ))
    .unwrap();
    let tb = b.bind("Sample").unwrap();

    let mut rec = tb.new_record();
    rec.set_string("station", "x").unwrap();
    rec.set_f64("depth_m", 7.5).unwrap();
    let wire = xmit::encode(&rec).unwrap();
    a.registry().register_descriptor((*tb.format).clone());
    let got = xmit::decode(&wire, a.registry()).unwrap();
    assert_eq!(got.format().id(), ta.id());
    assert_eq!(got.get_string("station").unwrap(), "x");
    assert_eq!(got.get_f64("level").unwrap(), 0.0, "renamed field defaults, never aliases");
}
