//! Cross-crate integration: PBIO data files carrying XMIT-bound records,
//! the comparator wire formats over real Hydrology payloads, and the
//! dynamic value bridge — every public plane of the system in one place.

use std::sync::Arc;

use openmeta_hydrology::components::build_flow_record;
use openmeta_hydrology::{hydrology_schema_xml, FlowDataset};
use openmeta_pbio::file::{FileReader, FileWriter};
use openmeta_wire::all_formats;
use xmit::{MachineModel, Value, Xmit};

fn toolkit() -> Xmit {
    let t = Xmit::new(MachineModel::native());
    t.load_str(&hydrology_schema_xml()).unwrap();
    t
}

/// PBIO files are self-describing: write Hydrology frames to a file, read
/// them back with a reader that knows nothing but the bytes.
#[test]
fn pbio_file_round_trip_with_xmit_bound_formats() {
    let t = toolkit();
    let flow = t.bind("FlowField2D").unwrap();
    let join = t.bind("JoinRequest").unwrap();

    let mut writer = FileWriter::new(Vec::new()).unwrap();
    let ds = FlowDataset::new(6, 5, 3);
    for ts in 0..4 {
        let rec = build_flow_record(&flow, &ds.frame_at(ts)).unwrap();
        writer.write_record(&rec).unwrap();
    }
    let mut j = join.new_record();
    j.set_string("name", "archiver").unwrap();
    writer.write_record(&j).unwrap();
    let bytes = writer.finish().unwrap();

    let mut reader = FileReader::new(&bytes[..]).unwrap();
    let mut flow_frames = 0;
    let mut joins = 0;
    while let Some(rec) = reader.next_record().unwrap() {
        match rec.format().name.as_str() {
            "FlowField2D" => {
                let ts = rec.get_i64("meta.timestep").unwrap();
                let expected = ds.frame_at(ts);
                assert_eq!(rec.get_f64_array("depth").unwrap(), expected.depth);
                flow_frames += 1;
            }
            "JoinRequest" => {
                assert_eq!(rec.get_string("name").unwrap(), "archiver");
                joins += 1;
            }
            other => panic!("unexpected format {other}"),
        }
    }
    assert_eq!((flow_frames, joins), (4, 1));
}

/// Every comparator wire format round-trips a real Hydrology bulk record
/// to identical values (sizes differ wildly; meaning must not).
#[test]
fn comparators_agree_on_hydrology_records() {
    let t = toolkit();
    let flow = t.bind("FlowField2D").unwrap();
    let frame = FlowDataset::new(12, 10, 9).frame_at(1);
    let rec = build_flow_record(&flow, &frame).unwrap();
    let fmt = rec.format().clone();
    let registry = t.registry().clone();

    let reference = Value::from_record(&rec).unwrap();
    for wire in all_formats(registry) {
        let bytes = wire.encode_vec(&rec).unwrap_or_else(|e| panic!("{}: {e}", wire.name()));
        let back = wire.decode(&bytes, &fmt).unwrap_or_else(|e| panic!("{}: {e}", wire.name()));
        assert_eq!(
            Value::from_record(&back).unwrap(),
            reference,
            "{} changed the record",
            wire.name()
        );
    }
}

/// The Value bridge composes with binding: build a record from a dynamic
/// tree, push it through the wire, and read it back as a tree.
#[test]
fn value_tree_to_wire_and_back() {
    use openmeta_pbio::value::RecordValue;
    let t = toolkit();
    let token = t.bind("SimpleData").unwrap();
    let tree = Value::Record(RecordValue {
        format_name: "SimpleData".to_string(),
        fields: vec![
            ("timestep".to_string(), Value::Int(5)),
            ("data".to_string(), Value::FloatArray(vec![0.25, 0.5, 0.75])),
        ],
    });
    let rec = tree.into_record(token.format.clone()).unwrap();
    assert_eq!(rec.get_i64("size").unwrap(), 3, "length field synthesized and set");
    let wire = xmit::encode(&rec).unwrap();
    let back = xmit::decode(&wire, t.registry()).unwrap();
    let Value::Record(rv) = Value::from_record(&back).unwrap() else { panic!() };
    assert_eq!(rv.get("timestep"), Some(&Value::Int(5)));
    assert_eq!(rv.get("data"), Some(&Value::FloatArray(vec![0.25, 0.5, 0.75])));
}

/// Binding many formats from many threads against one shared registry.
#[test]
fn concurrent_binding_is_safe_and_deduplicated() {
    let t = Arc::new(toolkit());
    let mut handles = Vec::new();
    for _ in 0..8 {
        let t = t.clone();
        handles.push(std::thread::spawn(move || {
            for name in openmeta_hydrology::HYDROLOGY_TYPES {
                t.bind(name).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 5 top-level types + nested GridMetadata inside FlowField2D share
    // content-addressed ids, so the registry holds exactly one descriptor
    // per distinct format.
    assert_eq!(t.registry().len(), 5);
}
