//! Schema matching against *real* XML-wire traffic: every message the
//! XML wire format produces must be identified as its own format among
//! all the Hydrology candidates, regardless of payload.

use proptest::prelude::*;

use openmeta_hydrology::components::build_flow_record;
use openmeta_hydrology::{hydrology_schema_xml, FlowDataset};
use openmeta_wire::{WireFormat, XmlWire};
use xmit::{match_message, ComplexType, MachineModel, Xmit};

fn candidates(toolkit: &Xmit) -> Vec<ComplexType> {
    toolkit.loaded_types().into_iter().filter_map(|n| toolkit.definition(&n)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simple_data_messages_identify_themselves(
        timestep in -1_000_000i64..1_000_000,
        data in proptest::collection::vec(-1e6f64..1e6, 0..24),
    ) {
        let toolkit = Xmit::new(MachineModel::native());
        toolkit.load_str(&hydrology_schema_xml()).unwrap();
        let token = toolkit.bind("SimpleData").unwrap();
        let mut rec = token.new_record();
        rec.set_i64("timestep", timestep).unwrap();
        let narrowed: Vec<f64> = data.iter().map(|&x| x as f32 as f64).collect();
        rec.set_f64_array("data", &narrowed).unwrap();
        let bytes = XmlWire::new().encode_vec(&rec).unwrap();
        let text = String::from_utf8(bytes).unwrap();

        let reports = match_message(&text, &candidates(&toolkit)).unwrap();
        prop_assert_eq!(&reports[0].type_name, "SimpleData");
        prop_assert!(reports[0].score > 0.9, "score {}", reports[0].score);
    }

    #[test]
    fn control_messages_identify_themselves(
        command in 0i64..5,
        steps in 0i64..100,
        note in "[a-zA-Z0-9 ]{0,20}",
    ) {
        let toolkit = Xmit::new(MachineModel::native());
        toolkit.load_str(&hydrology_schema_xml()).unwrap();
        let token = toolkit.bind("ControlMsg").unwrap();
        let mut rec = token.new_record();
        rec.set_string("target", "presend").unwrap();
        rec.set_i64("command", command).unwrap();
        rec.set_i64("steps", steps).unwrap();
        rec.set_string("note", note).unwrap();
        let bytes = XmlWire::new().encode_vec(&rec).unwrap();
        let text = String::from_utf8(bytes).unwrap();

        let reports = match_message(&text, &candidates(&toolkit)).unwrap();
        prop_assert_eq!(&reports[0].type_name, "ControlMsg");
    }
}

#[test]
fn flow_field_messages_identify_themselves() {
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&hydrology_schema_xml()).unwrap();
    let token = toolkit.bind("FlowField2D").unwrap();
    let frame = FlowDataset::new(6, 4, 3).frame_at(1);
    let rec = build_flow_record(&token, &frame).unwrap();
    let text = String::from_utf8(XmlWire::new().encode_vec(&rec).unwrap()).unwrap();
    let reports = match_message(&text, &candidates(&toolkit)).unwrap();
    assert_eq!(reports[0].type_name, "FlowField2D");
    assert!(reports[0].score > 0.9, "score {}", reports[0].score);
}

/// Cross-identification: each format's wire output must score its own
/// definition strictly above every other candidate.
#[test]
fn no_format_confuses_the_matcher() {
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_str(&hydrology_schema_xml()).unwrap();
    let wire = XmlWire::new();

    let mut messages: Vec<(String, String)> = Vec::new();
    {
        let t = toolkit.bind("SimpleData").unwrap();
        let mut r = t.new_record();
        r.set_i64("timestep", 1).unwrap();
        r.set_f64_array("data", &[1.0]).unwrap();
        messages
            .push(("SimpleData".into(), String::from_utf8(wire.encode_vec(&r).unwrap()).unwrap()));
    }
    {
        let t = toolkit.bind("JoinRequest").unwrap();
        let mut r = t.new_record();
        r.set_string("name", "x").unwrap();
        messages
            .push(("JoinRequest".into(), String::from_utf8(wire.encode_vec(&r).unwrap()).unwrap()));
    }
    {
        let t = toolkit.bind("GridMetadata").unwrap();
        let r = t.new_record();
        messages.push((
            "GridMetadata".into(),
            String::from_utf8(wire.encode_vec(&r).unwrap()).unwrap(),
        ));
    }

    let cands = candidates(&toolkit);
    for (expected, text) in &messages {
        let reports = match_message(text, &cands).unwrap();
        assert_eq!(
            &reports[0].type_name, expected,
            "message for {expected} matched {} first",
            reports[0].type_name
        );
        assert!(
            reports[0].score > reports[1].score,
            "{expected}: tie between {} ({}) and {} ({})",
            reports[0].type_name,
            reports[0].score,
            reports[1].type_name,
            reports[1].score
        );
    }
}
