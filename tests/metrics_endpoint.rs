//! Observability end to end: drive the full stack — HTTP discovery,
//! binding, plan-cached marshaling, sender/receiver messaging — then
//! scrape the server's built-in `/metrics` route and check that every
//! subsystem's counters and the per-stage duration histograms made it
//! into one Prometheus exposition (and its `/metrics.json` twin).

use std::collections::HashSet;
use std::net::TcpListener;

use openmeta_ohttp::{http_get, ConnectionPool, Url};
use xmit::{HttpServer, MachineModel, Xmit, XmitReceiver, XmitSender};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:complexType name="Reading" xmlns:xsd="{XSD}">
             <xsd:element name="seq" type="xsd:unsignedLong" />
             <xsd:element name="level" type="xsd:double" />
           </xsd:complexType>"#
    )
}

/// Minimal exposition-format check: every non-comment line is
/// `name{labels} value`, every `# TYPE` family is one of the known
/// kinds, and histogram `_count`/`_sum`/`_bucket` lines belong to a
/// declared histogram family.
fn parse_exposition(body: &str) -> Vec<(String, f64)> {
    let mut families: HashSet<String> = HashSet::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE kind in {line:?}"
            );
            families.insert(family.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        let name = series.split('{').next().unwrap();
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            families.contains(name) || families.contains(base),
            "sample {name} has no # TYPE declaration"
        );
        samples.push((series.to_string(), value));
    }
    samples
}

fn value_of(samples: &[(String, f64)], series: &str) -> Option<f64> {
    samples.iter().find(|(s, _)| s == series).map(|(_, v)| *v)
}

#[test]
fn metrics_endpoint_exposes_every_subsystem() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/formats/reading.xsd", metadata());
    let doc_url = server.url_for("/formats/reading.xsd");

    // Discovery twice through the keep-alive pool path (Xmit's standard
    // source), so the schema cache registers a revalidation.
    let toolkit = Xmit::new(MachineModel::native());
    toolkit.load_url(&doc_url).unwrap();
    toolkit.load_url(&doc_url).unwrap();
    let token = toolkit.bind("Reading").unwrap();

    // Marshal enough records for a plan-cache hit, and ship them over a
    // sender/receiver pair so the transport spans fire.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let registry = toolkit.registry().clone();
    let rx_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut rx = XmitReceiver::new(stream, registry);
        let mut got = 0;
        while let Some(rec) = rx.recv().unwrap() {
            assert_eq!(rec.get_f64("level").unwrap(), 4.25);
            got += 1;
        }
        got
    });
    let mut tx = XmitSender::connect(addr).unwrap();
    for seq in 0..3u64 {
        let mut rec = token.new_record();
        rec.set_u64("seq", seq).unwrap();
        rec.set_f64("level", 4.25).unwrap();
        tx.send(&rec).unwrap();
    }
    drop(tx);
    assert_eq!(rx_thread.join().unwrap(), 3);

    // Also touch the pool directly so reuse counters are non-trivial.
    let pool = ConnectionPool::default();
    let parsed = Url::parse(&doc_url).unwrap();
    pool.get(&parsed).unwrap();
    pool.get(&parsed).unwrap();

    // Scrape.
    let metrics_url = Url::parse(&server.url_for("/metrics")).unwrap();
    let resp = http_get(&metrics_url).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type.as_deref(), Some("text/plain; version=0.0.4"));
    let body = String::from_utf8(resp.body).unwrap();
    let samples = parse_exposition(&body);

    // Every migrated subsystem shows up in one scrape: plan cache,
    // schema cache, connection pool, transport, HTTP server.
    for series in [
        "openmeta_plan_cache_hits_total",
        "openmeta_plan_cache_misses_total",
        "openmeta_schema_cache_misses_total",
        "openmeta_pool_requests_total",
        "openmeta_pool_reuses_total",
        "openmeta_transport_accepted_total",
        "openmeta_transport_frames_in_total",
        "openmeta_http_requests_total",
    ] {
        let v = value_of(&samples, series)
            .unwrap_or_else(|| panic!("{series} missing from scrape:\n{body}"));
        assert!(v >= 1.0, "{series} = {v}\n{body}");
    }
    // The second load revalidated (304) or hit the cache.
    let warm = value_of(&samples, "openmeta_schema_cache_revalidated_total").unwrap_or(0.0)
        + value_of(&samples, "openmeta_schema_cache_fresh_hits_total").unwrap_or(0.0)
        + value_of(&samples, "openmeta_schema_cache_content_hits_total").unwrap_or(0.0);
    assert!(warm >= 1.0, "no warm schema-cache path recorded\n{body}");

    // Per-stage duration histograms for the paper's pipeline decomposition.
    for stage in [
        "discovery.load",
        "discovery.fetch",
        "discovery.parse",
        "binding.bind",
        "marshal.encode",
        "marshal.decode",
        "transport.send",
        "transport.recv",
    ] {
        let series = format!("openmeta_stage_duration_ns_count{{stage=\"{stage}\"}}");
        let v = value_of(&samples, &series)
            .unwrap_or_else(|| panic!("stage {stage} missing from scrape:\n{body}"));
        assert!(v >= 1.0, "{series} = {v}");
    }

    // JSON twin: same registry, machine-readable shape.
    let json_url = Url::parse(&server.url_for("/metrics.json")).unwrap();
    let resp = http_get(&json_url).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type.as_deref(), Some("application/json"));
    let json = String::from_utf8(resp.body).unwrap();
    for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "openmeta_plan_cache_hits_total"] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}
