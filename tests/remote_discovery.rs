//! Full-stack discovery: metadata over HTTP, descriptors over the format
//! server, records over XMIT messaging — all three planes at once, with
//! heterogeneous machine models.

use std::net::TcpListener;
use std::sync::Arc;

use openmeta_pbio::server::{FormatServer, FormatServerClient};
use xmit::{FormatRegistry, HttpServer, MachineModel, Xmit, XmitReceiver, XmitSender};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:complexType name="Telemetry" xmlns:xsd="{XSD}">
             <xsd:element name="node" type="xsd:string" />
             <xsd:element name="seq" type="xsd:unsignedLong" />
             <xsd:element name="readings" type="xsd:double" minOccurs="0"
                 maxOccurs="*" dimensionPlacement="before" dimensionName="n" />
           </xsd:complexType>"#
    )
}

/// Discovery through HTTP + id resolution through the format server: a
/// receiver that has *neither* the XML document *nor* the sender's format
/// still decodes, by fetching the descriptor by id.
#[test]
fn format_server_closes_the_metadata_loop() {
    let fmt_server = FormatServer::start().unwrap();
    let http = HttpServer::start().unwrap();
    http.put_xml("/telemetry.xsd", metadata());

    // Sender: discovers XML via HTTP, publishes its descriptor by id.
    let sender = Xmit::new(MachineModel::SPARC32);
    sender.load_url(&http.url_for("/telemetry.xsd")).unwrap();
    let token = sender.bind("Telemetry").unwrap();
    let client = FormatServerClient::connect(fmt_server.addr());
    let id = client.register(&token.format).unwrap();
    assert_eq!(id, token.id());

    let mut rec = token.new_record();
    rec.set_string("node", "gauge-9").unwrap();
    rec.set_u64("seq", 1001).unwrap();
    rec.set_f64_array("readings", &[0.5, 1.5, 2.5]).unwrap();
    let wire = xmit::encode(&rec).unwrap();

    // Receiver: knows only the wire bytes and the format server address.
    let registry = FormatRegistry::new(MachineModel::native());
    let header = openmeta_pbio::marshal::parse_header(&wire).unwrap();
    let receiver_client = FormatServerClient::connect(fmt_server.addr());
    receiver_client.resolve_into(header.format_id, &registry).unwrap();
    let got = xmit::decode(&wire, &registry).unwrap();
    assert_eq!(got.get_string("node").unwrap(), "gauge-9");
    assert_eq!(got.get_u64("seq").unwrap(), 1001);
    assert_eq!(got.get_f64_array("readings").unwrap(), vec![0.5, 1.5, 2.5]);
}

/// The messaging layer does the same thing in-band: formats announce
/// themselves on the connection, so a cold receiver needs nothing at all.
#[test]
fn messaging_streams_from_three_machine_models() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();

    let rx_thread = std::thread::spawn(move || {
        let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
        let mut out = Vec::new();
        for _ in 0..3 {
            let (stream, _) = listener.accept().unwrap();
            let mut rx = XmitReceiver::new(stream, registry.clone());
            while let Some(rec) = rx.recv().unwrap() {
                out.push((
                    rec.get_string("node").unwrap().to_string(),
                    rec.get_f64_array("readings").unwrap(),
                ));
            }
        }
        out
    });

    for (i, model) in
        [MachineModel::SPARC32, MachineModel::X86, MachineModel::X86_64].into_iter().enumerate()
    {
        let xm = Xmit::new(model);
        xm.load_str(&metadata()).unwrap();
        let token = xm.bind("Telemetry").unwrap();
        let mut rec = token.new_record();
        rec.set_string("node", format!("model-{i}")).unwrap();
        rec.set_f64_array("readings", &[i as f64; 4]).unwrap();
        let mut tx = XmitSender::connect(addr).unwrap();
        tx.send(&rec).unwrap();
    }

    let got = rx_thread.join().unwrap();
    assert_eq!(got.len(), 3);
    for (i, (node, readings)) in got.iter().enumerate() {
        assert_eq!(node, &format!("model-{i}"));
        assert_eq!(readings, &vec![i as f64; 4]);
    }
}

/// Discovery indirection (§3): the same program text works when the
/// metadata arrives from mem://, file:// or http:// — only the URL
/// string changes.
#[test]
fn all_three_url_schemes_discover_identically() {
    let http = HttpServer::start().unwrap();
    http.put_xml("/t.xsd", metadata());
    let dir = std::env::temp_dir().join("openmeta-discovery-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file_path = dir.join("t.xsd");
    std::fs::write(&file_path, metadata()).unwrap();

    let mut ids = Vec::new();
    let urls = [
        "mem://telemetry".to_string(),
        format!("file://{}", file_path.display()),
        http.url_for("/t.xsd"),
    ];
    for url in &urls {
        let xm = Xmit::new(MachineModel::native());
        xm.source().put_mem("telemetry", metadata());
        xm.load_url(url).unwrap_or_else(|e| panic!("{url}: {e}"));
        ids.push(xm.bind("Telemetry").unwrap().id());
    }
    assert_eq!(ids[0], ids[1]);
    assert_eq!(ids[1], ids[2], "identical metadata must yield identical format ids");
}
