//! Fault-injection suite: every transport is exercised through a
//! misbehaving TCP proxy — stalls, mid-frame resets, clean truncations,
//! byte-dribbling partial writes — and must fail *fast and cleanly*
//! (a typed error within its deadline), never block indefinitely or
//! panic.
//!
//! Each test carries its own wall-clock budget assertion; the CI step
//! additionally wraps the whole suite in a `timeout`.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use openmeta_net::{Fault, FaultProxy, RetryPolicy, TransportConfig};
use openmeta_ohttp::{ConnectionPool, PoolConfig, Url};
use openmeta_pbio::server::{FormatServer, FormatServerClient};
use xmit::{FormatRegistry, HttpServer, MachineModel, Xmit, XmitReceiver, XmitSender};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:complexType name="Evt" xmlns:xsd="{XSD}">
             <xsd:element name="seq" type="xsd:unsignedLong" />
             <xsd:element name="data" type="xsd:double" minOccurs="0"
                 maxOccurs="*" dimensionPlacement="before" dimensionName="n" />
           </xsd:complexType>"#
    )
}

fn fast_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_millis(400)),
        write_timeout: Some(Duration::from_millis(400)),
        retry: RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
        },
        ..TransportConfig::default()
    }
}

/// What the hardened receiver saw: the record's fields, `None` for a
/// clean hang-up, or the transport error.
type ReceiveOutcome = Result<Option<(u64, Vec<f64>)>, xmit::XmitError>;

/// Send one record through a faulty proxy and return what the hardened
/// receiver saw, with the time the receive side took.
fn messaging_through(fault: Fault) -> (ReceiveOutcome, Duration) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let upstream = listener.local_addr().unwrap();
    let proxy = FaultProxy::start(upstream, fault).unwrap();

    let rx_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
        let mut rx = XmitReceiver::new_with(stream, registry, &fast_transport()).unwrap();
        let start = Instant::now();
        let got = rx.recv().map(|opt| {
            opt.map(|rec| (rec.get_u64("seq").unwrap(), rec.get_f64_array("data").unwrap()))
        });
        (got, start.elapsed())
    });

    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Evt").unwrap();
    let mut rec = token.new_record();
    rec.set_u64("seq", 42).unwrap();
    rec.set_f64_array("data", &[1.5, 2.5, 3.5]).unwrap();
    // The record is small, so the sender's buffered write succeeds even
    // when the proxy never delivers; faults are the receiver's problem.
    let mut tx = XmitSender::connect_with(proxy.addr(), &fast_transport()).unwrap();
    let _ = tx.send(&rec);

    let (got, elapsed) = rx_thread.join().unwrap();
    drop(tx);
    drop(proxy);
    (got, elapsed)
}

#[test]
fn messaging_survives_a_clean_proxy() {
    let (got, _) = messaging_through(Fault::None);
    assert_eq!(got.unwrap(), Some((42, vec![1.5, 2.5, 3.5])));
}

#[test]
fn messaging_chopped_into_dribbles_still_reassembles() {
    // 7-byte writes with pauses: frame reassembly must tolerate
    // arbitrarily fragmented arrivals.
    let (got, _) = messaging_through(Fault::Chop { chunk: 7, delay: Duration::from_millis(2) });
    assert_eq!(got.unwrap(), Some((42, vec![1.5, 2.5, 3.5])));
}

#[test]
fn messaging_stall_hits_the_read_deadline_not_forever() {
    // The proxy forwards part of the frame then stops while keeping the
    // connection open: exactly the case read deadlines exist for.
    let (got, elapsed) = messaging_through(Fault::Stall { after: 9 });
    assert!(got.is_err(), "a stalled mid-frame read must surface as an error");
    assert!(
        elapsed < Duration::from_secs(10),
        "read deadline must bound the stall, took {elapsed:?}"
    );
}

#[test]
fn messaging_reset_mid_frame_errors_cleanly() {
    let start = Instant::now();
    let (got, _) = messaging_through(Fault::Reset { after: 10 });
    assert!(got.is_err(), "an aborted connection mid-frame must error, got {got:?}");
    assert!(start.elapsed() < Duration::from_secs(10));
}

#[test]
fn messaging_truncation_mid_frame_errors_cleanly() {
    let start = Instant::now();
    let (got, _) = messaging_through(Fault::Truncate { after: 10 });
    assert!(got.is_err(), "EOF mid-frame must error, got {got:?}");
    assert!(start.elapsed() < Duration::from_secs(10));
}

#[test]
fn huge_length_prefix_cannot_force_a_huge_allocation() {
    // A malicious peer promises a near-limit frame and sends 3 bytes.
    // The capped reader grows with arriving bytes, so this fails fast on
    // EOF instead of allocating tens of MiB on the attacker's say-so.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let rx_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
        let mut rx = XmitReceiver::new_with(stream, registry, &fast_transport()).unwrap();
        rx.recv()
    });
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&((32u32 << 20) - 1).to_be_bytes()).unwrap();
    s.write_all(&[2, 0xde, 0xad]).unwrap();
    drop(s);
    let start = Instant::now();
    assert!(rx_thread.join().unwrap().is_err());
    assert!(start.elapsed() < Duration::from_secs(5));
}

#[test]
fn format_client_stall_is_bounded_by_deadlines_and_retries() {
    let server = FormatServer::start().unwrap();
    // Forward nothing: every request the client writes disappears into
    // the proxy and no reply ever comes.
    let proxy = FaultProxy::start(server.addr(), Fault::Stall { after: 0 }).unwrap();
    let client = FormatServerClient::connect_with(proxy.addr(), fast_transport());

    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Evt").unwrap();
    let start = Instant::now();
    let result = client.register(&token.format);
    assert!(result.is_err(), "a stalled format server must not hang the client");
    // Budget: initial exchange + one reconnect retry, each bounded by
    // the 400 ms read deadline plus connect/backoff overhead.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "register took {:?} against a stalled server",
        start.elapsed()
    );
}

#[test]
fn format_client_truncation_errors_cleanly() {
    let server = FormatServer::start().unwrap();
    let proxy = FaultProxy::start(server.addr(), Fault::Truncate { after: 4 }).unwrap();
    let client = FormatServerClient::connect_with(proxy.addr(), fast_transport());

    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Evt").unwrap();
    let start = Instant::now();
    assert!(client.register(&token.format).is_err());
    assert!(start.elapsed() < Duration::from_secs(10));
}

#[test]
fn format_client_works_through_a_chopping_proxy() {
    let server = FormatServer::start().unwrap();
    let proxy =
        FaultProxy::start(server.addr(), Fault::Chop { chunk: 5, delay: Duration::from_millis(1) })
            .unwrap();
    // Generous read deadline: chopping is slow but must still succeed.
    let cfg = TransportConfig {
        read_timeout: Some(Duration::from_secs(30)),
        write_timeout: Some(Duration::from_secs(30)),
        ..TransportConfig::default()
    };
    let client = FormatServerClient::connect_with(proxy.addr(), cfg);

    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Evt").unwrap();
    let id = client.register(&token.format).unwrap();
    let fetched = client.fetch(id).unwrap().expect("descriptor round-trips in dribbles");
    assert_eq!(fetched.name, token.format.name);
}

#[test]
fn http_client_stall_is_bounded_by_the_pool_io_timeout() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/evt.xsd", metadata());
    let proxy = FaultProxy::start(server.addr(), Fault::Stall { after: 0 }).unwrap();

    let pool = ConnectionPool::new(PoolConfig {
        io_timeout: Duration::from_millis(400),
        ..PoolConfig::default()
    });
    let url = Url::parse(&format!("http://{}/evt.xsd", proxy.addr())).unwrap();
    let start = Instant::now();
    assert!(pool.get(&url).is_err(), "a stalled HTTP host must not hang discovery");
    assert!(start.elapsed() < Duration::from_secs(10), "HTTP stall took {:?}", start.elapsed());
}

#[test]
fn http_client_truncation_errors_cleanly() {
    let server = HttpServer::start().unwrap();
    server.put_xml("/evt.xsd", metadata());
    // Cut the response off after the status line begins.
    let proxy = FaultProxy::start(server.addr(), Fault::Truncate { after: 20 }).unwrap();
    let pool = ConnectionPool::new(PoolConfig {
        io_timeout: Duration::from_millis(400),
        ..PoolConfig::default()
    });
    let url = Url::parse(&format!("http://{}/evt.xsd", proxy.addr())).unwrap();
    let start = Instant::now();
    assert!(pool.get(&url).is_err());
    assert!(start.elapsed() < Duration::from_secs(10));
}
