//! Transport-hardening integration tests: deadlines, retry backoff,
//! bounded worker pools, persistent client connections, and graceful
//! shutdown — across the record plane (xmit messaging) and the metadata
//! plane (format server, HTTP server).
//!
//! Every test asserts its own wall-clock bound: the point of the
//! hardening layer is that no call blocks past its deadline.

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use openmeta_net::{RetryPolicy, ServerConfig, TransportConfig};
use openmeta_pbio::server::{FormatServer, FormatServerClient};
use xmit::{FormatRegistry, HttpServer, MachineModel, Xmit, XmitReceiver, XmitSender};

const XSD: &str = "http://www.w3.org/2001/XMLSchema";

fn metadata() -> String {
    format!(
        r#"<xsd:complexType name="Sample" xmlns:xsd="{XSD}">
             <xsd:element name="node" type="xsd:string" />
             <xsd:element name="values" type="xsd:double" minOccurs="0"
                 maxOccurs="*" dimensionPlacement="before" dimensionName="n" />
           </xsd:complexType>"#
    )
}

/// A short-deadline, short-retry client config so failure paths resolve
/// in test time, not production time.
fn fast_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_millis(500)),
        write_timeout: Some(Duration::from_millis(500)),
        retry: RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
        },
        ..TransportConfig::default()
    }
}

#[test]
fn many_simultaneous_senders_share_one_receiver_registry() {
    const SENDERS: usize = 6;
    const RECORDS: usize = 10;
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();

    // One registry learns formats from every connection at once; the
    // descriptor registration is content-addressed, so concurrent
    // announcements of the same format must coexist.
    let registry = Arc::new(FormatRegistry::new(MachineModel::native()));
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let (registry, seen) = (registry.clone(), seen.clone());
        std::thread::spawn(move || {
            let mut conns = Vec::new();
            for _ in 0..SENDERS {
                let (stream, _) = listener.accept().unwrap();
                let (registry, seen) = (registry.clone(), seen.clone());
                conns.push(std::thread::spawn(move || {
                    let mut rx = XmitReceiver::new(stream, registry);
                    while let Some(rec) = rx.recv().unwrap() {
                        seen.lock().unwrap().push(rec.get_string("node").unwrap().to_string());
                    }
                }));
            }
            for c in conns {
                c.join().unwrap();
            }
        })
    };

    let mut senders = Vec::new();
    for s in 0..SENDERS {
        senders.push(std::thread::spawn(move || {
            let xm = Xmit::new(MachineModel::native());
            xm.load_str(&metadata()).unwrap();
            let token = xm.bind("Sample").unwrap();
            let mut tx = XmitSender::connect(addr).unwrap();
            for r in 0..RECORDS {
                let mut rec = token.new_record();
                rec.set_string("node", format!("s{s}-r{r}")).unwrap();
                rec.set_f64_array("values", &[s as f64, r as f64]).unwrap();
                tx.send(&rec).unwrap();
            }
        }));
    }
    for s in senders {
        s.join().unwrap();
    }
    accept_thread.join().unwrap();

    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), SENDERS * RECORDS);
    for s in 0..SENDERS {
        for r in 0..RECORDS {
            assert!(seen.contains(&format!("s{s}-r{r}")), "missing record s{s}-r{r}");
        }
    }
}

#[test]
fn slow_reader_trips_the_sender_write_deadline() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    // The receiver accepts and then never reads: TCP buffers fill and an
    // unhardened sender would block in write() forever.
    let held = std::thread::spawn(move || listener.accept().unwrap());

    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Sample").unwrap();
    let mut rec = token.new_record();
    rec.set_string("node", "firehose").unwrap();
    rec.set_f64_array("values", &[0.5; 1 << 20]).unwrap(); // ~8 MiB per record

    let mut tx = XmitSender::connect_with(addr, &fast_transport()).unwrap();
    let start = Instant::now();
    let mut result = Ok(());
    for _ in 0..16 {
        result = tx.send(&rec);
        if result.is_err() {
            break;
        }
    }
    assert!(result.is_err(), "writes into a dead reader must eventually fail");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "the write deadline must bound the stall, took {:?}",
        start.elapsed()
    );
    drop(held);
}

#[test]
fn sender_connect_retries_until_receiver_appears() {
    // Reserve a port, drop the listener, and only rebind after a delay:
    // the first connect attempts fail, the backoff retries recover.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    let rebind = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let listener = TcpListener::bind(addr).unwrap();
        listener.accept().unwrap()
    });

    let cfg = TransportConfig {
        retry: RetryPolicy {
            attempts: 30,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
        },
        ..TransportConfig::default()
    };
    let start = Instant::now();
    let tx = XmitSender::connect_with(addr, &cfg);
    assert!(tx.is_ok(), "retry must ride out the receiver's startup window");
    assert!(start.elapsed() < Duration::from_secs(10));
    drop(rebind.join().unwrap());
}

#[test]
fn format_server_enforces_its_connection_bound() {
    let cfg = ServerConfig {
        workers: 1,
        accept_queue: 0,
        max_connections: 1,
        read_timeout: Some(Duration::from_secs(2)),
        ..ServerConfig::default()
    };
    let server = FormatServer::start_with(cfg).unwrap();
    // Occupy the only worker with an idle connection.
    let holder = TcpStream::connect(server.addr()).unwrap();
    let start = Instant::now();
    while server.transport_counters().active == 0 && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    // The next connection is admitted by the listener but rejected by
    // the pool: it sees EOF, never a worker.
    let mut second = TcpStream::connect(server.addr()).unwrap();
    second.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    assert_eq!(second.read_to_end(&mut buf).unwrap_or(0), 0);
    let counters = server.transport_counters();
    assert!(counters.rejected >= 1, "{counters:?}");
    assert!(counters.accepted >= 2, "{counters:?}");
    drop(holder);
}

#[test]
fn persistent_format_client_reuses_one_connection() {
    let server = FormatServer::start().unwrap();
    let client = FormatServerClient::connect_with(server.addr(), fast_transport());

    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Sample").unwrap();
    let id = client.register(&token.format).unwrap();
    for _ in 0..5 {
        assert!(client.fetch(id).unwrap().is_some());
    }
    let counters = server.transport_counters();
    assert_eq!(counters.accepted, 1, "six round trips must share one connection: {counters:?}");
    assert_eq!(counters.frames_in, 6, "{counters:?}");
}

#[test]
fn format_server_drop_drains_despite_idle_persistent_clients() {
    let server = FormatServer::start().unwrap();
    let client = FormatServerClient::connect_with(server.addr(), fast_transport());
    let xm = Xmit::new(MachineModel::native());
    xm.load_str(&metadata()).unwrap();
    let token = xm.bind("Sample").unwrap();
    // The round trip leaves the client's connection parked in a worker's
    // blocking read; drop must not wait out the whole read deadline.
    client.register(&token.format).unwrap();
    let start = Instant::now();
    drop(server);
    assert!(start.elapsed() < Duration::from_secs(5), "graceful drain took {:?}", start.elapsed());
}

#[test]
fn http_server_rejections_and_counters_are_visible() {
    let cfg = ServerConfig {
        workers: 2,
        accept_queue: 1,
        max_connections: 3,
        read_timeout: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with(0, cfg).unwrap();
    server.put_xml("/doc.xsd", metadata());
    // Saturate: many idle connections, most must be rejected not served.
    let conns: Vec<TcpStream> =
        (0..8).map(|_| TcpStream::connect(server.addr()).unwrap()).collect();
    let start = Instant::now();
    while server.transport_counters().rejected == 0 && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let counters = server.transport_counters();
    assert!(counters.rejected >= 1, "{counters:?}");
    assert!(counters.accepted >= counters.rejected, "{counters:?}");
    drop(conns);

    // The server still serves real requests after shedding load.
    let xm = Xmit::new(MachineModel::native());
    xm.load_url(&server.url_for("/doc.xsd")).unwrap();
    assert!(xm.bind("Sample").is_ok());
}
